// The paper's end-to-end online algorithm for the main problem
// [Δ | 1 | D_ℓ | 1] (Theorem 3):
//
//     VarBatch  ∘  Distribute  ∘  ΔLRU-EDF
//
// VarBatch delays each job to the next half-block boundary (making the
// instance batched with halved delay bounds), Distribute splits over-full
// batches into rate-limited subcolors, ΔLRU-EDF schedules the rate-limited
// batched instance, and the two projections map the schedule back to the
// original instance, where the independent validator certifies it.
#pragma once

#include <memory>

#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "reduce/distribute.h"
#include "reduce/varbatch.h"
#include "sched/dlru_edf.h"

namespace rrs {
namespace reduce {

struct PipelineResult {
  VarBatchTransform varbatch;
  DistributeTransform distribute;
  RunResult inner;              // ΔLRU-EDF on the fully transformed instance
  Schedule schedule;            // schedule for the ORIGINAL instance
  ValidationResult validation;  // certified against the original instance

  // Certified cost of the final schedule on the original instance.
  CostBreakdown cost() const { return validation.cost; }
};

// Runs the full pipeline on an arbitrary [Δ | 1 | D_ℓ | 1] instance.
// options.num_resources must satisfy ΔLRU-EDF's requirement (divisible by 4,
// >= the LRU denominator in params).
//
// The free functions construct a fresh policy and engine per call — they are
// the one-shot form and the fresh-construction oracle for the session-reuse
// differential tests. Batch workloads (sweeps, fleets) should reuse a
// PipelineSession instead.
PipelineResult SolveOnline(const Instance& instance, EngineOptions options,
                           const DlruEdfPolicy::Params& params = {});

// The Section-4 sub-pipeline for inputs that are already batched:
// Distribute ∘ ΔLRU-EDF (Theorem 2).
PipelineResult SolveBatched(const Instance& instance, EngineOptions options,
                            const DlruEdfPolicy::Params& params = {});

// Session form of the pipeline (core/session.h): owns one ΔLRU-EDF policy
// and one replay Engine and reuses both — via Engine::Reset — for an
// unbounded series of tenants. The instance transforms (VarBatch,
// Distribute) and the schedule projections still build per-tenant objects
// (they are shape work, proportional to the tenant's instance), but the
// engine hot path runs out of the session arena. Results are bit-identical
// to the free functions on the same inputs.
class PipelineSession {
 public:
  explicit PipelineSession(DlruEdfPolicy::Params params = {});

  // Runs the pipeline for a new tenant. The returned result is owned by the
  // session and valid until the next Solve* call.
  const PipelineResult& SolveOnline(const Instance& instance,
                                    EngineOptions options);
  const PipelineResult& SolveBatched(const Instance& instance,
                                     EngineOptions options);

  // Tenants this session has served.
  uint64_t tenants_served() const { return tenants_served_; }

  // Checkpoint/restore. A pipeline session has no mid-tenant seam — each
  // Solve* runs its tenant to completion, and the transforms/result are
  // per-tenant shape work — so the only durable session state is the tenant
  // counter. Snapshotting between tenants and restoring into a fresh
  // session yields an equivalent session (the engine arena is capacity, not
  // state). Mid-tenant interruption is handled one level down, by
  // Engine::SnapshotRun on the inner run.
  void SaveState(snapshot::Writer& w) const {
    w.BeginSection(snapshot::kTagPipelineSession);
    w.PutU64(tenants_served_);
    w.EndSection();
  }
  void LoadState(snapshot::Reader& r) {
    r.BeginSection(snapshot::kTagPipelineSession);
    tenants_served_ = r.GetU64();
    r.EndSection();
  }

 private:
  // ΔLRU-EDF on the transformed instance through the pooled engine, writing
  // into result_.inner (reusing its buffers).
  void RunInner(const Instance& transformed, EngineOptions options);

  DlruEdfPolicy policy_;
  Engine engine_;
  PipelineResult result_;
  uint64_t tenants_served_ = 0;
};

}  // namespace reduce
}  // namespace rrs
