#include "reduce/aggregate.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace reduce {

AggregateResult AggregateSchedule(const Instance& instance, const Schedule& t,
                                  const DistributeTransform& transform) {
  RRS_CHECK(instance.IsBatched()) << "Aggregate requires a batched instance";
  RRS_CHECK(instance.DelayBoundsArePowersOfTwo())
      << "Aggregate requires power-of-two delay bounds";
  RRS_CHECK_EQ(t.mini_rounds_per_round(), 1)
      << "Aggregate takes a uni-speed schedule";
  const uint32_t m = t.num_resources();
  const uint32_t big_m = 3 * m;
  const Round horizon = instance.horizon();

  // T's executed count per (color, batch round).
  std::map<std::pair<ColorId, Round>, uint64_t> exec_count;
  for (const ExecAction& a : t.executions()) {
    const Job& job = instance.job(a.job);
    ++exec_count[{job.color, job.arrival}];
  }

  // Slot occupancy of the 3m-resource grid, uni-speed: (resource, round).
  std::vector<uint8_t> occupied(
      static_cast<size_t>(big_m) * static_cast<size_t>(horizon), 0);
  auto slot = [&](uint32_t r, Round round) -> uint8_t& {
    return occupied[static_cast<size_t>(r) * static_cast<size_t>(horizon) +
                    static_cast<size_t>(round)];
  };

  struct Placement {
    Round round;
    ResourceId resource;
    JobId job;       // shared id between I and I'
    ColorId subcolor;
  };
  std::vector<Placement> placements;
  placements.reserve(t.executions().size());

  std::map<Round, std::vector<ColorId>> by_delay;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    by_delay[instance.delay_bound(c)].push_back(c);
  }

  // Ascending delay bounds, block by block, per color (the paper's order).
  for (const auto& [p, colors] : by_delay) {
    for (Round block_start = 0; block_start < instance.num_request_rounds();
         block_start += p) {
      for (ColorId c : colors) {
        auto it = exec_count.find({c, block_start});
        if (it == exec_count.end() || it->second == 0) continue;
        const uint64_t want = it->second;

        // The batch's job ids in rank order (subcolors are rank-contiguous).
        std::vector<JobId> batch;
        auto jobs = instance.jobs_in_round(block_start);
        JobId base = instance.first_job_in_round(block_start);
        for (size_t i = 0; i < jobs.size(); ++i) {
          if (jobs[i].color == c) batch.push_back(base + static_cast<JobId>(i));
        }
        RRS_CHECK_LE(want, batch.size())
            << "T executes more color-" << c << " jobs than the batch holds";

        // Greedy resource-major packing into the block's 3m x p grid. The
        // Lemma 4.4 capacity argument (T fits at most m*p executions into
        // any block, the grid holds 3m*p) guarantees this never runs out.
        uint64_t placed = 0;
        for (uint32_t r = 0; r < big_m && placed < want; ++r) {
          for (Round round = block_start;
               round < block_start + p && placed < want; ++round) {
            if (slot(r, round)) continue;
            slot(r, round) = 1;
            placements.push_back(Placement{
                round, r, batch[placed],
                transform.transformed.job(batch[placed]).color});
            ++placed;
          }
        }
        RRS_CHECK_EQ(placed, want)
            << "Lemma 4.4 capacity violated in block(" << p << ", "
            << block_start / p << ")";
      }
    }
  }

  // Emit: per resource in round order, reconfigure on subcolor change.
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.resource != b.resource) return a.resource < b.resource;
              return a.round < b.round;
            });
  AggregateResult result;
  result.schedule = Schedule(big_m, 1);
  ResourceId current_resource = static_cast<ResourceId>(-1);
  ColorId current_color = kNoColor;
  for (const Placement& pl : placements) {
    if (pl.resource != current_resource) {
      current_resource = pl.resource;
      current_color = kNoColor;
    }
    if (pl.subcolor != current_color) {
      result.schedule.AddReconfig(pl.round, 0, pl.resource, pl.subcolor);
      current_color = pl.subcolor;
    }
    result.schedule.AddExecution(pl.round, 0, pl.resource, pl.job);
    ++result.executed;
  }
  RRS_CHECK_EQ(result.executed, t.executions().size());
  return result;
}

}  // namespace reduce
}  // namespace rrs
