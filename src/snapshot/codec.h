// Versioned binary snapshot codec for session cores.
//
// Every Session type (Engine, StreamEngine, the registry policies,
// reduce::OnlineSolver, reduce::PipelineSession) can serialize its mutable
// run state into a flat word stream and restore it into a freshly Reset
// session, producing runs bit-identical to the uninterrupted original. The
// codec is the one wire format behind checkpoint/restore, tenant migration
// in fleet::ChaosFleetRunner, and the checkpoint-differential fuzz tests.
//
// Format (all little-endian uint64 words, arena-friendly: one contiguous
// vector, no per-field framing):
//
//   word 0: magic  ("rrsSnap1")
//   word 1: format version (kVersion)
//   then a sequence of sections, each:
//     [tag][payload word count][FNV-1a checksum of payload][payload...]
//
// Sections are flat, not nested: a composite object writes its own section
// and then asks its components to append theirs, so the stream reads back in
// the exact call order of the save. Readers name the tag they expect, which
// turns any save/load order drift into an immediate checked failure instead
// of silently misinterpreted state. Checksums catch truncation/corruption of
// stored snapshots (worker loss can hand back damaged bytes).
//
// Values narrower than a word (uint32, bool, uint8 flags) are widened; spans
// are written as a count word followed by one word per element. This trades
// space for simplicity and random-access debuggability — snapshots of 10k
// round sessions are a few KiB and cost well under 5% of simulate time
// (gated by bench/bench_snapshot).
//
// All decode errors are RRS_CHECK failures (abort): a snapshot is produced
// by this process or a peer replica, so a malformed one is a bug or storage
// fault, never user input to be recovered from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace rrs {
namespace snapshot {

inline constexpr uint64_t kMagic = 0x72727353'6e617031ULL;  // "rrsSnap1"
inline constexpr uint64_t kVersion = 1;

// Section tags, one per component that owns serialized state. Tag mismatch
// on read aborts with both tags in the message.
enum Tag : uint64_t {
  kTagEngine = 1,
  kTagStreamEngine = 2,
  kTagLruTracker = 3,
  kTagCacheSlots = 4,
  kTagColorState = 5,
  kTagPolicyDlru = 6,
  kTagPolicyDlruEdf = 7,
  kTagPolicyStatic = 8,
  kTagOnlineSolver = 9,
  kTagPipelineSession = 10,
  kTagRng = 11,
  kTagChaosTenant = 12,
  kTagPolicyBatched = 13,
  kTagPolicyInstrumented = 14,
  // Distributed-fleet control protocol (fleet/dist/protocol.h): every frame
  // payload is a codec word stream, so messages inherit the checksum and
  // version-skew checks. One tag per section kind within a message.
  kTagDistMsg = 15,
  kTagDistInstance = 16,
  kTagDistResult = 17,
  kTagDistSlo = 18,
  kTagDistTrace = 19,
  kTagDistCheckpoint = 20,
  // Streaming arrival generators (workload/arrival_source.h): one section
  // per source in a chain (wrappers append their inner sources' sections).
  kTagArrivalSource = 21,
  // A GeneratorSpec shipped over the dist wire (workload/generator_spec.h).
  kTagDistSource = 22,
};

// FNV-1a over 64-bit words (the repo-wide checksum; same constants as the
// offline solver's state hash).
inline uint64_t FnvWords(std::span<const uint64_t> words) {
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t w : words) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return h;
}

class Writer {
 public:
  Writer() { Clear(); }

  // Restarts the stream (magic + version header), keeping capacity — one
  // Writer checkpoints an unbounded series of sessions allocation-free once
  // warm.
  void Clear() {
    RRS_CHECK(section_start_ == kNone) << "Writer::Clear inside a section";
    words_.clear();
    words_.push_back(kMagic);
    words_.push_back(kVersion);
  }

  void BeginSection(Tag tag) {
    RRS_CHECK(section_start_ == kNone) << "nested snapshot section";
    words_.push_back(static_cast<uint64_t>(tag));
    words_.push_back(0);  // payload word count, patched by EndSection
    words_.push_back(0);  // checksum, patched by EndSection
    section_start_ = words_.size();
  }

  void EndSection() {
    RRS_CHECK(section_start_ != kNone) << "EndSection without BeginSection";
    const size_t payload = words_.size() - section_start_;
    words_[section_start_ - 2] = payload;
    words_[section_start_ - 1] =
        FnvWords(std::span<const uint64_t>(words_.data() + section_start_,
                                           payload));
    section_start_ = kNone;
  }

  void PutU64(uint64_t v) {
    RRS_DCHECK(section_start_ != kNone);
    words_.push_back(v);
  }
  void PutU32(uint32_t v) { PutU64(v); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU64(v ? 1 : 0); }

  // Count word followed by one word per element. T: any integral type whose
  // values survive a round-trip through uint64 (all the repo's state types).
  template <typename T>
  void PutSpan(std::span<const T> values) {
    PutU64(values.size());
    for (const T& v : values) PutU64(static_cast<uint64_t>(v));
  }
  template <typename T>
  void PutVec(const std::vector<T>& values) {
    PutSpan(std::span<const T>(values));
  }

  const std::vector<uint64_t>& words() const {
    RRS_CHECK(section_start_ == kNone) << "snapshot read back mid-section";
    return words_;
  }
  size_t size_bytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  std::vector<uint64_t> words_;
  size_t section_start_ = kNone;
};

class Reader {
 public:
  // The span must outlive the reader. Validates the header immediately.
  // Version skew gets a directional diagnostic: a snapshot stamped with a
  // *future* version was produced by a newer writer (a mixed-version worker
  // pool shipping checkpoints backwards), which is a deployment error worth
  // naming precisely, not a generic mismatch.
  explicit Reader(std::span<const uint64_t> words) : words_(words) {
    RRS_CHECK_GE(words_.size(), 2u) << "snapshot truncated: no header";
    RRS_CHECK_EQ(words_[0], kMagic) << "snapshot magic mismatch";
    RRS_CHECK_LE(words_[1], kVersion)
        << "snapshot from future codec version " << words_[1]
        << " (this build reads version " << kVersion
        << "): refusing to guess at a newer format — upgrade this reader "
           "or re-snapshot with a matching writer";
    RRS_CHECK_EQ(words_[1], kVersion)
        << "snapshot version mismatch (snapshot " << words_[1]
        << ", reader " << kVersion << ")";
    pos_ = 2;
  }

  // Opens the next section, which must carry `expected` and a valid
  // checksum.
  void BeginSection(Tag expected) {
    RRS_CHECK(section_end_ == kNone) << "nested snapshot section";
    RRS_CHECK_LE(pos_ + 3, words_.size()) << "snapshot truncated: no section";
    const uint64_t tag = words_[pos_];
    const uint64_t payload = words_[pos_ + 1];
    const uint64_t checksum = words_[pos_ + 2];
    RRS_CHECK_EQ(tag, static_cast<uint64_t>(expected))
        << "snapshot section order mismatch";
    pos_ += 3;
    RRS_CHECK_LE(payload, words_.size() - pos_)
        << "snapshot truncated inside section " << tag;
    RRS_CHECK_EQ(checksum, FnvWords(words_.subspan(pos_, payload)))
        << "snapshot checksum mismatch in section " << tag;
    section_end_ = pos_ + payload;
  }

  // Closes the current section; the payload must be fully consumed.
  void EndSection() {
    RRS_CHECK(section_end_ != kNone) << "EndSection without BeginSection";
    RRS_CHECK_EQ(pos_, section_end_) << "snapshot section not fully consumed";
    section_end_ = kNone;
  }

  uint64_t GetU64() {
    RRS_CHECK(section_end_ != kNone && pos_ < section_end_)
        << "snapshot read past section end";
    return words_[pos_++];
  }
  uint32_t GetU32() {
    const uint64_t v = GetU64();
    RRS_CHECK_LE(v, 0xffffffffULL) << "snapshot u32 overflow";
    return static_cast<uint32_t>(v);
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  bool GetBool() {
    const uint64_t v = GetU64();
    RRS_CHECK_LE(v, 1u) << "snapshot bool out of range";
    return v != 0;
  }

  template <typename T>
  void GetVec(std::vector<T>& out) {
    const uint64_t n = GetU64();
    RRS_CHECK(section_end_ != kNone && n <= section_end_ - pos_)
        << "snapshot span overruns section";
    out.clear();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      if constexpr (sizeof(T) == 8) {
        out.push_back(static_cast<T>(GetU64()));
      } else {
        const uint64_t v = GetU64();
        const T narrowed = static_cast<T>(v);
        RRS_CHECK_EQ(static_cast<uint64_t>(narrowed), v)
            << "snapshot narrow value overflow";
        out.push_back(narrowed);
      }
    }
  }

  bool AtEnd() const {
    return section_end_ == kNone && pos_ == words_.size();
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  std::span<const uint64_t> words_;
  size_t pos_ = 0;
  size_t section_end_ = kNone;
};

}  // namespace snapshot
}  // namespace rrs
