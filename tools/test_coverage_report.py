#!/usr/bin/env python3
"""Tests for tools/coverage_report.py (wired into ctest as a tier-1 test).

Exercises the pure parse/rollup helpers directly — no coverage build or
compiler toolchain needed — plus the CLI surface (--fail-under and its
deprecated --min-line-coverage alias). Written as unittest so it runs with
the stock interpreter; pytest collects it too.
"""

import io
import json
import os
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOLS_DIR)

import coverage_report  # noqa: E402

SRC_PREFIX = os.path.realpath("/repo/src") + os.sep


def llvm_export(files):
    """Build an llvm-cov export -summary-only JSON blob."""
    return json.dumps({
        "data": [{
            "files": [
                {"filename": path,
                 "summary": {"lines": {"count": count, "covered": covered,
                                       "percent": 0.0}}}
                for path, count, covered in files
            ],
        }],
        "type": "llvm.coverage.json.export",
        "version": "2.0.1",
    })


class ParseLlvmExportTest(unittest.TestCase):
    def test_keeps_src_files_relative(self):
        blob = llvm_export([
            ("/repo/src/core/engine.cpp", 100, 80),
            ("/repo/src/offline/optimal.cpp", 50, 45),
        ])
        per_file = coverage_report.parse_llvm_export(blob, SRC_PREFIX)
        self.assertEqual(per_file, {
            "core/engine.cpp": (100, 80),
            "offline/optimal.cpp": (50, 45),
        })

    def test_drops_files_outside_src(self):
        blob = llvm_export([
            ("/repo/tests/engine_test.cpp", 200, 200),
            ("/repo/src/core/engine.cpp", 10, 5),
        ])
        per_file = coverage_report.parse_llvm_export(blob, SRC_PREFIX)
        self.assertEqual(list(per_file), ["core/engine.cpp"])

    def test_drops_zero_line_files(self):
        blob = llvm_export([("/repo/src/core/fwd.h", 0, 0)])
        self.assertEqual(
            coverage_report.parse_llvm_export(blob, SRC_PREFIX), {})


class ParseGcovStdoutTest(unittest.TestCase):
    GCOV = ("File '../src/core/engine.cpp'\n"
            "Lines executed:75.00% of 40\n"
            "Creating 'engine.cpp.gcov'\n"
            "File '../src/offline/optimal.cpp'\n"
            "Lines executed:90.00% of 10\n")

    def test_parses_src_files(self):
        per_file = {}
        coverage_report.parse_gcov_stdout(
            self.GCOV, "/repo/build", SRC_PREFIX, per_file)
        self.assertEqual(per_file, {
            "core/engine.cpp": (40, 30),
            "offline/optimal.cpp": (10, 9),
        })

    def test_keeps_best_covered_instantiation(self):
        per_file = {"core/engine.cpp": (40, 35)}
        coverage_report.parse_gcov_stdout(
            self.GCOV, "/repo/build", SRC_PREFIX, per_file)
        self.assertEqual(per_file["core/engine.cpp"], (40, 35))
        worse = {"core/engine.cpp": (40, 10)}
        coverage_report.parse_gcov_stdout(
            self.GCOV, "/repo/build", SRC_PREFIX, worse)
        self.assertEqual(worse["core/engine.cpp"], (40, 30))

    def test_ignores_files_outside_src(self):
        per_file = {}
        coverage_report.parse_gcov_stdout(
            "File '../tests/engine_test.cpp'\n"
            "Lines executed:100.00% of 99\n",
            "/repo/build", SRC_PREFIX, per_file)
        self.assertEqual(per_file, {})


class RollupTest(unittest.TestCase):
    def test_groups_by_directory(self):
        per_dir = coverage_report.rollup_directories({
            "core/engine.cpp": (100, 80),
            "core/instance.h": (50, 40),
            "offline/optimal.cpp": (60, 30),
        })
        self.assertEqual(per_dir, {
            "core": (150, 120),
            "offline": (60, 30),
        })

    def test_top_level_files_land_in_dot(self):
        per_dir = coverage_report.rollup_directories({"api.h": (10, 5)})
        self.assertEqual(per_dir, {".": (10, 5)})

    def test_nested_directories_stay_separate(self):
        per_dir = coverage_report.rollup_directories({
            "offline/interval_state.h": (30, 30),
            "offline/detail/arena.h": (20, 10),
        })
        self.assertEqual(per_dir, {
            "offline": (30, 30),
            "offline/detail": (20, 10),
        })


class TotalAndRenderTest(unittest.TestCase):
    PER_FILE = {
        "core/engine.cpp": (100, 80),
        "offline/optimal.cpp": (100, 60),
    }

    def test_total_coverage(self):
        self.assertAlmostEqual(
            coverage_report.total_coverage(self.PER_FILE), 70.0)
        self.assertEqual(coverage_report.total_coverage({}), 0.0)

    def test_render_report_has_dir_rollup_and_total(self):
        out = io.StringIO()
        pct = coverage_report.render_report(self.PER_FILE, out=out)
        self.assertAlmostEqual(pct, 70.0)
        text = out.getvalue()
        self.assertIn("core/engine.cpp", text)
        self.assertIn("core/", text)
        self.assertIn("offline/", text)
        self.assertIn("TOTAL", text)
        self.assertIn("70.0%", text)


class CliTest(unittest.TestCase):
    def test_fail_under_flag(self):
        args = coverage_report.build_arg_parser().parse_args(
            ["--fail-under", "85.5"])
        self.assertEqual(args.fail_under, 85.5)

    def test_min_line_coverage_alias(self):
        args = coverage_report.build_arg_parser().parse_args(
            ["--min-line-coverage", "60"])
        self.assertEqual(args.fail_under, 60.0)

    def test_fail_under_defaults_off(self):
        args = coverage_report.build_arg_parser().parse_args([])
        self.assertIsNone(args.fail_under)


if __name__ == "__main__":
    unittest.main()
