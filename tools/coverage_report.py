#!/usr/bin/env python3
"""Coverage preset: build with -DRRS_COVERAGE=ON, run ctest, summarize.

Usage:
    tools/coverage_report.py [--build-dir build-cov] [--jobs N]
                             [--ctest-args ARGS] [--skip-build]
                             [--min-line-coverage PCT]

Drives the whole flow:
  1. configure the build dir with -DRRS_COVERAGE=ON (tests only; bench and
     examples are skipped — the test suite is what drives coverage),
  2. build and run ctest (pass e.g. --ctest-args "-L chaos" to restrict),
  3. summarize line coverage for src/:
       * clang builds: llvm-profdata merge + llvm-cov report over every
         test binary (source-based coverage),
       * gcc builds: gcov over the emitted .gcda counters.

Prints a per-file table and a TOTAL line; with --min-line-coverage the
script exits 1 when the total falls below the threshold, so CI can gate.

For headers compiled into many test binaries the gcc path reports the
best-covered instantiation per file (a cheap under-approximation of the
union); the clang path merges profiles exactly.
"""

import argparse
import glob
import os
import re
import shutil
import subprocess
import sys


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, **kwargs)


def check_run(cmd, **kwargs):
    proc = run(cmd, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc


def find_test_binaries(build_dir):
    binaries = []
    for path in sorted(glob.glob(os.path.join(build_dir, "tests", "*"))):
        if os.path.isfile(path) and os.access(path, os.X_OK):
            binaries.append(path)
    return binaries


def report_llvm(build_dir, source_dir, profraws):
    profdata = os.path.join(build_dir, "coverage", "merged.profdata")
    check_run(["llvm-profdata", "merge", "-sparse", "-o", profdata] +
              profraws)
    binaries = find_test_binaries(build_dir)
    if not binaries:
        sys.exit(f"no test binaries under {build_dir}/tests")
    cmd = ["llvm-cov", "report", f"-instr-profile={profdata}",
           "-ignore-filename-regex=(tests|_deps)/", binaries[0]]
    for extra in binaries[1:]:
        cmd += ["-object", extra]
    proc = check_run(cmd, capture_output=True, text=True)
    print(proc.stdout)
    # llvm-cov's TOTAL row: the line-coverage percentage is the last column.
    for line in proc.stdout.splitlines():
        if line.startswith("TOTAL"):
            match = re.findall(r"([0-9.]+)%", line)
            if match:
                return float(match[-1])
    sys.exit("could not find TOTAL row in llvm-cov output")


def report_gcov(build_dir, source_dir, gcdas):
    src_prefix = os.path.realpath(os.path.join(source_dir, "src")) + os.sep
    # file -> (lines_total, lines_executed); keep the best-covered TU.
    per_file = {}
    chunk = 64
    for start in range(0, len(gcdas), chunk):
        proc = check_run(["gcov", "-n"] + gcdas[start:start + chunk],
                         capture_output=True, text=True, cwd=build_dir)
        current = None
        for line in proc.stdout.splitlines():
            m = re.match(r"File '(.*)'", line)
            if m:
                current = os.path.realpath(
                    os.path.join(build_dir, m.group(1)))
                continue
            m = re.match(r"Lines executed:([0-9.]+)% of (\d+)", line)
            if m and current and current.startswith(src_prefix):
                total = int(m.group(2))
                executed = round(float(m.group(1)) / 100.0 * total)
                name = current[len(src_prefix):]
                if name not in per_file or executed > per_file[name][1]:
                    per_file[name] = (total, executed)
                current = None
    if not per_file:
        sys.exit("gcov produced no coverage for src/ files")

    width = max(len(name) for name in per_file) + 2
    print(f"\n{'file':<{width}} {'lines':>7} {'covered':>8} {'pct':>7}")
    sum_total = sum_executed = 0
    for name in sorted(per_file):
        total, executed = per_file[name]
        sum_total += total
        sum_executed += executed
        print(f"{name:<{width}} {total:>7} {executed:>8} "
              f"{100.0 * executed / total:>6.1f}%")
    pct = 100.0 * sum_executed / sum_total
    print(f"{'TOTAL':<{width}} {sum_total:>7} {sum_executed:>8} {pct:>6.1f}%")
    return pct


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--source-dir",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--ctest-args", default="",
                        help="extra args for ctest, e.g. '-L chaos'")
    parser.add_argument("--skip-build", action="store_true",
                        help="reuse an already-configured coverage build")
    parser.add_argument("--min-line-coverage", type=float, default=None,
                        help="fail (exit 1) below this total line %%")
    args = parser.parse_args()

    build_dir = os.path.abspath(args.build_dir)
    if not args.skip_build:
        check_run(["cmake", "-S", args.source_dir, "-B", build_dir,
                   "-DRRS_COVERAGE=ON", "-DCMAKE_BUILD_TYPE=Debug",
                   "-DRRS_BUILD_BENCH=OFF", "-DRRS_BUILD_EXAMPLES=OFF"])
        check_run(["cmake", "--build", build_dir, "-j", str(args.jobs)])

    # Stale counters from a previous run would double-count.
    coverage_dir = os.path.join(build_dir, "coverage")
    shutil.rmtree(coverage_dir, ignore_errors=True)
    os.makedirs(coverage_dir, exist_ok=True)
    for gcda in glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                          recursive=True):
        os.remove(gcda)

    env = dict(os.environ)
    env["LLVM_PROFILE_FILE"] = os.path.join(coverage_dir, "p-%p.profraw")
    ctest = ["ctest", "--output-on-failure", "-j", str(args.jobs)]
    ctest += args.ctest_args.split()
    check_run(ctest, cwd=build_dir, env=env)

    profraws = sorted(glob.glob(os.path.join(coverage_dir, "*.profraw")))
    gcdas = sorted(glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                             recursive=True))
    if profraws:
        pct = report_llvm(build_dir, args.source_dir, profraws)
    elif gcdas:
        pct = report_gcov(build_dir, args.source_dir, gcdas)
    else:
        sys.exit("no coverage counters produced — was the build configured "
                 "with -DRRS_COVERAGE=ON?")

    print(f"\ntotal line coverage: {pct:.1f}%")
    if args.min_line_coverage is not None and pct < args.min_line_coverage:
        sys.exit(f"line coverage {pct:.1f}% is below the required "
                 f"{args.min_line_coverage:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
