#!/usr/bin/env python3
"""Coverage preset: build with -DRRS_COVERAGE=ON, run ctest, summarize.

Usage:
    tools/coverage_report.py [--build-dir build-cov] [--jobs N]
                             [--ctest-args ARGS] [--skip-build]
                             [--fail-under PCT]

Drives the whole flow:
  1. configure the build dir with -DRRS_COVERAGE=ON (tests only; bench and
     examples are skipped — the test suite is what drives coverage),
  2. build and run ctest (pass e.g. --ctest-args "-L chaos" to restrict),
  3. summarize line coverage for src/:
       * clang builds: llvm-profdata merge + llvm-cov export -summary-only
         over every test binary (source-based coverage, exact union),
       * gcc builds: gcov over the emitted .gcda counters.

Prints a per-file table, a per-directory rollup (so e.g. src/offline/ is
visible in isolation), and a TOTAL line; with --fail-under the script exits
1 when the total falls below the threshold, so CI can gate.
(--min-line-coverage is kept as a deprecated alias of --fail-under.)

For headers compiled into many test binaries the gcc path reports the
best-covered instantiation per file (a cheap under-approximation of the
union); the clang path merges profiles exactly.

The parse/rollup helpers below are pure functions on text/JSON so
tools/test_coverage_report.py can pin them without a coverage build.
"""

import argparse
import glob
import json
import os
import re
import shutil
import subprocess
import sys


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, **kwargs)


def check_run(cmd, **kwargs):
    proc = run(cmd, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc


def find_test_binaries(build_dir):
    binaries = []
    for path in sorted(glob.glob(os.path.join(build_dir, "tests", "*"))):
        if os.path.isfile(path) and os.access(path, os.X_OK):
            binaries.append(path)
    return binaries


def parse_llvm_export(export_json, src_prefix):
    """llvm-cov export -summary-only JSON -> {relpath: (lines, covered)}.

    Only files under src_prefix (a realpath ending in os.sep) are kept;
    keys are paths relative to it. Files with zero instrumentable lines
    are dropped — they would divide by zero and carry no signal.
    """
    data = json.loads(export_json)
    per_file = {}
    for export in data.get("data", []):
        for entry in export.get("files", []):
            path = os.path.realpath(entry["filename"])
            if not path.startswith(src_prefix):
                continue
            lines = entry["summary"]["lines"]
            total = int(lines["count"])
            if total == 0:
                continue
            per_file[path[len(src_prefix):]] = (total, int(lines["covered"]))
    return per_file


def parse_gcov_stdout(stdout, build_dir, src_prefix, per_file):
    """Fold one `gcov -n` stdout into per_file ({relpath: (lines, covered)}).

    gcov paths are relative to the cwd it ran in (build_dir). When a header
    shows up in several test binaries, keep the best-covered instantiation
    (a cheap under-approximation of the profile union).
    """
    current = None
    for line in stdout.splitlines():
        m = re.match(r"File '(.*)'", line)
        if m:
            current = os.path.realpath(os.path.join(build_dir, m.group(1)))
            continue
        m = re.match(r"Lines executed:([0-9.]+)% of (\d+)", line)
        if m and current and current.startswith(src_prefix):
            total = int(m.group(2))
            executed = round(float(m.group(1)) / 100.0 * total)
            name = current[len(src_prefix):]
            if name not in per_file or executed > per_file[name][1]:
                per_file[name] = (total, executed)
            current = None
    return per_file


def rollup_directories(per_file):
    """{relpath: (lines, covered)} -> {directory: (lines, covered)}.

    Directory is the path's dirname relative to src/ ("core", "offline",
    ...); files sitting directly in src/ roll up under ".".
    """
    per_dir = {}
    for name, (total, executed) in per_file.items():
        directory = os.path.dirname(name) or "."
        old_total, old_executed = per_dir.get(directory, (0, 0))
        per_dir[directory] = (old_total + total, old_executed + executed)
    return per_dir


def total_coverage(per_file):
    """Total line-coverage percentage across all files (0.0 when empty)."""
    sum_total = sum(t for t, _ in per_file.values())
    sum_executed = sum(e for _, e in per_file.values())
    return 100.0 * sum_executed / sum_total if sum_total else 0.0


def render_report(per_file, out=sys.stdout):
    """Print the per-file table, the per-directory rollup, and TOTAL.

    Returns the total line-coverage percentage.
    """
    width = max(len(name) for name in per_file) + 2
    width = max(width, len("TOTAL") + 2)

    def row(name, total, executed):
        print(f"{name:<{width}} {total:>7} {executed:>8} "
              f"{100.0 * executed / total:>6.1f}%", file=out)

    print(f"\n{'file':<{width}} {'lines':>7} {'covered':>8} {'pct':>7}",
          file=out)
    for name in sorted(per_file):
        row(name, *per_file[name])

    per_dir = rollup_directories(per_file)
    print(f"\n{'directory':<{width}} {'lines':>7} {'covered':>8} {'pct':>7}",
          file=out)
    for directory in sorted(per_dir):
        row(directory + "/", *per_dir[directory])

    pct = total_coverage(per_file)
    sum_total = sum(t for t, _ in per_file.values())
    sum_executed = sum(e for _, e in per_file.values())
    print(f"\n{'TOTAL':<{width}} {sum_total:>7} {sum_executed:>8} "
          f"{pct:>6.1f}%", file=out)
    return pct


def report_llvm(build_dir, source_dir, profraws):
    profdata = os.path.join(build_dir, "coverage", "merged.profdata")
    check_run(["llvm-profdata", "merge", "-sparse", "-o", profdata] +
              profraws)
    binaries = find_test_binaries(build_dir)
    if not binaries:
        sys.exit(f"no test binaries under {build_dir}/tests")
    cmd = ["llvm-cov", "export", "-summary-only",
           f"-instr-profile={profdata}",
           "-ignore-filename-regex=(tests|_deps)/", binaries[0]]
    for extra in binaries[1:]:
        cmd += ["-object", extra]
    proc = check_run(cmd, capture_output=True, text=True)
    src_prefix = os.path.realpath(os.path.join(source_dir, "src")) + os.sep
    per_file = parse_llvm_export(proc.stdout, src_prefix)
    if not per_file:
        sys.exit("llvm-cov produced no coverage for src/ files")
    return render_report(per_file)


def report_gcov(build_dir, source_dir, gcdas):
    src_prefix = os.path.realpath(os.path.join(source_dir, "src")) + os.sep
    per_file = {}
    chunk = 64
    for start in range(0, len(gcdas), chunk):
        proc = check_run(["gcov", "-n"] + gcdas[start:start + chunk],
                         capture_output=True, text=True, cwd=build_dir)
        parse_gcov_stdout(proc.stdout, build_dir, src_prefix, per_file)
    if not per_file:
        sys.exit("gcov produced no coverage for src/ files")
    return render_report(per_file)


def build_arg_parser():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--source-dir",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--ctest-args", default="",
                        help="extra args for ctest, e.g. '-L chaos'")
    parser.add_argument("--skip-build", action="store_true",
                        help="reuse an already-configured coverage build")
    parser.add_argument("--fail-under", "--min-line-coverage",
                        dest="fail_under", type=float, default=None,
                        help="fail (exit 1) below this total line %%")
    return parser


def main():
    args = build_arg_parser().parse_args()

    build_dir = os.path.abspath(args.build_dir)
    if not args.skip_build:
        check_run(["cmake", "-S", args.source_dir, "-B", build_dir,
                   "-DRRS_COVERAGE=ON", "-DCMAKE_BUILD_TYPE=Debug",
                   "-DRRS_BUILD_BENCH=OFF", "-DRRS_BUILD_EXAMPLES=OFF"])
        check_run(["cmake", "--build", build_dir, "-j", str(args.jobs)])

    # Stale counters from a previous run would double-count.
    coverage_dir = os.path.join(build_dir, "coverage")
    shutil.rmtree(coverage_dir, ignore_errors=True)
    os.makedirs(coverage_dir, exist_ok=True)
    for gcda in glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                          recursive=True):
        os.remove(gcda)

    env = dict(os.environ)
    env["LLVM_PROFILE_FILE"] = os.path.join(coverage_dir, "p-%p.profraw")
    ctest = ["ctest", "--output-on-failure", "-j", str(args.jobs)]
    ctest += args.ctest_args.split()
    check_run(ctest, cwd=build_dir, env=env)

    profraws = sorted(glob.glob(os.path.join(coverage_dir, "*.profraw")))
    gcdas = sorted(glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                             recursive=True))
    if profraws:
        pct = report_llvm(build_dir, args.source_dir, profraws)
    elif gcdas:
        pct = report_gcov(build_dir, args.source_dir, gcdas)
    else:
        sys.exit("no coverage counters produced — was the build configured "
                 "with -DRRS_COVERAGE=ON?")

    print(f"\ntotal line coverage: {pct:.1f}%")
    if args.fail_under is not None and pct < args.fail_under:
        sys.exit(f"line coverage {pct:.1f}% is below the required "
                 f"{args.fail_under:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
