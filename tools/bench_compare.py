#!/usr/bin/env python3
"""Perf-regression gate: compare a BENCH_engine.json against the baseline.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.15] [--alloc-budget 0.05]
                     [--shape-only]

With --shape-only only the report *shape* is validated — every baseline cell
must appear in CURRENT and record every metric the baseline cell records —
and no value is gated. This is the tier-1 smoke mode: the bench binaries run
once under RRS_BENCH_SMOKE=1 (timing numbers are meaningless), and the smoke
still catches a cell that crashes, is dropped, or silently loses a gated
metric long before the nightly/perf run would.

Fails (exit 1) when any benchmark cell in CURRENT:
  * is missing relative to BASELINE,
  * lacks a metric that the BASELINE cell records (a gated metric silently
    disappearing from the report must fail loudly, not with a KeyError),
  * regresses a higher-is-better throughput metric (rounds_per_sec,
    jobs_per_sec, sessions_per_sec, states_per_sec, snapshots_per_sec) by
    more than --threshold
    (fraction; 0.15 = 15% slower than baseline),
  * regresses a lower-is-better latency metric (solve_ms) by more than
    --threshold (an *increase* beyond the threshold fails), or
  * exceeds the steady-state allocation budget (allocations per round in
    steady state; gated only for cells whose baseline records
    steady_allocs_per_round — the engine bench does, the solver bench has no
    per-round allocation contract), or
  * is a batched fleet cell (records "scalar_ref": the name of its scalar
    twin in the same report) whose rounds_per_sec falls below its required
    speedup times the scalar twin's rounds_per_sec. The required speedup is
    the cell's own "speedup_gate" field when present (the bench binary
    stamps per-cell floors: the headline cell carries the paper target, the
    small-fleet cells a regression floor), falling back to
    --min-batched-speedup. The ratio is computed within CURRENT (both rows
    measured on the same machine in the same run), so it gates the
    lane-parallel engine's relative win, not absolute machine speed. When
    the cell records measured_speedup (the bench's median ratio over paired
    interleaved windows), the gate uses it instead of dividing the two
    best-of-N rates — the paired estimate is much more stable on noisy
    machines, which tight floors (the obs twin's 0.98) need. A scalar_ref
    naming a row absent from the report, or either row lacking
    rounds_per_sec, fails with a clear message, or
  * is a distributed fleet cell (records "scaling_ref": the name of its
    fewer-worker twin, plus "scaling_gate": the required aggregate
    rounds_per_sec ratio — the linear-scaling claim). The gate is enforced
    only when the current report's "usable_cpus" can host the cell's
    "workers" (usable_cpus >= workers): worker processes timesharing one
    core cannot scale no matter how good the code is, so on small machines
    the gate is SKIPPED with a loud message instead of failing on physics.
    Like the batched gate, the ratio prefers the bench's interleaved
    "measured_scaling" estimate over dividing the two best-of-N rates, or
  * is a memory cell (records "mem_ref": the name of its materialized twin
    in the same report, plus "max_bytes_ratio": the required ceiling) whose
    bytes_per_tenant exceeds max_bytes_ratio times the twin's. Like the
    speedup gates, the ratio is held within CURRENT — both rows measure
    peak heap residency in the same run on the same allocator — so it gates
    the streaming representation's memory win, not absolute allocator
    behavior. A mem_ref naming an absent row, or either row lacking
    bytes_per_tenant, fails with a clear message.

Metrics present only in CURRENT (e.g. the informational phase_*_p50_ns
breakdown) are ignored, so reports can grow new columns without a baseline
update.

Improvements and new cells never fail; the script prints a per-cell report
either way. Update the checked-in baseline by copying a fresh report over
bench/BENCH_baseline.json when a deliberate perf change lands.
"""

import argparse
import json
import sys


class BenchReportError(Exception):
    """A benchmark report that cannot be read or parsed (clear message)."""


def load_cells(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        raise BenchReportError(
            f"cannot read benchmark report '{path}': {e}. If this is the "
            f"checked-in baseline, regenerate it by running the bench binary "
            f"and committing its JSON output.")
    except json.JSONDecodeError as e:
        raise BenchReportError(
            f"benchmark report '{path}' is not valid JSON (truncated or "
            f"interrupted bench run?): {e}")
    try:
        return {cell["name"]: cell for cell in report["benchmarks"]}
    except (KeyError, TypeError) as e:
        raise BenchReportError(
            f"benchmark report '{path}' has unexpected shape, expected "
            f'{{"benchmarks": [{{"name": ..., <metrics>...}}]}}: '
            f"{type(e).__name__}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional throughput regression")
    parser.add_argument("--alloc-budget", type=float, default=0.05,
                        help="max steady-state allocations per round")
    parser.add_argument("--min-batched-speedup", type=float, default=2.0,
                        help="min rounds_per_sec ratio a batched fleet cell "
                             "must hold over its scalar_ref row (same "
                             "report); a cell's own speedup_gate field "
                             "overrides this default")
    parser.add_argument("--shape-only", action="store_true",
                        help="validate cell/metric presence only, gate no "
                             "values (tier-1 smoke mode for RRS_BENCH_SMOKE "
                             "reports)")
    args = parser.parse_args()

    try:
        baseline = load_cells(args.baseline)
        current = load_cells(args.current)
    except BenchReportError as e:
        print(e, file=sys.stderr)
        return 1

    # metric -> +1 (higher is better) or -1 (lower is better). Only metrics
    # listed here are gated; anything else in a report is informational.
    gated_metrics = (
        ("rounds_per_sec", +1),
        ("jobs_per_sec", +1),
        ("sessions_per_sec", +1),
        ("states_per_sec", +1),
        ("snapshots_per_sec", +1),
        ("solve_ms", -1),
    )
    # Units for failure messages: a tripped gate prints the offending
    # metric's unit and both values side by side, so the log alone says what
    # regressed and by how much in physical terms.
    units = {
        "rounds_per_sec": "rounds/s",
        "jobs_per_sec": "jobs/s",
        "sessions_per_sec": "sessions/s",
        "states_per_sec": "states/s",
        "snapshots_per_sec": "snapshots/s",
        "solve_ms": "ms",
        "steady_allocs_per_round": "allocs/round",
    }

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        for metric, direction in gated_metrics:
            if metric not in base:
                continue  # baseline predates this metric; nothing to gate
            if metric not in cur:
                failures.append(
                    f"{name}: metric '{metric}' present in baseline but "
                    f"missing from current report")
                continue
            if args.shape_only:
                print(f"{name:28s} {metric:16s} present")
                continue
            b, c = base[metric], cur[metric]
            change = (c - b) / b if b > 0 else 0.0
            status = "ok"
            if direction * change < -args.threshold:
                status = "REGRESSION"
                unit = units.get(metric, "")
                failures.append(
                    f"{name}: {metric} regressed — "
                    f"current {c:.2f} {unit} vs baseline {b:.2f} {unit} "
                    f"({change * 100:+.1f}%, allowed "
                    f"{'-' if direction > 0 else '+'}"
                    f"{args.threshold * 100:.0f}%)")
            print(f"{name:28s} {metric:16s} {c:14.2f} "
                  f"(baseline {b:.2f}, {change * 100:+.1f}%) {status}")
        if "steady_allocs_per_round" in base:
            if "steady_allocs_per_round" not in cur:
                failures.append(
                    f"{name}: metric 'steady_allocs_per_round' present in "
                    f"baseline but missing from current report")
                continue
            if args.shape_only:
                print(f"{name:28s} {'allocs/round':16s} present")
                continue
            allocs = cur["steady_allocs_per_round"]
            status = "ok"
            if allocs > args.alloc_budget:
                status = "OVER BUDGET"
                failures.append(
                    f"{name}: steady_allocs_per_round over budget — "
                    f"current {allocs:.4f} allocs/round vs budget "
                    f"{args.alloc_budget:.4f} allocs/round")
            print(f"{name:28s} {'allocs/round':16s} {allocs:14.4f} "
                  f"(budget {args.alloc_budget}) {status}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:24s} new cell (not in baseline), skipped")

    # Shape mode stops here: the within-report ratio gates below compare
    # measured values, which a smoke run does not produce meaningfully.
    if args.shape_only:
        if failures:
            print("\nSHAPE CHECK FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\nshape check passed")
        return 0

    # Distributed scaling gate, held within the current report: a cell with
    # scaling_ref + scaling_gate claims its aggregate rounds_per_sec is at
    # least gate x its fewer-worker twin's. Only meaningful when the machine
    # can actually run the workers in parallel.
    for name, cur in sorted(current.items()):
        ref_name = cur.get("scaling_ref")
        gate = cur.get("scaling_gate")
        if ref_name is None or gate is None:
            continue
        try:
            gate = float(gate)
        except (TypeError, ValueError):
            failures.append(f"{name}: scaling_gate {gate!r} is not a number")
            continue
        workers = cur.get("workers")
        cpus = cur.get("usable_cpus")
        if workers is None or cpus is None:
            failures.append(
                f"{name}: scaling gate needs both 'workers' and "
                f"'usable_cpus' recorded in the cell; got workers={workers!r}"
                f", usable_cpus={cpus!r}")
            continue
        if cpus < workers:
            print(f"{name:28s} {'scaling':16s} {'SKIPPED':>14s} "
                  f"(machine has {cpus} usable cpus < {workers} workers; "
                  f"linear scaling needs real parallelism)")
            continue
        ref = current.get(ref_name)
        if ref is None:
            failures.append(
                f"{name}: scaling_ref '{ref_name}' names a row missing from "
                f"the current report; the scaling gate needs both rows from "
                f"the same run")
            continue
        measured = cur.get("measured_scaling")
        if measured is not None:
            try:
                scaling = float(measured)
            except (TypeError, ValueError):
                failures.append(
                    f"{name}: measured_scaling {measured!r} is not a number")
                continue
        elif "rounds_per_sec" in cur and ref.get("rounds_per_sec", 0) > 0:
            scaling = cur["rounds_per_sec"] / ref["rounds_per_sec"]
        else:
            failures.append(
                f"{name}: scaling gate needs measured_scaling or "
                f"rounds_per_sec on both rows")
            continue
        status = "ok"
        if scaling < gate:
            status = "BELOW SCALING GATE"
            failures.append(
                f"{name}: scaling {scaling:.2f}x vs '{ref_name}' below "
                f"required {gate}x — aggregate rounds/s must scale with "
                f"worker count on a {cpus}-cpu machine")
        print(f"{name:28s} {'scaling':16s} {scaling:13.2f}x "
              f"(vs {ref_name}, min {gate}, {workers} workers on "
              f"{cpus} cpus) {status}")

    # Batched-vs-scalar ratio gate, held within the current report: both
    # rows come from the same run, so the ratio isolates the lane-parallel
    # engine's win from machine speed. Applies to every current cell that
    # names a scalar_ref (baseline presence is irrelevant).
    for name, cur in sorted(current.items()):
        ref_name = cur.get("scalar_ref")
        if ref_name is None:
            continue
        ref = current.get(ref_name)
        if ref is None:
            failures.append(
                f"{name}: scalar_ref '{ref_name}' names a row missing from "
                f"the current report; the batched speedup gate needs both "
                f"rows from the same run")
            continue
        missing = [n for n, c in ((name, cur), (ref_name, ref))
                   if "rounds_per_sec" not in c]
        if missing:
            failures.append(
                f"{name}: batched speedup gate needs rounds_per_sec on both "
                f"rows; missing from: {', '.join(missing)}")
            continue
        if ref["rounds_per_sec"] <= 0:
            failures.append(
                f"{name}: scalar_ref '{ref_name}' rounds_per_sec is "
                f"{ref['rounds_per_sec']}, cannot compute batched speedup")
            continue
        # Prefer the bench's own paired-window ratio (median of per-window
        # twin/ref ratios over interleaved windows): adjacent windows share
        # the machine's noise environment, so it is far more stable than
        # dividing two independently-taken best-of-N maxima — which matters
        # for tight gates like the obs twin's <=2% overhead floor.
        measured = cur.get("measured_speedup")
        min_speedup = cur.get("speedup_gate", args.min_batched_speedup)
        try:
            min_speedup = float(min_speedup)
        except (TypeError, ValueError):
            failures.append(
                f"{name}: speedup_gate {min_speedup!r} is not a number")
            continue
        if measured is not None:
            try:
                speedup = float(measured)
            except (TypeError, ValueError):
                failures.append(
                    f"{name}: measured_speedup {measured!r} is not a number")
                continue
        else:
            speedup = cur["rounds_per_sec"] / ref["rounds_per_sec"]
        status = "ok"
        if speedup < min_speedup:
            status = "BELOW MIN SPEEDUP"
            failures.append(
                f"{name}: batched_speedup {speedup:.2f}x vs '{ref_name}' "
                f"below required {min_speedup} — current "
                f"{cur['rounds_per_sec']:.2f} rounds/s vs scalar "
                f"{ref['rounds_per_sec']:.2f} rounds/s")
        print(f"{name:28s} {'batched_speedup':16s} {speedup:13.2f}x "
              f"(vs {ref_name}, min {min_speedup}) {status}")

    # Memory-ratio gate, held within the current report: a cell with
    # mem_ref + max_bytes_ratio claims its peak heap residency per tenant
    # is at most ratio x its materialized twin's. Both rows come from the
    # same run (same allocator, same machine), so the gate isolates the
    # representation's win from allocator behavior.
    for name, cur in sorted(current.items()):
        ref_name = cur.get("mem_ref")
        if ref_name is None:
            continue
        max_ratio = cur.get("max_bytes_ratio")
        try:
            max_ratio = float(max_ratio)
        except (TypeError, ValueError):
            failures.append(
                f"{name}: max_bytes_ratio {max_ratio!r} is not a number")
            continue
        ref = current.get(ref_name)
        if ref is None:
            failures.append(
                f"{name}: mem_ref '{ref_name}' names a row missing from the "
                f"current report; the memory gate needs both rows from the "
                f"same run")
            continue
        missing = [n for n, c in ((name, cur), (ref_name, ref))
                   if "bytes_per_tenant" not in c]
        if missing:
            failures.append(
                f"{name}: memory gate needs bytes_per_tenant on both rows; "
                f"missing from: {', '.join(missing)}")
            continue
        if ref["bytes_per_tenant"] <= 0:
            failures.append(
                f"{name}: mem_ref '{ref_name}' bytes_per_tenant is "
                f"{ref['bytes_per_tenant']}, cannot compute memory ratio")
            continue
        ratio = cur["bytes_per_tenant"] / ref["bytes_per_tenant"]
        status = "ok"
        if ratio > max_ratio:
            status = "OVER MEMORY CEILING"
            failures.append(
                f"{name}: bytes_per_tenant ratio {ratio:.2f}x vs "
                f"'{ref_name}' above allowed {max_ratio}x — current "
                f"{cur['bytes_per_tenant']:.0f} bytes/tenant vs "
                f"{ref['bytes_per_tenant']:.0f} bytes/tenant")
        print(f"{name:28s} {'bytes_ratio':16s} {ratio:13.2f}x "
              f"(vs {ref_name}, max {max_ratio}) {status}")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
