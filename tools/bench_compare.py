#!/usr/bin/env python3
"""Perf-regression gate: compare a BENCH_engine.json against the baseline.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.15] [--alloc-budget 0.05]

Fails (exit 1) when any benchmark cell in CURRENT:
  * is missing relative to BASELINE,
  * lacks a metric that the BASELINE cell records (a gated metric silently
    disappearing from the report must fail loudly, not with a KeyError),
  * regresses a higher-is-better throughput metric (rounds_per_sec,
    jobs_per_sec, sessions_per_sec, states_per_sec, snapshots_per_sec) by
    more than --threshold
    (fraction; 0.15 = 15% slower than baseline),
  * regresses a lower-is-better latency metric (solve_ms) by more than
    --threshold (an *increase* beyond the threshold fails), or
  * exceeds the steady-state allocation budget (allocations per round in
    steady state; gated only for cells whose baseline records
    steady_allocs_per_round — the engine bench does, the solver bench has no
    per-round allocation contract).

Metrics present only in CURRENT (e.g. the informational phase_*_p50_ns
breakdown) are ignored, so reports can grow new columns without a baseline
update.

Improvements and new cells never fail; the script prints a per-cell report
either way. Update the checked-in baseline by copying a fresh report over
bench/BENCH_baseline.json when a deliberate perf change lands.
"""

import argparse
import json
import sys


class BenchReportError(Exception):
    """A benchmark report that cannot be read or parsed (clear message)."""


def load_cells(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        raise BenchReportError(
            f"cannot read benchmark report '{path}': {e}. If this is the "
            f"checked-in baseline, regenerate it by running the bench binary "
            f"and committing its JSON output.")
    except json.JSONDecodeError as e:
        raise BenchReportError(
            f"benchmark report '{path}' is not valid JSON (truncated or "
            f"interrupted bench run?): {e}")
    try:
        return {cell["name"]: cell for cell in report["benchmarks"]}
    except (KeyError, TypeError) as e:
        raise BenchReportError(
            f"benchmark report '{path}' has unexpected shape, expected "
            f'{{"benchmarks": [{{"name": ..., <metrics>...}}]}}: '
            f"{type(e).__name__}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional throughput regression")
    parser.add_argument("--alloc-budget", type=float, default=0.05,
                        help="max steady-state allocations per round")
    args = parser.parse_args()

    try:
        baseline = load_cells(args.baseline)
        current = load_cells(args.current)
    except BenchReportError as e:
        print(e, file=sys.stderr)
        return 1

    # metric -> +1 (higher is better) or -1 (lower is better). Only metrics
    # listed here are gated; anything else in a report is informational.
    gated_metrics = (
        ("rounds_per_sec", +1),
        ("jobs_per_sec", +1),
        ("sessions_per_sec", +1),
        ("states_per_sec", +1),
        ("snapshots_per_sec", +1),
        ("solve_ms", -1),
    )

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        for metric, direction in gated_metrics:
            if metric not in base:
                continue  # baseline predates this metric; nothing to gate
            if metric not in cur:
                failures.append(
                    f"{name}: metric '{metric}' present in baseline but "
                    f"missing from current report")
                continue
            b, c = base[metric], cur[metric]
            change = (c - b) / b if b > 0 else 0.0
            status = "ok"
            if direction * change < -args.threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {metric} {c:.2f} vs baseline {b:.2f} "
                    f"({change * 100:+.1f}%, allowed "
                    f"{'-' if direction > 0 else '+'}"
                    f"{args.threshold * 100:.0f}%)")
            print(f"{name:28s} {metric:16s} {c:14.2f} "
                  f"(baseline {b:.2f}, {change * 100:+.1f}%) {status}")
        if "steady_allocs_per_round" in base:
            if "steady_allocs_per_round" not in cur:
                failures.append(
                    f"{name}: metric 'steady_allocs_per_round' present in "
                    f"baseline but missing from current report")
                continue
            allocs = cur["steady_allocs_per_round"]
            status = "ok"
            if allocs > args.alloc_budget:
                status = "OVER BUDGET"
                failures.append(
                    f"{name}: steady_allocs_per_round {allocs:.4f} > "
                    f"budget {args.alloc_budget}")
            print(f"{name:28s} {'allocs/round':16s} {allocs:14.4f} "
                  f"(budget {args.alloc_budget}) {status}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:24s} new cell (not in baseline), skipped")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
