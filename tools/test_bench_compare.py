#!/usr/bin/env python3
"""Tests for tools/bench_compare.py (wired into ctest as a tier-1 test).

Written as unittest so it runs with the stock interpreter, but the cases are
pytest-compatible (pytest collects unittest.TestCase subclasses).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
BENCH_COMPARE = os.path.join(TOOLS_DIR, "bench_compare.py")


def report(cells):
    return {"benchmarks": cells}


def cell(name, rounds=1e6, jobs=5e5, allocs=0.0, **extra):
    out = {
        "name": name,
        "rounds_per_sec": rounds,
        "jobs_per_sec": jobs,
        "steady_allocs_per_round": allocs,
    }
    out.update(extra)
    return out


def solver_cell(name, states=1e6, ms=50.0, **extra):
    """A bench_offline_solver-style cell: no steady_allocs_per_round."""
    out = {"name": name, "states_per_sec": states, "solve_ms": ms}
    out.update(extra)
    return out


def fleet_cell(name, sessions=1e4, rounds=1e6, allocs=0.0, **extra):
    """A bench_fleet-style cell: sessions/rounds throughput + alloc budget."""
    out = {
        "name": name,
        "sessions_per_sec": sessions,
        "rounds_per_sec": rounds,
        "steady_allocs_per_round": allocs,
    }
    out.update(extra)
    return out


class BenchCompareTest(unittest.TestCase):
    def run_compare(self, baseline, current, *extra_args):
        """Writes both reports to temp files and runs bench_compare.py."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(cur_path, "w") as f:
                json.dump(current, f)
            return subprocess.run(
                [sys.executable, BENCH_COMPARE, base_path, cur_path,
                 *extra_args],
                capture_output=True, text=True)

    def run_compare_raw(self, baseline_text, current_text):
        """Like run_compare, but writes raw bytes (or skips the baseline
        entirely when baseline_text is None) to exercise the report-loading
        error paths."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            if baseline_text is not None:
                with open(base_path, "w") as f:
                    f.write(baseline_text)
            with open(cur_path, "w") as f:
                f.write(current_text)
            return subprocess.run(
                [sys.executable, BENCH_COMPARE, base_path, cur_path],
                capture_output=True, text=True)

    def test_identical_reports_pass(self):
        r = report([cell("dlru/128c/8r"), cell("pipeline/32c/8r")])
        proc = self.run_compare(r, r)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("perf gate passed", proc.stdout)

    def test_missing_metric_fails_with_clear_message(self):
        base = report([cell("dlru/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        del cur["benchmarks"][0]["jobs_per_sec"]
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("metric 'jobs_per_sec' present in baseline but missing",
                      proc.stderr)
        self.assertNotIn("KeyError", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_alloc_metric_fails_with_clear_message(self):
        base = report([cell("dlru/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        del cur["benchmarks"][0]["steady_allocs_per_round"]
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn(
            "metric 'steady_allocs_per_round' present in baseline but missing",
            proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_throughput_regression_fails(self):
        base = report([cell("dlru/128c/8r", rounds=1e6)])
        cur = report([cell("dlru/128c/8r", rounds=0.5e6)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("rounds_per_sec", proc.stderr)

    def test_regression_within_threshold_passes(self):
        base = report([cell("dlru/128c/8r", rounds=1e6, jobs=1e6)])
        cur = report([cell("dlru/128c/8r", rounds=0.9e6, jobs=0.9e6)])
        proc = self.run_compare(base, cur)  # default threshold 15%
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_alloc_budget_violation_fails(self):
        base = report([cell("dlru/128c/8r", allocs=0.0)])
        cur = report([cell("dlru/128c/8r", allocs=1.5)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("OVER BUDGET", proc.stdout)

    def test_missing_cell_fails(self):
        base = report([cell("dlru/128c/8r"), cell("static/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from current report", proc.stderr)

    def test_new_cell_and_new_metrics_ignored(self):
        base = report([cell("dlru/128c/8r")])
        cur = report([
            cell("dlru/128c/8r", phase_drop_p50_ns=120.0),
            cell("stream/64c/8r"),
        ])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("new cell (not in baseline), skipped", proc.stdout)

    def test_baseline_without_metric_is_not_gated(self):
        # A baseline written before a metric existed must not fail the gate.
        base = report([cell("dlru/128c/8r")])
        del base["benchmarks"][0]["jobs_per_sec"]
        cur = report([cell("dlru/128c/8r")])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_states_per_sec_regression_fails(self):
        base = report([solver_cell("packed/m2/4c/h48", states=1e6)])
        cur = report([solver_cell("packed/m2/4c/h48", states=0.5e6)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("states_per_sec", proc.stderr)

    def test_solve_ms_increase_fails(self):
        # solve_ms is lower-is-better: a large *increase* is the regression.
        base = report([solver_cell("packed/m2/4c/h48", ms=50.0)])
        cur = report([solver_cell("packed/m2/4c/h48", ms=80.0)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("solve_ms", proc.stderr)

    def test_solve_ms_decrease_passes(self):
        # A big latency *improvement* must never trip the gate.
        base = report([solver_cell("packed/m2/4c/h48", ms=80.0)])
        cur = report([solver_cell("packed/m2/4c/h48", ms=20.0)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_sessions_per_sec_regression_fails(self):
        base = report([fleet_cell("fleet/10k/replay", sessions=1e4)])
        cur = report([fleet_cell("fleet/10k/replay", sessions=0.5e4)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("sessions_per_sec", proc.stderr)

    def test_fleet_alloc_budget_violation_fails(self):
        # The fleet bench carries the engine's zero-steady-allocation
        # contract: a warm pooled session allocating per round must trip the
        # same budget the engine bench is gated on.
        base = report([fleet_cell("fleet/1k/replay", allocs=0.0)])
        cur = report([fleet_cell("fleet/1k/replay", allocs=0.8)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("OVER BUDGET", proc.stdout)

    def test_fleet_informational_metrics_not_gated(self):
        # fresh_sessions_per_sec / pooled_speedup are informational: a
        # slower fresh path (= larger speedup) must never fail the gate.
        base = report([fleet_cell("sweep/pooled-vs-fresh",
                                  fresh_sessions_per_sec=5e3,
                                  pooled_speedup=2.0)])
        cur = report([fleet_cell("sweep/pooled-vs-fresh",
                                 fresh_sessions_per_sec=1e3,
                                 pooled_speedup=10.0)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_absent_baseline_fails_with_clear_message(self):
        # A missing bench/BENCH_*.json baseline must name the file and tell
        # the user how to regenerate it, not dump a Traceback.
        proc = self.run_compare_raw(None, json.dumps(report([cell("a")])))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("cannot read benchmark report", proc.stderr)
        self.assertIn("baseline.json", proc.stderr)
        self.assertIn("regenerate", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_truncated_baseline_fails_with_clear_message(self):
        # A bench run killed mid-write leaves a half-emitted JSON file.
        full = json.dumps(report([cell("dlru/128c/8r")]))
        proc = self.run_compare_raw(full[:len(full) // 2],
                                    json.dumps(report([cell("dlru/128c/8r")])))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertIn("truncated", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_wrong_shape_report_fails_with_clear_message(self):
        # Valid JSON of the wrong shape ("benchmarks" not a list of cells)
        # used to escape as a bare TypeError stack trace.
        proc = self.run_compare_raw(
            json.dumps({"benchmarks": {"dlru/128c/8r": 1.0}}),
            json.dumps(report([cell("dlru/128c/8r")])))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unexpected shape", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_empty_baseline_file_fails_with_clear_message(self):
        proc = self.run_compare_raw("", json.dumps(report([cell("a")])))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_batched_speedup_at_least_2x_passes(self):
        # The batched fleet cell names its scalar twin via scalar_ref; the
        # ratio is taken within the current report, so a 2.2x batched row
        # passes the default 2.0x gate regardless of baseline values.
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=2.2e6,
                       scalar_ref="fleet/100k/capped", batch_width=16,
                       lane_occupancy=0.97),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("batched_speedup", proc.stdout)
        self.assertIn("2.20x", proc.stdout)

    def test_batched_speedup_below_2x_fails(self):
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=1.5e6,
                       scalar_ref="fleet/100k/capped", batch_width=16),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BELOW MIN SPEEDUP", proc.stdout)
        self.assertIn("batched_speedup 1.50x", proc.stderr)

    def test_batched_speedup_custom_minimum(self):
        # --min-batched-speedup relaxes (or tightens) the default 2.0 gate.
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=1.5e6,
                       scalar_ref="fleet/100k/capped", batch_width=16),
        ])
        proc = self.run_compare(cur, cur, "--min-batched-speedup", "1.1")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        proc = self.run_compare(cur, cur, "--min-batched-speedup", "1.6")
        self.assertEqual(proc.returncode, 1)

    def test_batched_speedup_missing_scalar_ref_row_fails(self):
        # The gate needs both rows from the same run; a batched cell whose
        # scalar twin was dropped from the report must fail loudly, not with
        # a KeyError.
        cur = report([
            fleet_cell("fleet/100k/batched", rounds=2.5e6,
                       scalar_ref="fleet/100k/capped", batch_width=16),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("scalar_ref 'fleet/100k/capped' names a row missing",
                      proc.stderr)
        self.assertNotIn("KeyError", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_batched_speedup_gate_applies_to_new_cells(self):
        # Batched cells absent from the baseline are still speedup-gated:
        # the ratio is within-current, so "new cell, skipped" must not skip
        # the speedup check.
        base = report([fleet_cell("fleet/100k/capped", rounds=1e6)])
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=1.2e6,
                       scalar_ref="fleet/100k/capped", batch_width=16),
        ])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("batched_speedup", proc.stderr)

    def test_speedup_gate_field_overrides_default(self):
        # A cell stamping its own speedup_gate is judged against that floor,
        # not --min-batched-speedup: 1.5x passes a 1.25 per-cell gate that
        # the 2.0 default would fail, and fails a 1.8 per-cell gate even
        # when the flag is relaxed below it.
        def rows(gate):
            return report([
                fleet_cell("fleet/10k/replay", rounds=1e6),
                fleet_cell("fleet/10k/batched", rounds=1.5e6,
                           scalar_ref="fleet/10k/replay", batch_width=16,
                           speedup_gate=gate),
            ])
        proc = self.run_compare(rows(1.25), rows(1.25))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("min 1.25", proc.stdout)
        proc = self.run_compare(rows(1.8), rows(1.8),
                                "--min-batched-speedup", "1.0")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("below required 1.8", proc.stderr)

    def test_speedup_gate_non_numeric_fails_cleanly(self):
        cur = report([
            fleet_cell("fleet/10k/replay", rounds=1e6),
            fleet_cell("fleet/10k/batched", rounds=2.5e6,
                       scalar_ref="fleet/10k/replay", batch_width=16,
                       speedup_gate="fast"),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("speedup_gate 'fast' is not a number", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_regression_failure_prints_units_and_both_values(self):
        # A tripped throughput gate must name the unit and show both values
        # side by side, so the CI log alone tells the story.
        base = report([cell("dlru/128c/8r", rounds=1e6)])
        cur = report([cell("dlru/128c/8r", rounds=0.5e6)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("rounds/s", proc.stderr)
        self.assertIn("current 500000.00", proc.stderr)
        self.assertIn("baseline 1000000.00", proc.stderr)

    def test_latency_regression_failure_prints_ms_unit(self):
        base = report([solver_cell("packed/m2/4c/h48", ms=50.0)])
        cur = report([solver_cell("packed/m2/4c/h48", ms=80.0)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("current 80.00 ms", proc.stderr)
        self.assertIn("baseline 50.00 ms", proc.stderr)

    def test_alloc_failure_prints_units_and_budget(self):
        base = report([cell("dlru/128c/8r", allocs=0.0)])
        cur = report([cell("dlru/128c/8r", allocs=1.5)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("current 1.5000 allocs/round", proc.stderr)
        self.assertIn("budget 0.0500 allocs/round", proc.stderr)

    def test_speedup_failure_prints_both_rates(self):
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=1.5e6,
                       scalar_ref="fleet/100k/capped", batch_width=16),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("current 1500000.00 rounds/s", proc.stderr)
        self.assertIn("scalar 1000000.00 rounds/s", proc.stderr)

    def test_obs_overhead_twin_gated_below_one(self):
        # The observability twin runs the same shape as its scalar_ref with
        # SLO tracking + exporter attached and stamps a speedup_gate below
        # 1.0 (e.g. 0.98 = at most 2% overhead). The same ratio machinery
        # must gate it: 1% overhead passes, 5% fails.
        def rows(obs_rounds):
            return report([
                fleet_cell("fleet/100k/capped", rounds=1e6),
                fleet_cell("fleet/100k/obs", rounds=obs_rounds,
                           scalar_ref="fleet/100k/capped",
                           speedup_gate=0.98),
            ])
        proc = self.run_compare(rows(0.99e6), rows(0.99e6))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        proc = self.run_compare(rows(0.95e6), rows(0.95e6))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("below required 0.98", proc.stderr)

    def test_measured_speedup_takes_priority_over_rate_division(self):
        # A cell stamping measured_speedup (the bench's paired-window median
        # ratio) is gated on it, not on the division of the two best-of-N
        # rates: best-rate division says 0.90x here, but the paired ratio
        # 0.99x passes — and vice versa.
        passing = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/obs", rounds=0.90e6,
                       scalar_ref="fleet/100k/capped", speedup_gate=0.98,
                       measured_speedup=0.99),
        ])
        proc = self.run_compare(passing, passing)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        failing = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/obs", rounds=0.99e6,
                       scalar_ref="fleet/100k/capped", speedup_gate=0.98,
                       measured_speedup=0.90),
        ])
        proc = self.run_compare(failing, failing)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("below required 0.98", proc.stderr)

    def test_non_numeric_measured_speedup_fails_cleanly(self):
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/obs", rounds=1e6,
                       scalar_ref="fleet/100k/capped", speedup_gate=0.98,
                       measured_speedup="fast"),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("measured_speedup", proc.stderr)
        self.assertIn("not a number", proc.stderr)

    def test_snapshots_per_sec_regression_fails(self):
        # bench_snapshot's headline metric is gated like other throughputs.
        base = report([cell("snapshot/10k", snapshots_per_sec=2e4)])
        cur = report([cell("snapshot/10k", snapshots_per_sec=0.5e4)])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("snapshots_per_sec", proc.stderr)

    def dist_cell(self, name, workers, cpus, rounds, **extra):
        """A bench_fleet_distributed-style cell."""
        out = {
            "name": name,
            "workers": workers,
            "usable_cpus": cpus,
            "rounds_per_sec": rounds,
            "sessions_per_sec": rounds / 32.0,
        }
        out.update(extra)
        return out

    def test_scaling_gate_enforced_on_capable_machine_passes(self):
        # 8 usable cpus >= 2 workers: the gate is live, and 1.85x clears 1.7.
        cur = report([
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            self.dist_cell("dist/2workers", 2, 8, 1.85e6,
                           scaling_ref="dist/1worker", scaling_gate=1.7,
                           measured_scaling=1.85),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("scaling", proc.stdout)
        self.assertIn("1.85x", proc.stdout)

    def test_scaling_gate_enforced_on_capable_machine_fails(self):
        cur = report([
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            self.dist_cell("dist/2workers", 2, 8, 1.2e6,
                           scaling_ref="dist/1worker", scaling_gate=1.7,
                           measured_scaling=1.2),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("BELOW SCALING GATE", proc.stdout)
        self.assertIn("scaling 1.20x", proc.stderr)

    def test_scaling_gate_skipped_loudly_on_small_machine(self):
        # 1 usable cpu < 2 workers: processes timeshare one core, so the
        # scaling claim is untestable — skip with a loud message, never fail.
        cur = report([
            self.dist_cell("dist/1worker", 1, 1, 1e6),
            self.dist_cell("dist/2workers", 2, 1, 0.97e6,
                           scaling_ref="dist/1worker", scaling_gate=1.7,
                           measured_scaling=0.97),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("SKIPPED", proc.stdout)
        self.assertIn("1 usable cpus < 2 workers", proc.stdout)

    def test_scaling_gate_missing_ref_row_fails(self):
        cur = report([
            self.dist_cell("dist/2workers", 2, 8, 1.85e6,
                           scaling_ref="dist/1worker", scaling_gate=1.7),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("scaling_ref 'dist/1worker' names a row missing",
                      proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_scaling_gate_without_cpu_fields_fails_cleanly(self):
        # A cell claiming a scaling gate but not recording workers /
        # usable_cpus cannot be judged; that is a report bug, not a skip.
        cur = report([
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            {"name": "dist/2workers", "rounds_per_sec": 1.85e6,
             "scaling_ref": "dist/1worker", "scaling_gate": 1.7},
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("needs both 'workers' and 'usable_cpus'", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_scaling_without_gate_is_informational(self):
        # The 4-worker cell records scaling_ref + measured_scaling but no
        # scaling_gate: informational, never gated even at 0.5x.
        cur = report([
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            self.dist_cell("dist/4workers", 4, 8, 0.5e6,
                           scaling_ref="dist/1worker",
                           measured_scaling=0.5),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_scaling_gate_prefers_measured_scaling(self):
        # Same priority rule as the batched gate: the interleaved paired
        # estimate wins over dividing best-of-N rates.
        cur = report([
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            self.dist_cell("dist/2workers", 2, 8, 1.5e6,  # division: 1.5x
                           scaling_ref="dist/1worker", scaling_gate=1.7,
                           measured_scaling=1.8),         # paired: passes
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def mem_cell(self, name, bytes_per_tenant, **extra):
        """A bench_fleet memory-cell row: residency only, no throughput."""
        out = {"name": name, "bytes_per_tenant": bytes_per_tenant}
        out.update(extra)
        return out

    def test_memory_ratio_within_ceiling_passes(self):
        cur = report([
            self.mem_cell("fleet/mem/materialized", 14000.0),
            self.mem_cell("fleet/mem/streaming", 5000.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio=0.5),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bytes_ratio", proc.stdout)
        self.assertIn("0.36x", proc.stdout)

    def test_memory_ratio_over_ceiling_fails_with_both_values(self):
        cur = report([
            self.mem_cell("fleet/mem/materialized", 14000.0),
            self.mem_cell("fleet/mem/streaming", 9800.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio=0.5),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("OVER MEMORY CEILING", proc.stdout)
        self.assertIn("ratio 0.70x", proc.stderr)
        self.assertIn("current 9800 bytes/tenant", proc.stderr)
        self.assertIn("14000 bytes/tenant", proc.stderr)

    def test_memory_gate_missing_mem_ref_row_fails(self):
        cur = report([
            self.mem_cell("fleet/mem/streaming", 5000.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio=0.5),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mem_ref 'fleet/mem/materialized' names a row missing",
                      proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_memory_gate_missing_bytes_metric_fails_cleanly(self):
        cur = report([
            {"name": "fleet/mem/materialized"},
            self.mem_cell("fleet/mem/streaming", 5000.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio=0.5),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("needs bytes_per_tenant on both rows", proc.stderr)
        self.assertIn("fleet/mem/materialized", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_memory_gate_applies_to_new_cells(self):
        # Like the speedup gates, the memory gate is held within the current
        # report: cells absent from the baseline are still gated.
        base = report([fleet_cell("fleet/100k/capped")])
        cur = report([
            fleet_cell("fleet/100k/capped"),
            self.mem_cell("fleet/mem/materialized", 14000.0),
            self.mem_cell("fleet/mem/streaming", 9800.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio=0.5),
        ])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("OVER MEMORY CEILING", proc.stdout)

    def test_memory_gate_non_numeric_ratio_fails_cleanly(self):
        cur = report([
            self.mem_cell("fleet/mem/materialized", 14000.0),
            self.mem_cell("fleet/mem/streaming", 5000.0,
                          mem_ref="fleet/mem/materialized",
                          max_bytes_ratio="half"),
        ])
        proc = self.run_compare(cur, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("max_bytes_ratio", proc.stderr)
        self.assertIn("not a number", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_shape_only_ignores_regressed_values(self):
        # The tier-1 smoke mode: a catastrophic "regression" (smoke numbers
        # are one-iteration noise) passes as long as the shape is intact.
        base = report([cell("dlru/128c/8r", rounds=1e6, allocs=0.0),
                       solver_cell("packed/m2/4c/h48", ms=50.0)])
        cur = report([cell("dlru/128c/8r", rounds=1.0, allocs=99.0),
                      solver_cell("packed/m2/4c/h48", ms=1e9)])
        proc = self.run_compare(base, cur, "--shape-only")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("shape check passed", proc.stdout)
        self.assertNotIn("REGRESSION", proc.stdout)

    def test_shape_only_still_fails_on_missing_cell(self):
        base = report([cell("dlru/128c/8r"), cell("static/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        proc = self.run_compare(base, cur, "--shape-only")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from current report", proc.stderr)
        self.assertIn("SHAPE CHECK FAILED", proc.stderr)

    def test_shape_only_still_fails_on_missing_metric(self):
        base = report([cell("dlru/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        del cur["benchmarks"][0]["jobs_per_sec"]
        proc = self.run_compare(base, cur, "--shape-only")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("metric 'jobs_per_sec' present in baseline but missing",
                      proc.stderr)

    def test_shape_only_still_fails_on_missing_alloc_metric(self):
        base = report([cell("dlru/128c/8r")])
        cur = report([cell("dlru/128c/8r")])
        del cur["benchmarks"][0]["steady_allocs_per_round"]
        proc = self.run_compare(base, cur, "--shape-only")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("steady_allocs_per_round", proc.stderr)

    def test_shape_only_skips_within_report_ratio_gates(self):
        # A smoke run's batched/scaling/memory ratios are noise; shape mode
        # must not judge them even when they would fail the live gates.
        cur = report([
            fleet_cell("fleet/100k/capped", rounds=1e6),
            fleet_cell("fleet/100k/batched", rounds=1.0,
                       scalar_ref="fleet/100k/capped", speedup_gate=2.0),
            self.dist_cell("dist/1worker", 1, 8, 1e6),
            self.dist_cell("dist/2workers", 2, 8, 1.0,
                           scaling_ref="dist/1worker", scaling_gate=1.7,
                           measured_scaling=0.1),
        ])
        proc = self.run_compare(cur, cur, "--shape-only")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("shape check passed", proc.stdout)

    def test_solver_cells_have_no_alloc_gate(self):
        # Solver cells record no steady_allocs_per_round; its absence from
        # both reports must not fail (the alloc gate is engine-bench-only).
        base = report([solver_cell("dp_ref/m2/4c/h48")])
        cur = report([solver_cell("dp_ref/m2/4c/h48")])
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("allocs/round", proc.stdout)


if __name__ == "__main__":
    unittest.main()
