// fleet_top: a text-mode "top" for a live fleet.
//
// Polls an obs::ExportServer endpoint (bench_fleet --serve-metrics, trace_tool
// --serve-metrics, or any embedding that wires Scope + SloTracker into an
// ExportServer) and renders a refreshing table: fleet totals with a rounds/s
// rate derived from successive scrapes, the per-shard SLO series, and the
// worst-burn tenants from /tenants.
//
//   fleet_top <port> [--host 127.0.0.1] [--interval-ms 1000] [--top 10]
//             [--once]
//   fleet_top --endpoints <p1,p2,host:p3,...> [same flags]
//
// --once prints a single frame without clearing the screen (scripts, docs,
// tests). Everything is parsed from the Prometheus text exposition — the tool
// depends only on the rrsched library's HttpGet client.
//
// Multi-endpoint mode (--endpoints) watches a distributed fleet: every
// worker process of a DistController serves its own /metrics (rrs_worker_*
// series), and the controller serves the aggregate. Point --endpoints at
// all of them — each endpoint gets a per-worker row (ticks, rounds, a
// rounds/s rate from successive scrapes, completions, restores), the rates
// are summed into an aggregate fleet line, and any endpoint that turns out
// to be a controller (it exports rrs_fleet_slo_*) also renders the classic
// totals + worst-burn view below the worker table. A dead endpoint renders
// as "down" instead of failing the whole dashboard — workers die and fail
// over; the dashboard should watch that happen, not exit.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export_server.h"
#include "obs/trace.h"

namespace {

// One scrape of /metrics, parsed. Keys are full series names including the
// label block, e.g. `rrs_fleet_slo_rounds` or `rrs_fleet_slo_rounds{shard="3"}`.
struct Frame {
  std::map<std::string, double> series;
  int64_t scrape_ns = 0;
  bool ok = false;

  double Get(const std::string& name) const {
    auto it = series.find(name);
    return it == series.end() ? 0.0 : it->second;
  }
};

Frame Scrape(const std::string& host, int port) {
  Frame frame;
  std::string error;
  const std::string body =
      rrs::obs::HttpGet(host, port, "/metrics", &error);
  frame.scrape_ns = rrs::obs::NowNs();
  if (body.empty() && !error.empty()) return frame;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(body.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) continue;
    const std::string name(line.substr(0, space));
    frame.series[name] = std::strtod(line.data() + space + 1, nullptr);
  }
  frame.ok = true;
  return frame;
}

// Minimal extraction from the /tenants JSON array (flat objects with numeric
// fields only, as rendered by SloTracker::TenantsJson).
struct TenantRow {
  uint64_t tenant = 0;
  uint64_t shard = 0;
  uint64_t window_misses = 0;
  double burn = 0.0;
};

double JsonField(std::string_view object, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string_view::npos) return 0.0;
  return std::strtod(object.data() + at + needle.size(), nullptr);
}

std::vector<TenantRow> FetchTenants(const std::string& host, int port) {
  std::vector<TenantRow> rows;
  const std::string body = rrs::obs::HttpGet(host, port, "/tenants");
  size_t pos = 0;
  while ((pos = body.find('{', pos)) != std::string::npos) {
    const size_t end = body.find('}', pos);
    if (end == std::string::npos) break;
    const std::string_view object(body.data() + pos, end - pos);
    TenantRow row;
    row.tenant = static_cast<uint64_t>(JsonField(object, "tenant"));
    row.shard = static_cast<uint64_t>(JsonField(object, "shard"));
    row.window_misses =
        static_cast<uint64_t>(JsonField(object, "window_misses"));
    row.burn = JsonField(object, "burn");
    rows.push_back(row);
    pos = end + 1;
  }
  return rows;
}

std::string ShardSeries(const char* base, size_t shard) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rrs_fleet_slo_%s{shard=\"%zu\"}", base,
                shard);
  return buf;
}

void Render(const Frame& now, const Frame& prev,
            const std::vector<TenantRow>& tenants, int top_n) {
  const double seen = now.Get("rrs_fleet_slo_tenants_seen");
  const double finished = now.Get("rrs_fleet_slo_tenants_finished");
  const double rounds = now.Get("rrs_fleet_slo_rounds");
  const double misses = now.Get("rrs_fleet_slo_misses");
  const double out = now.Get("rrs_fleet_slo_tenants_out_of_budget");
  const double worst = now.Get("rrs_fleet_slo_worst_burn");
  const double breached = now.Get("rrs_fleet_slo_windows_breached");

  double rounds_per_s = 0.0;
  if (prev.ok && now.scrape_ns > prev.scrape_ns) {
    rounds_per_s = (rounds - prev.Get("rrs_fleet_slo_rounds")) * 1e9 /
                   static_cast<double>(now.scrape_ns - prev.scrape_ns);
  }

  std::printf(
      "fleet: %.0f tenants seen, %.0f finished | %.0f rounds (%.0f/s) | "
      "%.0f misses | %.0f windows breached | %.0f out of budget | "
      "worst burn %.2f\n\n",
      seen, finished, rounds, rounds_per_s, misses, breached, out, worst);

  std::printf("%6s %14s %12s %10s %10s %8s\n", "shard", "rounds", "misses",
              "breached", "exhausted", "out");
  for (size_t shard = 0;; ++shard) {
    const std::string key = ShardSeries("rounds", shard);
    if (now.series.find(key) == now.series.end()) break;
    std::printf("%6zu %14.0f %12.0f %10.0f %10.0f %8.0f\n", shard,
                now.Get(key), now.Get(ShardSeries("misses", shard)),
                now.Get(ShardSeries("windows_breached", shard)),
                now.Get(ShardSeries("exhausted_events", shard)),
                now.Get(ShardSeries("tenants_out_of_budget", shard)));
  }

  if (!tenants.empty()) {
    std::printf("\nworst-burn tenants:\n%10s %6s %14s %8s\n", "tenant",
                "shard", "window_misses", "burn");
    int shown = 0;
    for (const TenantRow& row : tenants) {
      if (shown++ >= top_n) break;
      std::printf("%10" PRIu64 " %6" PRIu64 " %14" PRIu64 " %8.2f\n",
                  row.tenant, row.shard, row.window_misses, row.burn);
    }
  }

  // Chaos counters appear once a chaos run has absorbed into the scope.
  const double chaos_ticks = now.Get("rrs_fleet_chaos_ticks");
  if (chaos_ticks > 0) {
    std::printf(
        "\nchaos: %.0f ticks | %.0f kills | %.0f evictions | %.0f restores "
        "| %.0f migrations\n",
        chaos_ticks, now.Get("rrs_fleet_chaos_kills"),
        now.Get("rrs_fleet_chaos_evictions"),
        now.Get("rrs_fleet_chaos_restores"),
        now.Get("rrs_fleet_chaos_migrations"));
  }
}

// One scrape target in --endpoints mode: "8081" or "10.0.0.2:8081".
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

bool ParseEndpoints(std::string_view list, const std::string& default_host,
                    std::vector<Endpoint>* out) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view item = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    Endpoint endpoint;
    endpoint.host = default_host;
    const size_t colon = item.rfind(':');
    std::string port_text;
    if (colon != std::string_view::npos) {
      endpoint.host = std::string(item.substr(0, colon));
      port_text = std::string(item.substr(colon + 1));
    } else {
      port_text = std::string(item);
    }
    endpoint.port = std::atoi(port_text.c_str());
    if (endpoint.port <= 0) return false;
    out->push_back(std::move(endpoint));
  }
  return !out->empty();
}

// Per-worker breakdown across all endpoints, plus summed fleet rates. The
// worker rows read the rrs_worker_dist_worker_* series each worker process
// absorbs at every tick barrier.
void RenderMulti(const std::vector<Endpoint>& endpoints,
                 const std::vector<Frame>& now,
                 const std::vector<Frame>& prev) {
  std::printf("%-22s %8s %14s %12s %10s %9s %9s\n", "endpoint", "ticks",
              "rounds", "rounds/s", "done", "restores", "snaps");
  double fleet_rate = 0.0;
  double fleet_rounds = 0.0;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    char where[64];
    std::snprintf(where, sizeof(where), "%s:%d", endpoints[i].host.c_str(),
                  endpoints[i].port);
    if (!now[i].ok) {
      std::printf("%-22s %8s\n", where, "down");
      continue;
    }
    const double rounds = now[i].Get("rrs_worker_dist_worker_rounds_stepped");
    double rate = 0.0;
    if (i < prev.size() && prev[i].ok && now[i].scrape_ns > prev[i].scrape_ns) {
      rate = (rounds - prev[i].Get("rrs_worker_dist_worker_rounds_stepped")) *
             1e9 / static_cast<double>(now[i].scrape_ns - prev[i].scrape_ns);
    }
    fleet_rate += rate;
    fleet_rounds += rounds;
    std::printf("%-22s %8.0f %14.0f %12.0f %10.0f %9.0f %9.0f\n", where,
                now[i].Get("rrs_worker_dist_worker_ticks"), rounds, rate,
                now[i].Get("rrs_worker_dist_worker_completed"),
                now[i].Get("rrs_worker_dist_worker_restores"),
                now[i].Get("rrs_worker_dist_worker_snapshots"));
  }
  std::printf("%-22s %8s %14.0f %12.0f  (aggregate)\n\n", "fleet", "",
              fleet_rounds, fleet_rate);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  int top_n = 10;
  bool once = false;
  std::string endpoints_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (arg == "--endpoints" && i + 1 < argc) {
      endpoints_arg = argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else if (arg[0] != '-' && port == 0) {
      port = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: fleet_top <port> [--host H] [--interval-ms N] "
                   "[--top N] [--once]\n"
                   "       fleet_top --endpoints <p1,p2,host:p3,...> "
                   "[--host H] [--interval-ms N] [--top N] [--once]\n");
      return 2;
    }
  }

  if (!endpoints_arg.empty()) {
    std::vector<Endpoint> endpoints;
    if (!ParseEndpoints(endpoints_arg, host, &endpoints)) {
      std::fprintf(stderr, "fleet_top: bad --endpoints list '%s'\n",
                   endpoints_arg.c_str());
      return 2;
    }
    std::vector<Frame> prev(endpoints.size());
    while (true) {
      std::vector<Frame> now(endpoints.size());
      size_t up = 0;
      for (size_t i = 0; i < endpoints.size(); ++i) {
        now[i] = Scrape(endpoints[i].host, endpoints[i].port);
        if (now[i].ok) ++up;
      }
      if (up == 0) {
        std::fprintf(stderr, "fleet_top: all %zu endpoints down\n",
                     endpoints.size());
        return 1;
      }
      if (!once) std::printf("\x1b[H\x1b[2J");
      RenderMulti(endpoints, now, prev);
      // An endpoint exporting the fleet SLO section is the controller:
      // render the classic totals view for it under the worker table.
      for (size_t i = 0; i < endpoints.size(); ++i) {
        if (now[i].ok &&
            now[i].series.count("rrs_fleet_slo_tenants_seen") > 0) {
          const std::vector<TenantRow> tenants =
              FetchTenants(endpoints[i].host, endpoints[i].port);
          Render(now[i], prev[i], tenants, top_n);
          break;
        }
      }
      std::fflush(stdout);
      if (once) return 0;
      prev = std::move(now);
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }

  if (port <= 0) {
    std::fprintf(stderr, "fleet_top: missing or invalid port\n");
    return 2;
  }

  Frame prev;
  while (true) {
    Frame now = Scrape(host, port);
    if (!now.ok) {
      std::fprintf(stderr, "fleet_top: scrape of %s:%d failed\n", host.c_str(),
                   port);
      return 1;
    }
    const std::vector<TenantRow> tenants = FetchTenants(host, port);
    if (!once) std::printf("\x1b[H\x1b[2J");  // cursor home + clear
    Render(now, prev, tenants, top_n);
    std::fflush(stdout);
    if (once) break;
    prev = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
