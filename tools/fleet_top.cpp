// fleet_top: a text-mode "top" for a live fleet.
//
// Polls an obs::ExportServer endpoint (bench_fleet --serve-metrics, trace_tool
// --serve-metrics, or any embedding that wires Scope + SloTracker into an
// ExportServer) and renders a refreshing table: fleet totals with a rounds/s
// rate derived from successive scrapes, the per-shard SLO series, and the
// worst-burn tenants from /tenants.
//
//   fleet_top <port> [--host 127.0.0.1] [--interval-ms 1000] [--top 10]
//             [--once]
//
// --once prints a single frame without clearing the screen (scripts, docs,
// tests). Everything is parsed from the Prometheus text exposition — the tool
// depends only on the rrsched library's HttpGet client.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export_server.h"
#include "obs/trace.h"

namespace {

// One scrape of /metrics, parsed. Keys are full series names including the
// label block, e.g. `rrs_fleet_slo_rounds` or `rrs_fleet_slo_rounds{shard="3"}`.
struct Frame {
  std::map<std::string, double> series;
  int64_t scrape_ns = 0;
  bool ok = false;

  double Get(const std::string& name) const {
    auto it = series.find(name);
    return it == series.end() ? 0.0 : it->second;
  }
};

Frame Scrape(const std::string& host, int port) {
  Frame frame;
  std::string error;
  const std::string body =
      rrs::obs::HttpGet(host, port, "/metrics", &error);
  frame.scrape_ns = rrs::obs::NowNs();
  if (body.empty() && !error.empty()) return frame;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(body.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) continue;
    const std::string name(line.substr(0, space));
    frame.series[name] = std::strtod(line.data() + space + 1, nullptr);
  }
  frame.ok = true;
  return frame;
}

// Minimal extraction from the /tenants JSON array (flat objects with numeric
// fields only, as rendered by SloTracker::TenantsJson).
struct TenantRow {
  uint64_t tenant = 0;
  uint64_t shard = 0;
  uint64_t window_misses = 0;
  double burn = 0.0;
};

double JsonField(std::string_view object, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string_view::npos) return 0.0;
  return std::strtod(object.data() + at + needle.size(), nullptr);
}

std::vector<TenantRow> FetchTenants(const std::string& host, int port) {
  std::vector<TenantRow> rows;
  const std::string body = rrs::obs::HttpGet(host, port, "/tenants");
  size_t pos = 0;
  while ((pos = body.find('{', pos)) != std::string::npos) {
    const size_t end = body.find('}', pos);
    if (end == std::string::npos) break;
    const std::string_view object(body.data() + pos, end - pos);
    TenantRow row;
    row.tenant = static_cast<uint64_t>(JsonField(object, "tenant"));
    row.shard = static_cast<uint64_t>(JsonField(object, "shard"));
    row.window_misses =
        static_cast<uint64_t>(JsonField(object, "window_misses"));
    row.burn = JsonField(object, "burn");
    rows.push_back(row);
    pos = end + 1;
  }
  return rows;
}

std::string ShardSeries(const char* base, size_t shard) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rrs_fleet_slo_%s{shard=\"%zu\"}", base,
                shard);
  return buf;
}

void Render(const Frame& now, const Frame& prev,
            const std::vector<TenantRow>& tenants, int top_n) {
  const double seen = now.Get("rrs_fleet_slo_tenants_seen");
  const double finished = now.Get("rrs_fleet_slo_tenants_finished");
  const double rounds = now.Get("rrs_fleet_slo_rounds");
  const double misses = now.Get("rrs_fleet_slo_misses");
  const double out = now.Get("rrs_fleet_slo_tenants_out_of_budget");
  const double worst = now.Get("rrs_fleet_slo_worst_burn");
  const double breached = now.Get("rrs_fleet_slo_windows_breached");

  double rounds_per_s = 0.0;
  if (prev.ok && now.scrape_ns > prev.scrape_ns) {
    rounds_per_s = (rounds - prev.Get("rrs_fleet_slo_rounds")) * 1e9 /
                   static_cast<double>(now.scrape_ns - prev.scrape_ns);
  }

  std::printf(
      "fleet: %.0f tenants seen, %.0f finished | %.0f rounds (%.0f/s) | "
      "%.0f misses | %.0f windows breached | %.0f out of budget | "
      "worst burn %.2f\n\n",
      seen, finished, rounds, rounds_per_s, misses, breached, out, worst);

  std::printf("%6s %14s %12s %10s %10s %8s\n", "shard", "rounds", "misses",
              "breached", "exhausted", "out");
  for (size_t shard = 0;; ++shard) {
    const std::string key = ShardSeries("rounds", shard);
    if (now.series.find(key) == now.series.end()) break;
    std::printf("%6zu %14.0f %12.0f %10.0f %10.0f %8.0f\n", shard,
                now.Get(key), now.Get(ShardSeries("misses", shard)),
                now.Get(ShardSeries("windows_breached", shard)),
                now.Get(ShardSeries("exhausted_events", shard)),
                now.Get(ShardSeries("tenants_out_of_budget", shard)));
  }

  if (!tenants.empty()) {
    std::printf("\nworst-burn tenants:\n%10s %6s %14s %8s\n", "tenant",
                "shard", "window_misses", "burn");
    int shown = 0;
    for (const TenantRow& row : tenants) {
      if (shown++ >= top_n) break;
      std::printf("%10" PRIu64 " %6" PRIu64 " %14" PRIu64 " %8.2f\n",
                  row.tenant, row.shard, row.window_misses, row.burn);
    }
  }

  // Chaos counters appear once a chaos run has absorbed into the scope.
  const double chaos_ticks = now.Get("rrs_fleet_chaos_ticks");
  if (chaos_ticks > 0) {
    std::printf(
        "\nchaos: %.0f ticks | %.0f kills | %.0f evictions | %.0f restores "
        "| %.0f migrations\n",
        chaos_ticks, now.Get("rrs_fleet_chaos_kills"),
        now.Get("rrs_fleet_chaos_evictions"),
        now.Get("rrs_fleet_chaos_restores"),
        now.Get("rrs_fleet_chaos_migrations"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  int top_n = 10;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (arg == "--once") {
      once = true;
    } else if (arg[0] != '-' && port == 0) {
      port = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: fleet_top <port> [--host H] [--interval-ms N] "
                   "[--top N] [--once]\n");
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "fleet_top: missing or invalid port\n");
    return 2;
  }

  Frame prev;
  while (true) {
    Frame now = Scrape(host, port);
    if (!now.ok) {
      std::fprintf(stderr, "fleet_top: scrape of %s:%d failed\n", host.c_str(),
                   port);
      return 1;
    }
    const std::vector<TenantRow> tenants = FetchTenants(host, port);
    if (!once) std::printf("\x1b[H\x1b[2J");  // cursor home + clear
    Render(now, prev, tenants, top_n);
    std::fflush(stdout);
    if (once) break;
    prev = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
