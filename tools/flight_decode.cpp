// flight_decode: pretty-print a flight-recorder post-mortem dump.
//
//   flight_decode <dump-file> [--merged] [--ring <name>]
//
// Default output is one section per ring (oldest event first). --merged
// interleaves every ring's events into one global time-ordered stream —
// the view that answers "what was the whole fleet doing when it died".
// Timestamps print relative to the earliest event in the dump.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <dump-file> [--merged] [--ring <name>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* only_ring = nullptr;
  bool merged = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merged") == 0) {
      merged = true;
    } else if (std::strcmp(argv[i], "--ring") == 0 && i + 1 < argc) {
      only_ring = argv[++i];
    } else if (path == nullptr && argv[i][0] != '-') {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path == nullptr) return Usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "flight_decode: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  rrs::obs::DecodedFlight flight;
  std::string error;
  if (!rrs::obs::DecodeFlightDump(bytes, &flight, &error)) {
    std::fprintf(stderr, "flight_decode: %s: %s\n", path, error.c_str());
    return 1;
  }

  uint64_t epoch_ns = UINT64_MAX;
  size_t total_events = 0;
  for (const auto& ring : flight.rings) {
    for (const auto& event : ring.events) {
      epoch_ns = std::min(epoch_ns, event.ts_ns);
    }
    total_events += ring.events.size();
  }
  if (epoch_ns == UINT64_MAX) epoch_ns = 0;

  std::printf("flight dump %s: version %u, %zu rings, capacity %llu, "
              "%zu events retained\n",
              path, flight.version, flight.rings.size(),
              static_cast<unsigned long long>(flight.ring_capacity),
              total_events);

  if (merged) {
    struct Tagged {
      const rrs::obs::FlightEvent* event;
      const std::string* ring;
    };
    std::vector<Tagged> all;
    all.reserve(total_events);
    for (const auto& ring : flight.rings) {
      if (only_ring != nullptr && ring.name != only_ring) continue;
      for (const auto& event : ring.events) all.push_back({&event, &ring.name});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Tagged& a, const Tagged& b) {
                       return a.event->ts_ns < b.event->ts_ns;
                     });
    for (const auto& t : all) {
      std::printf("%s  [%s]\n",
                  rrs::obs::FormatFlightEvent(*t.event, epoch_ns).c_str(),
                  t.ring->c_str());
    }
    return 0;
  }

  for (const auto& ring : flight.rings) {
    if (only_ring != nullptr && ring.name != only_ring) continue;
    std::printf("\n== ring %s: %llu recorded, %zu retained ==\n",
                ring.name.c_str(),
                static_cast<unsigned long long>(ring.recorded),
                ring.events.size());
    for (const auto& event : ring.events) {
      std::printf("%s\n",
                  rrs::obs::FormatFlightEvent(event, epoch_ns).c_str());
    }
  }
  return 0;
}
