// net/socket.h: deadline-aware I/O, length-prefixed frames, and the HttpGet
// client's short-read/timeout discipline.

#include "net/socket.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/export_server.h"

namespace rrs {
namespace {

TEST(Deadline, InfiniteNeverExpires) {
  const net::Deadline d = net::Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.PollTimeoutMs(), -1);
}

TEST(Deadline, ZeroBudgetIsExpired) {
  const net::Deadline d = net::Deadline::In(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.PollTimeoutMs(), 0);
}

TEST(Deadline, NegativeMsBehavesLikeInfinite) {
  EXPECT_TRUE(net::Deadline::In(-5).infinite());
}

TEST(Frames, RoundTripOverSocketpair) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(net::UnixStreamPair(fds, &error)) << error;
  const std::vector<uint64_t> payload = {1, 2, 3, 0xdeadbeef, 0};
  ASSERT_TRUE(net::SendFrame(fds[0], 42, payload));
  uint64_t type = 0;
  std::vector<uint64_t> got;
  ASSERT_TRUE(
      net::RecvFrame(fds[1], &type, &got, net::Deadline::In(5000), &error))
      << error;
  EXPECT_EQ(type, 42u);
  EXPECT_EQ(got, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Frames, EmptyPayloadTravels) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  ASSERT_TRUE(net::SendFrame(fds[0], 7, {}));
  uint64_t type = 0;
  std::vector<uint64_t> got = {99};  // must be overwritten
  ASSERT_TRUE(net::RecvFrame(fds[1], &type, &got, net::Deadline::In(5000)));
  EXPECT_EQ(type, 7u);
  EXPECT_TRUE(got.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Frames, CleanEofBetweenFramesIsNotAnError) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  ::close(fds[0]);
  uint64_t type = 0;
  std::vector<uint64_t> got;
  std::string error = "sentinel";
  EXPECT_FALSE(
      net::RecvFrame(fds[1], &type, &got, net::Deadline::In(5000), &error));
  EXPECT_TRUE(error.empty()) << error;  // orderly shutdown, not a fault
  ::close(fds[1]);
}

TEST(Frames, EofMidFrameIsAnError) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  // Header promising 4 payload words, then hang up after one.
  const uint64_t header[2] = {4, 11};
  ASSERT_TRUE(net::SendAll(fds[0], header, sizeof(header)));
  const uint64_t one = 123;
  ASSERT_TRUE(net::SendAll(fds[0], &one, sizeof(one)));
  ::close(fds[0]);
  uint64_t type = 0;
  std::vector<uint64_t> got;
  std::string error;
  EXPECT_FALSE(
      net::RecvFrame(fds[1], &type, &got, net::Deadline::In(5000), &error));
  EXPECT_FALSE(error.empty());
  ::close(fds[1]);
}

TEST(Frames, OversizedLengthPrefixIsRejectedNotAllocated) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  const uint64_t header[2] = {net::kMaxFrameWords + 1, 5};
  ASSERT_TRUE(net::SendAll(fds[0], header, sizeof(header)));
  uint64_t type = 0;
  std::vector<uint64_t> got;
  std::string error;
  EXPECT_FALSE(
      net::RecvFrame(fds[1], &type, &got, net::Deadline::In(5000), &error));
  EXPECT_NE(error.find("frame"), std::string::npos) << error;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RecvExact, TimesOutOnSilentPeer) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  char buf[8];
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(net::RecvExact(fds[1], buf, sizeof(buf),
                              net::Deadline::In(100)));
  EXPECT_EQ(errno, ETIMEDOUT);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Must have actually waited (not failed instantly) and then returned.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RecvExact, AssemblesDribbledBytes) {
  int fds[2];
  ASSERT_TRUE(net::UnixStreamPair(fds));
  std::thread writer([fd = fds[0]] {
    for (char c = 'a'; c <= 'h'; ++c) {
      net::SendAll(fd, &c, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  char buf[8];
  ASSERT_TRUE(net::RecvExact(fds[1], buf, sizeof(buf),
                             net::Deadline::In(5000)));
  EXPECT_EQ(std::string(buf, 8), "abcdefgh");
  writer.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- HttpGet against adversarial servers ---------------------------------

// One-connection TCP server: accepts a single client on an ephemeral
// loopback port and hands the connected fd to `serve`.
class OneShotServer {
 public:
  explicit OneShotServer(std::function<void(int fd)> serve) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, serve = std::move(serve)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        serve(fd);
        ::close(fd);
      }
    });
  }

  ~OneShotServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

// Reads until the request head terminator so the client's send completes.
void DrainRequest(int fd) {
  char buf[1024];
  std::string seen;
  while (seen.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    seen.append(buf, static_cast<size_t>(n));
  }
}

TEST(HttpGet, AssemblesDribbledBodyAgainstContentLength) {
  const std::string body(1000, 'x');
  OneShotServer server([&body](int fd) {
    DrainRequest(fd);
    const std::string head =
        "HTTP/1.1 200 OK\r\nContent-Length: " + std::to_string(body.size()) +
        "\r\n\r\n";
    net::SendAll(fd, head.data(), head.size());
    // Dribble the body in 100-byte writes with pauses: every read on the
    // client side is a short read.
    for (size_t i = 0; i < body.size(); i += 100) {
      net::SendAll(fd, body.data() + i, 100);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::string error;
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/x", &error, 5000);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(got, body);
}

TEST(HttpGet, SilentServerTimesOutInsteadOfHanging) {
  OneShotServer server([](int fd) {
    DrainRequest(fd);
    // Never respond; hold the connection open past the client deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/slow", &error, 200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
  EXPECT_LT(elapsed, 5000);  // bounded by the deadline, not the server
}

TEST(HttpGet, StallMidBodyTimesOutWithProgressCount) {
  OneShotServer server([](int fd) {
    DrainRequest(fd);
    const std::string head = "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n";
    net::SendAll(fd, head.data(), head.size());
    net::SendAll(fd, "0123456789", 10);  // 10 of 100 bytes, then stall
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  std::string error;
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/stall", &error, 200);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("timeout mid-body"), std::string::npos) << error;
  EXPECT_NE(error.find("10 of 100"), std::string::npos) << error;
}

TEST(HttpGet, EarlyCloseMidBodyIsAnErrorNotATruncatedBody) {
  OneShotServer server([](int fd) {
    DrainRequest(fd);
    const std::string head = "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n";
    net::SendAll(fd, head.data(), head.size());
    net::SendAll(fd, "0123456789", 10);  // then close 90 bytes short
  });
  std::string error;
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/cut", &error, 2000);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("closed mid-body"), std::string::npos) << error;
  EXPECT_NE(error.find("10 of 100"), std::string::npos) << error;
}

TEST(HttpGet, CaseInsensitiveContentLengthAndTrailingBytesTrimmed) {
  OneShotServer server([](int fd) {
    DrainRequest(fd);
    const std::string response =
        "HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nhelloEXTRA";
    net::SendAll(fd, response.data(), response.size());
  });
  std::string error;
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/", &error, 2000);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(got, "hello");
}

TEST(HttpGet, NoContentLengthFallsBackToReadUntilEof) {
  OneShotServer server([](int fd) {
    DrainRequest(fd);
    const std::string response =
        "HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nstreamed";
    net::SendAll(fd, response.data(), response.size());
  });
  std::string error;
  const std::string got =
      obs::HttpGet("127.0.0.1", server.port(), "/", &error, 2000);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(got, "streamed");
}

}  // namespace
}  // namespace rrs
