// Tests for src/reduce: the Distribute and VarBatch reductions and the
// end-to-end pipeline (Theorems 2-3 machinery).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "offline/optimal.h"
#include "reduce/aggregate.h"
#include "reduce/distribute.h"
#include "reduce/punctualize.h"
#include "reduce/pipeline.h"
#include "reduce/varbatch.h"
#include "sched/dlru_edf.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

using reduce::DistributeInstance;
using reduce::VarBatchArrival;
using reduce::VarBatchDelayBound;
using reduce::VarBatchInstance;

// ----------------------------------------------------------- Distribute ----

TEST(Distribute, SplitsOverfullBatchesIntoSubcolors) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 5);  // 5 jobs, D = 2 -> 3 subcolors
  Instance inst = b.Build();
  auto t = DistributeInstance(inst);
  EXPECT_EQ(t.subcolors_per_color[c], 3u);
  EXPECT_EQ(t.transformed.num_colors(), 3u);
  EXPECT_TRUE(t.transformed.IsRateLimited());
  EXPECT_EQ(t.transformed.num_jobs(), 5u);
  // Subcolor delay bounds inherit the base color's.
  for (ColorId sub = 0; sub < 3; ++sub) {
    EXPECT_EQ(t.transformed.delay_bound(sub), 2);
    EXPECT_EQ(t.base_of[sub], c);
  }
  // Ranks 0-1 -> subcolor 0, 2-3 -> subcolor 1, 4 -> subcolor 2.
  EXPECT_EQ(t.transformed.jobs_per_color(),
            (std::vector<uint64_t>{2, 2, 1}));
}

TEST(Distribute, RateLimitedInputPassesThrough) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(2);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 2, 2);
  Instance inst = b.Build();
  ASSERT_TRUE(inst.IsRateLimited());
  auto t = DistributeInstance(inst);
  EXPECT_EQ(t.transformed.num_colors(), inst.num_colors());
  for (JobId id = 0; id < inst.num_jobs(); ++id) {
    EXPECT_EQ(t.transformed.job(id).arrival, inst.job(id).arrival);
  }
}

TEST(Distribute, JobIdsPreserved) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 5);
  b.AddJobs(c, 4, 3);
  Instance inst = b.Build();
  auto t = DistributeInstance(inst);
  for (JobId id = 0; id < inst.num_jobs(); ++id) {
    EXPECT_EQ(t.transformed.job(id).arrival, inst.job(id).arrival);
    EXPECT_EQ(t.base_of[t.transformed.job(id).color], inst.job(id).color);
  }
}

TEST(Distribute, RejectsUnbatchedInput) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 1);
  Instance inst = b.Build();
  EXPECT_DEATH(DistributeInstance(inst), "batched");
}

TEST(Distribute, RunProducesValidProjectedSchedule) {
  std::vector<workload::ColorSpec> specs = {{2, 3.0}, {4, 2.0}, {8, 1.0}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.batched = true;  // batched but NOT rate-limited
  gen.seed = 43;
  Instance inst = MakePoisson(specs, gen);
  ASSERT_TRUE(inst.IsBatched());

  DlruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  auto run = reduce::RunDistribute(inst, policy, options);
  ASSERT_TRUE(run.validation.ok) << run.validation.error;

  // Lemma 4.2: the projected schedule costs at most the inner one.
  CostModel model = options.cost_model;
  EXPECT_LE(run.validation.cost.total(model), run.inner.total_cost(model));
  // Drop cost is exactly preserved (same executions).
  EXPECT_EQ(run.validation.cost.drops, run.inner.cost.drops);
}

TEST(Distribute, ProjectionElidesNoopRecolorings) {
  // Two subcolors of one base color alternating in the inner schedule
  // project to a single base-color configuration.
  reduce::DistributeTransform t;
  t.base_of = {0, 0};
  Schedule inner(1);
  inner.AddReconfig(0, 0, 0, 0);   // subcolor (0,0)
  inner.AddReconfig(3, 0, 0, 1);   // subcolor (0,1): same base color
  Schedule projected = reduce::ProjectDistributeSchedule(inner, t);
  EXPECT_EQ(projected.num_reconfigs(), 1u);
}

// ------------------------------------------------------------- VarBatch ----

TEST(VarBatch, DelayBoundHalving) {
  EXPECT_EQ(VarBatchDelayBound(1), 1);
  EXPECT_EQ(VarBatchDelayBound(2), 1);
  EXPECT_EQ(VarBatchDelayBound(4), 2);
  EXPECT_EQ(VarBatchDelayBound(8), 4);
  EXPECT_EQ(VarBatchDelayBound(1024), 512);
}

TEST(VarBatch, DelayBoundArbitrary) {
  // Section 5.3: round D down to a power of two, then halve.
  EXPECT_EQ(VarBatchDelayBound(3), 1);
  EXPECT_EQ(VarBatchDelayBound(5), 2);
  EXPECT_EQ(VarBatchDelayBound(7), 2);
  EXPECT_EQ(VarBatchDelayBound(12), 4);
}

TEST(VarBatch, ArrivalDelaysToNextHalfBlock) {
  // D = 8 -> half-blocks of 4.
  EXPECT_EQ(VarBatchArrival(0, 8), 4);
  EXPECT_EQ(VarBatchArrival(3, 8), 4);
  EXPECT_EQ(VarBatchArrival(4, 8), 8);
  EXPECT_EQ(VarBatchArrival(7, 8), 8);
  // D = 1: unchanged.
  EXPECT_EQ(VarBatchArrival(5, 1), 5);
}

TEST(VarBatch, TransformedWindowInsideOriginal) {
  // The transformed job's execution window [t', t' + D') must lie inside the
  // original [t, t + D) for every (t, D) combination.
  for (Round d : {1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32}) {
    for (Round t = 0; t < 70; ++t) {
      Round t2 = VarBatchArrival(t, d);
      Round d2 = VarBatchDelayBound(d);
      EXPECT_GE(t2, t) << "t=" << t << " d=" << d;
      EXPECT_LE(t2 + d2, t + d) << "t=" << t << " d=" << d;
    }
  }
}

TEST(VarBatch, TransformedInstanceIsBatched) {
  InstanceBuilder b;
  ColorId c8 = b.AddColor(8);
  ColorId c2 = b.AddColor(2);
  b.AddJob(c8, 3);
  b.AddJob(c8, 5);
  b.AddJob(c2, 1);
  Instance inst = b.Build();
  auto t = VarBatchInstance(inst);
  EXPECT_TRUE(t.transformed.IsBatched());
  EXPECT_EQ(t.transformed.delay_bound(c8), 4);
  EXPECT_EQ(t.transformed.delay_bound(c2), 1);
  EXPECT_EQ(t.transformed.num_jobs(), 3u);
}

TEST(VarBatch, OrigOfMapsBack) {
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJob(c, 6);  // -> arrival 8
  b.AddJob(c, 1);  // -> arrival 4 (sorts first)
  Instance inst = b.Build();
  auto t = VarBatchInstance(inst);
  // Transformed job 0 arrives at 4 and maps to original job 0 (arrival 1);
  // note the original builder also sorts, so original job 0 has arrival 1.
  EXPECT_EQ(t.transformed.job(0).arrival, 4);
  EXPECT_EQ(inst.job(t.orig_of[0]).arrival, 1);
  EXPECT_EQ(t.transformed.job(1).arrival, 8);
  EXPECT_EQ(inst.job(t.orig_of[1]).arrival, 6);
}

// ------------------------------------------------------------ Aggregate ----

TEST(Aggregate, RebuildsAnyScheduleOnTripleResources) {
  // Lemma 4.1 constructively: take an arbitrary offline schedule T for a
  // batched instance (here: several engine policies at m resources), build
  // T' for the Distribute instance on 3m resources, and certify that it
  // executes exactly as many jobs (Lemma 4.5's equal drop cost).
  Rng rng(443);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {{2, 2.0}, {4, 1.5}, {8, 1.0}};
    workload::PoissonOptions gen;
    gen.rounds = 48;
    gen.batched = true;  // batched but NOT rate-limited
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    if (inst.num_jobs() == 0) continue;
    auto dt = DistributeInstance(inst);

    for (const char* name : {"greedy-edf", "lazy-greedy"}) {
      auto policy = MakePolicy(name);
      EngineOptions options;
      options.num_resources = 2;
      options.cost_model.delta = 3;
      options.record_schedule = true;
      RunResult t_run = RunPolicy(inst, *policy, options);
      ASSERT_TRUE(t_run.schedule.has_value());

      auto result =
          reduce::AggregateSchedule(inst, *t_run.schedule, dt);
      EXPECT_EQ(result.executed, t_run.executed) << name;
      EXPECT_EQ(result.schedule.num_resources(), 6u);

      auto v = result.schedule.Validate(dt.transformed);
      ASSERT_TRUE(v.ok) << name << " trial " << trial << ": " << v.error;
      EXPECT_EQ(v.cost.drops, t_run.cost.drops) << name;

      // Lemma 4.6's shape: T' reconfiguration cost within a constant factor
      // of T's TOTAL cost (generous empirical constant).
      CostModel model = options.cost_model;
      EXPECT_LE(v.cost.reconfig_cost(model),
                8 * t_run.total_cost(model) + 8 * model.delta)
          << name << " trial " << trial;
    }
  }
}

TEST(Aggregate, WorksOnExactOptimalSchedules) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(2);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 5);  // over-full batch: 3 subcolors
  b.AddJobs(c1, 0, 3);
  b.AddJobs(c0, 4, 2);
  Instance inst = b.Build();
  auto dt = DistributeInstance(inst);

  offline::OptimalOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 2;
  options.reconstruct_schedule = true;
  auto opt = offline::SolveOptimal(inst, options);
  ASSERT_TRUE(opt.exact && opt.schedule.has_value());

  auto result = reduce::AggregateSchedule(inst, *opt.schedule, dt);
  auto v = result.schedule.Validate(dt.transformed);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, opt.schedule->executions().size());
}

TEST(Aggregate, EmptyScheduleGivesEmptyResult) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJobs(c, 0, 2);
  Instance inst = b.Build();
  auto dt = DistributeInstance(inst);
  Schedule t(2, 1);  // executes nothing
  auto result = reduce::AggregateSchedule(inst, t, dt);
  EXPECT_EQ(result.executed, 0u);
  EXPECT_TRUE(result.schedule.Validate(dt.transformed).ok);
}

// ---------------------------------------------------------- Punctualize ----

TEST(Punctualize, RetimesAnyScheduleIntoPunctualWindows) {
  // Lemma 5.3 constructively: any offline schedule S for [Δ|1|D|1] becomes a
  // punctual schedule S' for the VarBatch instance on 7x resources with the
  // same execution count.
  Rng rng(449);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {1, 0.4}, {2, 0.6}, {4, 0.6}, {8, 0.5}, {16, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 48;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    if (inst.num_jobs() == 0) continue;
    auto vb = VarBatchInstance(inst);

    auto policy = MakePolicy("greedy-edf");
    EngineOptions options;
    options.num_resources = 2;
    options.cost_model.delta = 3;
    options.record_schedule = true;
    RunResult s_run = RunPolicy(inst, *policy, options);
    ASSERT_TRUE(s_run.schedule.has_value());

    auto result = reduce::PunctualizeSchedule(inst, *s_run.schedule, vb);
    EXPECT_EQ(result.executed, s_run.executed);
    EXPECT_EQ(result.schedule.num_resources(), 14u);

    auto v = result.schedule.Validate(vb.transformed);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    EXPECT_EQ(v.cost.drops, s_run.cost.drops);
  }
}

TEST(Punctualize, HandlesNonPowerOfTwoDelays) {
  InstanceBuilder b;
  ColorId c3 = b.AddColor(3);
  ColorId c5 = b.AddColor(5);
  Rng rng(457);
  for (int i = 0; i < 30; ++i) {
    b.AddJob(c3, static_cast<Round>(rng.NextBounded(20)));
    b.AddJob(c5, static_cast<Round>(rng.NextBounded(20)));
  }
  Instance inst = b.Build();
  auto vb = VarBatchInstance(inst);

  auto policy = MakePolicy("lazy-greedy");
  EngineOptions options;
  options.num_resources = 2;
  options.record_schedule = true;
  RunResult s_run = RunPolicy(inst, *policy, options);
  ASSERT_TRUE(s_run.schedule.has_value());

  auto result = reduce::PunctualizeSchedule(inst, *s_run.schedule, vb);
  auto v = result.schedule.Validate(vb.transformed);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, s_run.executed);
}

TEST(Punctualize, ComposedTheorem3OfflineChain) {
  // The full offline direction of Theorem 3, executed: exact OPT on the
  // original instance -> Punctualize (Lemma 5.3, 7x resources, VarBatch
  // instance) -> Aggregate (Lemma 4.1, 3x more, Distribute instance). The
  // final schedule lives on the SAME fully-transformed instance ΔLRU-EDF
  // runs on, executes exactly OPT's job count, and validates.
  InstanceBuilder b;
  ColorId urgent = b.AddColor(2);
  ColorId relaxed = b.AddColor(8);
  for (Round t = 0; t < 12; t += 3) b.AddJobs(urgent, t, 2);
  b.AddJobs(relaxed, 1, 5);
  Instance inst = b.Build();

  offline::OptimalOptions opt_options;
  opt_options.num_resources = 1;
  opt_options.cost_model.delta = 2;
  opt_options.reconstruct_schedule = true;
  auto opt = offline::SolveOptimal(inst, opt_options);
  ASSERT_TRUE(opt.exact && opt.schedule.has_value());

  auto vb = VarBatchInstance(inst);
  auto punctual = reduce::PunctualizeSchedule(inst, *opt.schedule, vb);
  ASSERT_TRUE(punctual.schedule.Validate(vb.transformed).ok);

  auto dt = DistributeInstance(vb.transformed);
  auto aggregated =
      reduce::AggregateSchedule(vb.transformed, punctual.schedule, dt);
  auto v = aggregated.schedule.Validate(dt.transformed);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, opt.schedule->executions().size());
  EXPECT_EQ(aggregated.schedule.num_resources(), 21u);  // 1 -> 7 -> 21
}

// ------------------------------------------------------------- Pipeline ----

TEST(Pipeline, SolveBatchedValidatesAndBoundsCost) {
  std::vector<workload::ColorSpec> specs = {{2, 3.0}, {4, 1.5}, {8, 1.0}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.batched = true;
  gen.seed = 47;
  Instance inst = MakePoisson(specs, gen);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  auto result = reduce::SolveBatched(inst, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
  EXPECT_LE(result.cost().total(options.cost_model),
            result.inner.total_cost(options.cost_model));
}

TEST(Pipeline, SolveOnlineHandlesArbitraryArrivals) {
  std::vector<workload::ColorSpec> specs = {{2, 1.0}, {4, 1.0}, {16, 0.5}};
  workload::PoissonOptions gen;
  gen.rounds = 128;
  gen.seed = 53;
  Instance inst = MakePoisson(specs, gen);
  ASSERT_FALSE(inst.IsBatched());

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  auto result = reduce::SolveOnline(inst, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
  // Executed + dropped == all jobs, on the ORIGINAL instance.
  EXPECT_EQ(result.validation.executed + result.cost().drops,
            inst.num_jobs());
}

TEST(Pipeline, SolveOnlineHandlesNonPowerOfTwoDelays) {
  InstanceBuilder b;
  ColorId c3 = b.AddColor(3);
  ColorId c5 = b.AddColor(5);
  ColorId c12 = b.AddColor(12);
  Rng rng(59);
  for (int i = 0; i < 60; ++i) {
    b.AddJob(c3, static_cast<Round>(rng.NextBounded(40)));
    b.AddJob(c5, static_cast<Round>(rng.NextBounded(40)));
    b.AddJob(c12, static_cast<Round>(rng.NextBounded(40)));
  }
  Instance inst = b.Build();
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  auto result = reduce::SolveOnline(inst, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
}

TEST(Pipeline, SolveOnlineOnScenarioWorkloads) {
  workload::RouterOptions router;
  router.rounds = 256;
  router.seed = 61;
  Instance inst = workload::MakeRouterScenario(
      workload::DefaultRouterServices(), router);

  EngineOptions options;
  options.num_resources = 12;
  options.cost_model.delta = 4;
  auto result = reduce::SolveOnline(inst, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
  // Sanity: the pipeline does real work on a loaded scenario.
  EXPECT_GT(result.validation.executed, 0u);
}

TEST(Pipeline, DelayOnlyReductionNeverBeatsMoreSlack) {
  // The pipeline on an instance with doubled delay bounds should not be more
  // expensive than on the halved one for the same arrivals (more slack can
  // only help this deterministic policy family on average; we assert the
  // weaker sanity property that both validate and produce consistent
  // accounting rather than a cost inequality, which does not hold pointwise).
  std::vector<workload::ColorSpec> tight = {{2, 1.0}, {4, 1.0}};
  std::vector<workload::ColorSpec> loose = {{4, 1.0}, {8, 1.0}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.seed = 67;
  Instance tight_inst = MakePoisson(tight, gen);
  Instance loose_inst = MakePoisson(loose, gen);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  auto a = reduce::SolveOnline(tight_inst, options);
  auto b = reduce::SolveOnline(loose_inst, options);
  EXPECT_TRUE(a.validation.ok);
  EXPECT_TRUE(b.validation.ok);
}

TEST(Pipeline, EmptyInstance) {
  InstanceBuilder b;
  b.AddColor(4);
  Instance inst = b.Build();
  EngineOptions options;
  options.num_resources = 8;
  auto result = reduce::SolveOnline(inst, options);
  EXPECT_TRUE(result.validation.ok);
  EXPECT_EQ(result.cost().total(options.cost_model), 0u);
}

}  // namespace
}  // namespace rrs
