// Differential fuzzing across random instance *shapes*: random color tables
// (delay bounds including non-powers-of-two and D = 1, drop weights), random
// arrival patterns — then cross-check independent implementations against
// each other: DP vs brute force, replay vs streaming (including double
// speed), pipeline projections vs the validator, and bounds vs exact optima.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/reference_engine.h"
#include "core/stream_engine.h"
#include "offline/bruteforce.h"
#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

// Random instance with 1-4 colors, delay bounds drawn from a wide palette
// (including 1, non-powers-of-two, and large), optional drop weights, and
// jobs scattered over a short horizon.
Instance RandomShape(Rng& rng, bool weighted, Round max_rounds = 10,
                     uint64_t max_jobs = 14) {
  InstanceBuilder b;
  const size_t colors = 1 + rng.NextBounded(4);
  static const Round kDelays[] = {1, 2, 3, 4, 5, 7, 8, 12, 16};
  for (size_t c = 0; c < colors; ++c) {
    Round d = kDelays[rng.NextBounded(sizeof(kDelays) / sizeof(Round))];
    uint64_t w = weighted ? 1 + rng.NextBounded(5) : 1;
    b.AddColor(d, "", w);
  }
  const uint64_t jobs = 1 + rng.NextBounded(max_jobs);
  for (uint64_t j = 0; j < jobs; ++j) {
    b.AddJob(static_cast<ColorId>(rng.NextBounded(colors)),
             static_cast<Round>(rng.NextBounded(
                 static_cast<uint64_t>(max_rounds))));
  }
  return b.Build();
}

// Feeds `inst` to a StreamEngine round by round (grouping each round's jobs
// into (color, count) runs, preserving arrival order) and returns it after
// Finish(). `policy` must be freshly made.
void DriveStream(const Instance& inst, StreamEngine& stream) {
  std::vector<std::pair<ColorId, uint64_t>> arrivals;
  for (Round k = 0; k < inst.num_request_rounds(); ++k) {
    arrivals.clear();
    auto jobs = inst.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      ColorId c = jobs[i].color;
      uint64_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      arrivals.emplace_back(c, count);
    }
    stream.Step(arrivals);
  }
  stream.Finish();
}

// Cross-checks the ring-based Engine, the StreamEngine, and the retained
// deque-based reference engine on one instance: exact equality of drops,
// weighted drops, reconfigurations, and executed jobs. The stream leg is
// skipped for weighted instances (StreamEngine's colors-only instance does
// not carry drop weights) and when mini_rounds would need job ids.
void ExpectThreeWayAgreement(const Instance& inst, const std::string& policy,
                             const EngineOptions& options, bool weighted,
                             const std::string& label) {
  auto engine_policy = MakePolicy(policy);
  RunResult fast = RunPolicy(inst, *engine_policy, options);

  auto reference_policy = MakePolicy(policy);
  RunResult oracle = RunPolicyReference(inst, *reference_policy, options);

  ASSERT_EQ(fast.cost.drops, oracle.cost.drops) << label;
  ASSERT_EQ(fast.cost.weighted_drops, oracle.cost.weighted_drops) << label;
  ASSERT_EQ(fast.cost.reconfigurations, oracle.cost.reconfigurations) << label;
  ASSERT_EQ(fast.executed, oracle.executed) << label;
  ASSERT_EQ(fast.arrived, oracle.arrived) << label;

  if (weighted) return;
  std::vector<Round> delays;
  for (ColorId c = 0; c < inst.num_colors(); ++c) {
    delays.push_back(inst.delay_bound(c));
  }
  auto stream_policy = MakePolicy(policy);
  StreamEngine stream(delays, *stream_policy, options);
  DriveStream(inst, stream);
  ASSERT_EQ(stream.cost().drops, oracle.cost.drops) << label;
  ASSERT_EQ(stream.cost().weighted_drops, oracle.cost.weighted_drops) << label;
  ASSERT_EQ(stream.cost().reconfigurations, oracle.cost.reconfigurations)
      << label;
  ASSERT_EQ(stream.executed(), oracle.executed) << label;
}

// ≥600 randomized Poisson instances across policies, resource counts, Δ, and
// single/double speed.
TEST(Differential, EnginesAgreeOnRandomizedPoisson) {
  static const char* kPolicies[] = {"dlru-edf", "dlru",       "edf",
                                    "seq-edf",  "greedy-edf", "static"};
  static const Round kDelays[] = {1, 2, 3, 4, 5, 8, 16};
  Rng rng(2027);
  for (int trial = 0; trial < 600; ++trial) {
    const size_t colors = 1 + rng.NextBounded(6);
    std::vector<workload::ColorSpec> specs;
    for (size_t c = 0; c < colors; ++c) {
      specs.push_back({kDelays[rng.NextBounded(7)],
                       0.1 + 0.2 * static_cast<double>(rng.NextBounded(5))});
    }
    workload::PoissonOptions gen;
    gen.rounds = 10 + static_cast<Round>(rng.NextBounded(30));
    gen.rate_limited = trial % 2 == 0;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    if (inst.num_jobs() == 0) continue;

    EngineOptions options;
    options.num_resources = 4 + 4 * static_cast<uint32_t>(trial % 2);
    options.mini_rounds_per_round = 1 + trial % 2;
    options.cost_model.delta = 1 + trial % 5;

    const std::string policy = kPolicies[trial % 6];
    ExpectThreeWayAgreement(
        inst, policy, options, /*weighted=*/false,
        "poisson trial " + std::to_string(trial) + " policy " + policy);
  }
}

// ≥500 adversarial instances: phase-structured bursts that rotate the hot
// color set every few rounds (the thrash pattern the ΔLRU side exists for),
// deadline-edge stragglers, and occasional weighted drop costs.
TEST(Differential, EnginesAgreeOnAdversarialBursts) {
  static const char* kPolicies[] = {"dlru-edf", "dlru", "edf", "greedy-edf",
                                    "lazy-greedy"};
  Rng rng(2029);
  for (int trial = 0; trial < 500; ++trial) {
    const bool weighted = trial % 4 == 0;
    InstanceBuilder b;
    const size_t colors = 2 + rng.NextBounded(4);
    std::vector<Round> delay(colors);
    for (size_t c = 0; c < colors; ++c) {
      delay[c] = Round{1} << rng.NextBounded(5);  // powers of two, 1..16
      b.AddColor(delay[c], "", weighted ? 1 + rng.NextBounded(5) : 1);
    }
    const Round horizon = 12 + static_cast<Round>(rng.NextBounded(24));
    // Rotating bursts: each phase floods one color, starving the previous
    // one right as its delay bound expires.
    const Round stride = 1 + static_cast<Round>(rng.NextBounded(4));
    for (Round k = 0; k < horizon; k += stride) {
      const ColorId hot = static_cast<ColorId>(
          (static_cast<size_t>(k / stride)) % colors);
      b.AddJobs(hot, k, 1 + rng.NextBounded(12));
      // Deadline-edge straggler on another color.
      if (rng.NextBounded(2) == 0) {
        const ColorId c = static_cast<ColorId>(rng.NextBounded(colors));
        b.AddJob(c, k);
      }
    }
    Instance inst = b.Build();

    EngineOptions options;
    options.num_resources = 4 + static_cast<uint32_t>(rng.NextBounded(5));
    options.mini_rounds_per_round = 1 + trial % 2;
    options.cost_model.delta = 1 + trial % 4;

    const std::string policy = kPolicies[trial % 5];
    ExpectThreeWayAgreement(
        inst, policy, options, weighted,
        "adversarial trial " + std::to_string(trial) + " policy " + policy);
  }
}

TEST(Differential, DpMatchesBruteForceAcrossShapes) {
  Rng rng(1009);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    bool weighted = trial % 3 == 0;
    Instance inst = RandomShape(rng, weighted, /*max_rounds=*/7,
                                /*max_jobs=*/10);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 4;

    offline::OptimalOptions dp_options;
    dp_options.num_resources = m;
    dp_options.cost_model.delta = delta;
    auto dp = offline::SolveOptimal(inst, dp_options);
    ASSERT_TRUE(dp.exact) << "trial " << trial;

    offline::BruteForceOptions bf_options;
    bf_options.num_resources = m;
    bf_options.cost_model.delta = delta;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    if (!bf.has_value()) continue;  // node budget
    EXPECT_EQ(dp.total_cost, *bf)
        << "trial " << trial << " m=" << m << " delta=" << delta
        << (weighted ? " weighted" : "") << "\n"
        << inst.Summary();
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(Differential, BoundsBracketExactOptimumAcrossShapes) {
  Rng rng(1013);
  for (int trial = 0; trial < 40; ++trial) {
    bool weighted = trial % 2 == 0;
    Instance inst = RandomShape(rng, weighted, 8, 12);
    const uint32_t m = 1;
    const uint64_t delta = 1 + trial % 5;
    CostModel model{delta};

    offline::OptimalOptions options;
    options.num_resources = m;
    options.cost_model = model;
    auto opt = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(opt.exact);

    EXPECT_LE(offline::LowerBound(inst, m, model), opt.total_cost)
        << "trial " << trial;
    EXPECT_GE(offline::ClairvoyantCost(inst, m, model).total_cost,
              opt.total_cost)
        << "trial " << trial;
  }
}

TEST(Differential, ReconstructionMatchesDpAcrossShapes) {
  Rng rng(1019);
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst = RandomShape(rng, trial % 4 == 0, 8, 12);
    const uint64_t delta = 1 + trial % 3;
    offline::OptimalOptions options;
    options.num_resources = 2;
    options.cost_model.delta = delta;
    options.reconstruct_schedule = true;
    auto result = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(result.exact && result.schedule.has_value());
    auto v = result.schedule->Validate(inst);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    EXPECT_EQ(v.cost.total(CostModel{delta}), result.total_cost)
        << "trial " << trial;
  }
}

TEST(Differential, StreamMatchesReplayAtDoubleSpeed) {
  Rng rng(1021);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst = RandomShape(rng, false, 40, 60);
    for (const char* name : {"seq-edf", "greedy-edf", "lazy-greedy"}) {
      EngineOptions options;
      options.num_resources = 3;
      options.mini_rounds_per_round = 2;  // double speed
      options.cost_model.delta = 2;

      auto replay_policy = MakePolicy(name);
      RunResult replay = RunPolicy(inst, *replay_policy, options);

      std::vector<Round> delays;
      for (ColorId c = 0; c < inst.num_colors(); ++c) {
        delays.push_back(inst.delay_bound(c));
      }
      auto stream_policy = MakePolicy(name);
      StreamEngine stream(delays, *stream_policy, options);
      std::vector<std::pair<ColorId, uint64_t>> arrivals;
      for (Round k = 0; k < inst.num_request_rounds(); ++k) {
        arrivals.clear();
        auto jobs = inst.jobs_in_round(k);
        size_t i = 0;
        while (i < jobs.size()) {
          ColorId c = jobs[i].color;
          uint64_t count = 0;
          while (i < jobs.size() && jobs[i].color == c) {
            ++count;
            ++i;
          }
          arrivals.emplace_back(c, count);
        }
        stream.Step(arrivals);
      }
      stream.Finish();
      EXPECT_EQ(stream.cost().reconfigurations, replay.cost.reconfigurations)
          << name << " trial " << trial;
      EXPECT_EQ(stream.cost().drops, replay.cost.drops)
          << name << " trial " << trial;
    }
  }
}

TEST(Differential, PipelineValidatesAcrossShapes) {
  Rng rng(1031);
  for (int trial = 0; trial < 30; ++trial) {
    Instance inst = RandomShape(rng, false, 30, 50);
    EngineOptions options;
    options.num_resources = 4 + 4 * static_cast<uint32_t>(trial % 3);
    options.cost_model.delta = 1 + trial % 5;
    auto result = reduce::SolveOnline(inst, options);
    ASSERT_TRUE(result.validation.ok)
        << "trial " << trial << ": " << result.validation.error << "\n"
        << inst.Summary();
    EXPECT_EQ(result.validation.executed + result.cost().drops,
              inst.num_jobs());
  }
}

TEST(Differential, AllPoliciesHandleDegenerateShapes) {
  // Single job; all-same-round bursts; one color only; horizon-1 instances.
  std::vector<Instance> shapes;
  {
    InstanceBuilder b;
    b.AddJob(b.AddColor(1), 0);
    shapes.push_back(b.Build());
  }
  {
    InstanceBuilder b;
    ColorId c = b.AddColor(4);
    b.AddJobs(c, 0, 50);
    shapes.push_back(b.Build());
  }
  {
    InstanceBuilder b;
    ColorId c = b.AddColor(16);
    b.AddJob(c, 100);  // late lone arrival
    shapes.push_back(b.Build());
  }
  for (const Instance& inst : shapes) {
    for (const std::string& name : PolicyNames()) {
      auto policy = MakePolicy(name);
      EngineOptions options;
      options.num_resources = 8;
      options.cost_model.delta = 3;
      options.record_schedule = true;
      RunResult r = RunPolicy(inst, *policy, options);
      ASSERT_TRUE(r.schedule.has_value());
      auto v = r.schedule->Validate(inst);
      EXPECT_TRUE(v.ok) << name << ": " << v.error;
      EXPECT_EQ(v.cost, r.cost) << name;
    }
  }
}

}  // namespace
}  // namespace rrs
