// Differential fuzzing across random instance *shapes*: random color tables
// (delay bounds including non-powers-of-two and D = 1, drop weights), random
// arrival patterns — then cross-check independent implementations against
// each other: DP vs brute force, replay vs streaming (including double
// speed), pipeline projections vs the validator, and bounds vs exact optima.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "offline/bruteforce.h"
#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "util/rng.h"

namespace rrs {
namespace {

// Random instance with 1-4 colors, delay bounds drawn from a wide palette
// (including 1, non-powers-of-two, and large), optional drop weights, and
// jobs scattered over a short horizon.
Instance RandomShape(Rng& rng, bool weighted, Round max_rounds = 10,
                     uint64_t max_jobs = 14) {
  InstanceBuilder b;
  const size_t colors = 1 + rng.NextBounded(4);
  static const Round kDelays[] = {1, 2, 3, 4, 5, 7, 8, 12, 16};
  for (size_t c = 0; c < colors; ++c) {
    Round d = kDelays[rng.NextBounded(sizeof(kDelays) / sizeof(Round))];
    uint64_t w = weighted ? 1 + rng.NextBounded(5) : 1;
    b.AddColor(d, "", w);
  }
  const uint64_t jobs = 1 + rng.NextBounded(max_jobs);
  for (uint64_t j = 0; j < jobs; ++j) {
    b.AddJob(static_cast<ColorId>(rng.NextBounded(colors)),
             static_cast<Round>(rng.NextBounded(
                 static_cast<uint64_t>(max_rounds))));
  }
  return b.Build();
}

TEST(Differential, DpMatchesBruteForceAcrossShapes) {
  Rng rng(1009);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    bool weighted = trial % 3 == 0;
    Instance inst = RandomShape(rng, weighted, /*max_rounds=*/7,
                                /*max_jobs=*/10);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 4;

    offline::OptimalOptions dp_options;
    dp_options.num_resources = m;
    dp_options.cost_model.delta = delta;
    auto dp = offline::SolveOptimal(inst, dp_options);
    ASSERT_TRUE(dp.has_value()) << "trial " << trial;

    offline::BruteForceOptions bf_options;
    bf_options.num_resources = m;
    bf_options.cost_model.delta = delta;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    if (!bf.has_value()) continue;  // node budget
    EXPECT_EQ(dp->total_cost, *bf)
        << "trial " << trial << " m=" << m << " delta=" << delta
        << (weighted ? " weighted" : "") << "\n"
        << inst.Summary();
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(Differential, BoundsBracketExactOptimumAcrossShapes) {
  Rng rng(1013);
  for (int trial = 0; trial < 40; ++trial) {
    bool weighted = trial % 2 == 0;
    Instance inst = RandomShape(rng, weighted, 8, 12);
    const uint32_t m = 1;
    const uint64_t delta = 1 + trial % 5;
    CostModel model{delta};

    offline::OptimalOptions options;
    options.num_resources = m;
    options.cost_model = model;
    auto opt = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(opt.has_value());

    EXPECT_LE(offline::LowerBound(inst, m, model), opt->total_cost)
        << "trial " << trial;
    EXPECT_GE(offline::ClairvoyantCost(inst, m, model).total_cost,
              opt->total_cost)
        << "trial " << trial;
  }
}

TEST(Differential, ReconstructionMatchesDpAcrossShapes) {
  Rng rng(1019);
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst = RandomShape(rng, trial % 4 == 0, 8, 12);
    const uint64_t delta = 1 + trial % 3;
    offline::OptimalOptions options;
    options.num_resources = 2;
    options.cost_model.delta = delta;
    options.reconstruct_schedule = true;
    auto result = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(result.has_value() && result->schedule.has_value());
    auto v = result->schedule->Validate(inst);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    EXPECT_EQ(v.cost.total(CostModel{delta}), result->total_cost)
        << "trial " << trial;
  }
}

TEST(Differential, StreamMatchesReplayAtDoubleSpeed) {
  Rng rng(1021);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst = RandomShape(rng, false, 40, 60);
    for (const char* name : {"seq-edf", "greedy-edf", "lazy-greedy"}) {
      EngineOptions options;
      options.num_resources = 3;
      options.mini_rounds_per_round = 2;  // double speed
      options.cost_model.delta = 2;

      auto replay_policy = MakePolicy(name);
      RunResult replay = RunPolicy(inst, *replay_policy, options);

      std::vector<Round> delays;
      for (ColorId c = 0; c < inst.num_colors(); ++c) {
        delays.push_back(inst.delay_bound(c));
      }
      auto stream_policy = MakePolicy(name);
      StreamEngine stream(delays, *stream_policy, options);
      std::vector<std::pair<ColorId, uint64_t>> arrivals;
      for (Round k = 0; k < inst.num_request_rounds(); ++k) {
        arrivals.clear();
        auto jobs = inst.jobs_in_round(k);
        size_t i = 0;
        while (i < jobs.size()) {
          ColorId c = jobs[i].color;
          uint64_t count = 0;
          while (i < jobs.size() && jobs[i].color == c) {
            ++count;
            ++i;
          }
          arrivals.emplace_back(c, count);
        }
        stream.Step(arrivals);
      }
      stream.Finish();
      EXPECT_EQ(stream.cost().reconfigurations, replay.cost.reconfigurations)
          << name << " trial " << trial;
      EXPECT_EQ(stream.cost().drops, replay.cost.drops)
          << name << " trial " << trial;
    }
  }
}

TEST(Differential, PipelineValidatesAcrossShapes) {
  Rng rng(1031);
  for (int trial = 0; trial < 30; ++trial) {
    Instance inst = RandomShape(rng, false, 30, 50);
    EngineOptions options;
    options.num_resources = 4 + 4 * static_cast<uint32_t>(trial % 3);
    options.cost_model.delta = 1 + trial % 5;
    auto result = reduce::SolveOnline(inst, options);
    ASSERT_TRUE(result.validation.ok)
        << "trial " << trial << ": " << result.validation.error << "\n"
        << inst.Summary();
    EXPECT_EQ(result.validation.executed + result.cost().drops,
              inst.num_jobs());
  }
}

TEST(Differential, AllPoliciesHandleDegenerateShapes) {
  // Single job; all-same-round bursts; one color only; horizon-1 instances.
  std::vector<Instance> shapes;
  {
    InstanceBuilder b;
    b.AddJob(b.AddColor(1), 0);
    shapes.push_back(b.Build());
  }
  {
    InstanceBuilder b;
    ColorId c = b.AddColor(4);
    b.AddJobs(c, 0, 50);
    shapes.push_back(b.Build());
  }
  {
    InstanceBuilder b;
    ColorId c = b.AddColor(16);
    b.AddJob(c, 100);  // late lone arrival
    shapes.push_back(b.Build());
  }
  for (const Instance& inst : shapes) {
    for (const std::string& name : PolicyNames()) {
      auto policy = MakePolicy(name);
      EngineOptions options;
      options.num_resources = 8;
      options.cost_model.delta = 3;
      options.record_schedule = true;
      RunResult r = RunPolicy(inst, *policy, options);
      ASSERT_TRUE(r.schedule.has_value());
      auto v = r.schedule->Validate(inst);
      EXPECT_TRUE(v.ok) << name << ": " << v.error;
      EXPECT_EQ(v.cost, r.cost) << name;
    }
  }
}

}  // namespace
}  // namespace rrs
