// Tests for the streaming layer: StreamEngine must be cost-equivalent to the
// replay Engine for every policy and workload (they share semantics, not
// code), and OnlineSolver must be cost-equivalent to the offline pipeline
// given matching subcolor budgets.
#include <tuple>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "reduce/distribute.h"
#include "reduce/online.h"
#include "reduce/pipeline.h"
#include "reduce/varbatch.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

// Feeds an Instance into a StreamEngine round by round.
void FeedInstance(const Instance& instance, StreamEngine& engine) {
  std::vector<std::pair<ColorId, uint64_t>> arrivals;
  for (Round k = 0; k < instance.num_request_rounds(); ++k) {
    arrivals.clear();
    auto jobs = instance.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      ColorId c = jobs[i].color;
      uint64_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      arrivals.emplace_back(c, count);
    }
    engine.Step(arrivals);
  }
  engine.Finish();
}

std::vector<Round> DelayBoundsOf(const Instance& instance) {
  std::vector<Round> out;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    out.push_back(instance.delay_bound(c));
  }
  return out;
}

Instance StreamTestWorkload(uint64_t seed, bool rate_limited) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.6}, {4, 0.6}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = 96;
  gen.rate_limited = rate_limited;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

// ---- StreamEngine == Engine (cost equivalence) ------------------------

using EquivParam = std::tuple<std::string, uint64_t, bool>;

class StreamEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(StreamEquivalence, CostsMatchReplayEngine) {
  const auto& [policy_name, seed, rate_limited] = GetParam();
  Instance instance = StreamTestWorkload(seed, rate_limited);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  auto replay_policy = MakePolicy(policy_name);
  RunResult replay = RunPolicy(instance, *replay_policy, options);

  auto stream_policy = MakePolicy(policy_name);
  StreamEngine stream(DelayBoundsOf(instance), *stream_policy, options);
  FeedInstance(instance, stream);

  EXPECT_EQ(stream.cost().reconfigurations, replay.cost.reconfigurations)
      << policy_name;
  EXPECT_EQ(stream.cost().drops, replay.cost.drops) << policy_name;
  EXPECT_EQ(stream.executed(), replay.executed) << policy_name;
  EXPECT_EQ(stream.arrived(), replay.arrived) << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StreamEquivalence,
    ::testing::Combine(::testing::Values("dlru", "edf", "seq-edf", "dlru-edf",
                                         "greedy-edf", "lazy-greedy",
                                         "static"),
                       ::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(true, false)),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      auto name = std::get<0>(info.param) + "_s" +
                  std::to_string(std::get<1>(info.param)) +
                  (std::get<2>(info.param) ? "_rl" : "_raw");
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(StreamEngine, OutcomeReportsActions) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  (void)c;
  auto policy = MakePolicy("greedy-edf");
  EngineOptions options;
  options.num_resources = 2;
  options.cost_model.delta = 2;
  StreamEngine engine({4}, *policy, options);

  std::vector<std::pair<ColorId, uint64_t>> arrivals = {{0, 3}};
  const RoundOutcome& out0 = engine.Step(arrivals);
  EXPECT_EQ(out0.round, 0);
  ASSERT_FALSE(out0.reconfigs.empty());
  ASSERT_FALSE(out0.executions.empty());
  EXPECT_EQ(out0.executions[0].first, 0u);

  engine.Finish();
  EXPECT_FALSE(engine.HasPending());
  EXPECT_EQ(engine.executed() + engine.cost().drops, engine.arrived());
}

TEST(StreamEngine, DropsReportedAtDeadline) {
  auto policy = MakePolicy("never");
  EngineOptions options;
  options.num_resources = 1;
  StreamEngine engine({2}, *policy, options);
  std::vector<std::pair<ColorId, uint64_t>> arrivals = {{0, 5}};
  engine.Step(arrivals);           // round 0: 5 jobs, deadline 2
  EXPECT_TRUE(engine.Step({}).drops.empty());  // round 1: not yet
  const RoundOutcome& out2 = engine.Step({});  // round 2: drop phase fires
  ASSERT_EQ(out2.drops.size(), 1u);
  EXPECT_EQ(out2.drops[0], (std::pair<ColorId, uint64_t>{0, 5}));
}

TEST(StreamEngine, RepeatedColorArrivalsAccumulate) {
  auto policy = MakePolicy("static");
  EngineOptions options;
  options.num_resources = 1;
  StreamEngine engine({8}, *policy, options);
  std::vector<std::pair<ColorId, uint64_t>> arrivals = {{0, 2}, {0, 3}};
  engine.Step(arrivals);
  EXPECT_EQ(engine.arrived(), 5u);
  engine.Finish();
  EXPECT_EQ(engine.executed() + engine.cost().drops, 5u);
}

// ---- OnlineSolver == offline pipeline --------------------------------

class OnlinePipelineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlinePipelineEquivalence, CostsMatchOfflinePipeline) {
  const uint64_t seed = GetParam();
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = 80;
  gen.seed = seed;
  Instance instance = MakePoisson(specs, gen);
  if (instance.num_jobs() == 0) GTEST_SKIP();

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  // Offline pipeline (ground truth).
  auto pipeline = reduce::SolveOnline(instance, options);

  // Matching subcolor budgets so inner color numbering is identical.
  auto varbatch = reduce::VarBatchInstance(instance);
  auto distribute = reduce::DistributeInstance(varbatch.transformed);
  std::vector<reduce::OnlineSolver::ColorSpec> colors;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    colors.push_back({instance.delay_bound(c),
                      distribute.subcolors_per_color[c]});
  }

  reduce::OnlineSolver solver(colors, options);
  std::vector<std::pair<ColorId, uint64_t>> arrivals;
  for (Round k = 0; k < instance.num_request_rounds(); ++k) {
    arrivals.clear();
    auto jobs = instance.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      ColorId c = jobs[i].color;
      uint64_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      arrivals.emplace_back(c, count);
    }
    solver.Step(arrivals);
  }
  solver.Finish();

  EXPECT_EQ(solver.cost().drops, pipeline.cost().drops);
  EXPECT_EQ(solver.cost().reconfigurations, pipeline.cost().reconfigurations);
  EXPECT_EQ(solver.executed(), pipeline.validation.executed);
  EXPECT_EQ(solver.arrived(), instance.num_jobs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlinePipelineEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(OnlineSolver, BudgetOverflowIsCheckedError) {
  std::vector<reduce::OnlineSolver::ColorSpec> colors = {{4, 1}};
  EngineOptions options;
  options.num_resources = 8;
  reduce::OnlineSolver solver(colors, options);
  // D = 4 -> D' = 2; a burst of 5 jobs needs 3 subcolors > budget 1.
  std::vector<std::pair<ColorId, uint64_t>> burst = {{0, 5}};
  solver.Step(burst);               // buffered, no overflow yet
  EXPECT_DEATH(solver.Finish(), "subcolor budget");
}

TEST(OnlineSolver, EmptyStreamIsFree) {
  std::vector<reduce::OnlineSolver::ColorSpec> colors = {{2, 2}, {8, 2}};
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 5;
  reduce::OnlineSolver solver(colors, options);
  for (int k = 0; k < 10; ++k) solver.Step({});
  solver.Finish();
  EXPECT_EQ(solver.cost().total(options.cost_model), 0u);
}

TEST(OnlineSolver, OutcomesAreInBaseColorSpace) {
  std::vector<reduce::OnlineSolver::ColorSpec> colors = {{2, 4}};
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 1;
  reduce::OnlineSolver solver(colors, options);
  std::vector<std::pair<ColorId, uint64_t>> arrivals = {{0, 4}};
  solver.Step(arrivals);
  bool saw_action = false;
  while (solver.current_round() < 12) {
    const RoundOutcome& out = solver.Step({});
    for (const auto& [r, c] : out.reconfigs) {
      EXPECT_TRUE(c == kNoColor || c == 0u);
      saw_action = true;
    }
    for (const auto& [c, count] : out.executions) EXPECT_EQ(c, 0u);
    for (const auto& [c, count] : out.drops) EXPECT_EQ(c, 0u);
  }
  solver.Finish();
  EXPECT_TRUE(saw_action || solver.cost().drops > 0);
}

}  // namespace
}  // namespace rrs
