// Differential suite for streaming ArrivalSources (workload/arrival_source.h):
//
//  - every generator family, fed to the engine as a live source, is
//    bit-identical to running the materialized Instance — for every registry
//    policy (lookahead runs through InstanceSource, which preserves the
//    clairvoyant view);
//  - mix wrapper sources (merge / time-shift / thin / concat) materialize to
//    the exact Instances the legacy transforms build, and feed engines
//    bit-identically;
//  - snapshot bytes of a source-fed run equal the instance-fed run's, and
//    mid-run save/load cuts (including chained wrapper trees and the
//    engine-words + source-words migration format) resume bit-identically;
//  - the streaming TraceStats fold equals the materialized fold, double for
//    double.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "sched/registry.h"
#include "snapshot/codec.h"
#include "workload/arrival_source.h"
#include "workload/generator_spec.h"
#include "workload/memctrl.h"
#include "workload/mix.h"
#include "workload/scenarios.h"
#include "workload/source.h"
#include "workload/synthetic.h"
#include "workload/trace_stats.h"

namespace rrs {
namespace {

using workload::ArrivalSource;
using workload::InstanceSource;

struct NamedSource {
  std::string name;
  std::function<std::unique_ptr<ArrivalSource>()> make;
};

// Small-but-irregular configurations of every generator family: short
// horizons keep the 6 families x 12 policies sweep cheap, mixed delay
// bounds keep the timing wheel honest.
std::vector<NamedSource> GeneratorFamilies() {
  std::vector<NamedSource> families;
  families.push_back({"poisson", [] {
    return workload::MakePoissonSource({{1, 0.8}, {3, 1.4}, {8, 0.5}},
                                       {.rounds = 72, .seed = 11});
  }});
  families.push_back({"bursty", [] {
    workload::BurstyOptions options;
    options.rounds = 72;
    options.p_on_to_off = 0.2;
    options.p_off_to_on = 0.3;
    options.start_on = true;
    options.seed = 12;
    return workload::MakeBurstySource({{2, 2.0}, {5, 1.0}}, options);
  }});
  families.push_back({"zipf", [] {
    workload::ZipfOptions options;
    options.num_colors = 5;
    options.delay_choices = {1, 2, 4};
    options.jobs_per_round = 3.0;
    options.rounds = 72;
    options.seed = 13;
    return workload::MakeZipfSource(options);
  }});
  families.push_back({"router", [] {
    workload::RouterOptions options;
    options.rounds = 96;
    options.period = 24;
    options.seed = 14;
    return workload::MakeRouterSource(workload::DefaultRouterServices(),
                                      options);
  }});
  families.push_back({"datacenter", [] {
    workload::DatacenterOptions options;
    options.num_services = 4;
    options.delay_choices = {2, 4, 8};
    options.rounds = 96;
    options.phase_length = 24;
    options.seed = 15;
    return workload::MakeDatacenterSource(options);
  }});
  families.push_back({"memctrl", [] {
    workload::MemctrlOptions options;
    options.num_ranks = 2;
    options.banks_per_rank = 2;
    options.rounds = 96;
    options.refresh_period = 24;
    options.refresh_length = 4;
    options.seed = 16;
    return workload::MakeMemctrlSource(options);
  }});
  return families;
}

void ExpectSameResult(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.cost.reconfigurations, b.cost.reconfigurations) << label;
  EXPECT_EQ(a.cost.drops, b.cost.drops) << label;
  EXPECT_EQ(a.cost.weighted_drops, b.cost.weighted_drops) << label;
  EXPECT_EQ(a.executed, b.executed) << label;
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.rounds_simulated, b.rounds_simulated) << label;
  EXPECT_EQ(a.drops_per_color, b.drops_per_color) << label;
}

RunResult RunSource(ArrivalSource& source, const std::string& policy_name,
                    const EngineOptions& options) {
  auto policy = MakePolicy(policy_name);
  Engine engine;
  engine.Reset(source, options);
  return engine.Run(*policy);
}

// ---- Generator x policy equivalence ---------------------------------------

TEST(SourceDifferential, EveryGeneratorEveryPolicyMatchesMaterialized) {
  EngineOptions options;
  options.num_resources = 4;
  for (const NamedSource& family : GeneratorFamilies()) {
    auto source = family.make();
    const Instance materialized = workload::Materialize(*source);
    for (const std::string& name : PolicyNames()) {
      auto policy = MakePolicy(name);
      const RunResult instance_fed =
          RunPolicy(materialized, *policy, options);
      // Clairvoyant policies need the full job future, which only the
      // InstanceSource adapter preserves (generator shapes are jobless).
      RunResult source_fed;
      if (name == "lookahead") {
        InstanceSource adapter(materialized);
        source_fed = RunSource(adapter, name, options);
      } else {
        source_fed = RunSource(*source, name, options);
      }
      ExpectSameResult(instance_fed, source_fed, family.name + "/" + name);
    }
  }
}

TEST(SourceDifferential, StreamEngineSourceOverloadMatchesEngine) {
  auto source = GeneratorFamilies()[0].make();
  const Instance materialized = workload::Materialize(*source);
  EngineOptions options;
  options.num_resources = 4;
  auto policy = MakePolicy("dlru-edf");
  const RunResult engine_result = RunPolicy(materialized, *policy, options);

  std::vector<Round> delay_bounds;
  for (size_t c = 0; c < materialized.num_colors(); ++c) {
    delay_bounds.push_back(materialized.delay_bound(static_cast<ColorId>(c)));
  }
  auto stream_policy = MakePolicy("dlru-edf");
  StreamEngine stream(std::move(delay_bounds), *stream_policy, options);
  source->Reset();
  for (Round k = 0; k <= source->horizon(); ++k) stream.Step(*source);
  stream.Finish();
  EXPECT_EQ(engine_result.cost.drops, stream.cost().drops);
  EXPECT_EQ(engine_result.cost.reconfigurations,
            stream.cost().reconfigurations);
  EXPECT_EQ(engine_result.executed, stream.executed());
  EXPECT_EQ(engine_result.arrived, stream.arrived());
}

// ---- Mix wrappers ---------------------------------------------------------

std::unique_ptr<ArrivalSource> BaseA() {
  return workload::MakePoissonSource({{2, 1.2}, {4, 0.7}},
                                     {.rounds = 40, .seed = 21});
}
std::unique_ptr<ArrivalSource> BaseB() {
  workload::BurstyOptions options;
  options.rounds = 32;
  options.p_off_to_on = 0.4;
  options.seed = 22;
  return workload::MakeBurstySource({{2, 1.5}, {4, 1.0}}, options);
}

TEST(MixSourceDifferential, WrappersMatchLegacyTransformsEveryPolicy) {
  const Instance a = workload::Materialize(*BaseA());
  const Instance b = workload::Materialize(*BaseB());

  struct Case {
    std::string name;
    Instance expected;
    std::function<std::unique_ptr<ArrivalSource>()> make;
  };
  std::vector<Case> cases;
  cases.push_back({"time_shift", workload::TimeShift(a, 7),
                   [&] { return workload::MakeTimeShiftSource(BaseA(), 7); }});
  cases.push_back({"thin", workload::Thin(a, 0.6, 99), [&] {
    return workload::MakeThinSource(BaseA(), 0.6, 99);
  }});
  cases.push_back({"concat", workload::Concat(a, b, 5), [&] {
    return workload::MakeConcatSource(BaseA(), BaseB(), 5);
  }});
  cases.push_back({"merge", workload::MergeInstances({&a, &b}), [&] {
    std::vector<std::unique_ptr<ArrivalSource>> parts;
    parts.push_back(BaseA());
    parts.push_back(BaseB());
    return workload::MakeMergeSource(std::move(parts));
  }});

  EngineOptions options;
  options.num_resources = 4;
  for (const Case& c : cases) {
    // The wrapper's replay materializes to the legacy transform's output.
    auto source = c.make();
    const Instance via_source = workload::Materialize(*source);
    ASSERT_EQ(via_source.num_jobs(), c.expected.num_jobs()) << c.name;
    auto jobs_a = via_source.jobs();
    auto jobs_b = c.expected.jobs();
    for (size_t j = 0; j < jobs_a.size(); ++j) {
      EXPECT_EQ(jobs_a[j].color, jobs_b[j].color) << c.name << " job " << j;
      EXPECT_EQ(jobs_a[j].arrival, jobs_b[j].arrival)
          << c.name << " job " << j;
    }
    // And source-fed engines agree with the materialized run, per policy.
    for (const std::string& name : PolicyNames()) {
      if (name == "lookahead") continue;  // wrapper shapes are jobless
      auto policy = MakePolicy(name);
      const RunResult instance_fed = RunPolicy(c.expected, *policy, options);
      const RunResult source_fed = RunSource(*source, name, options);
      ExpectSameResult(instance_fed, source_fed, c.name + "/" + name);
    }
  }
}

// ---- Snapshot equivalence and save/load cuts ------------------------------

TEST(SourceSnapshot, SourceFedSnapshotBytesEqualInstanceFed) {
  auto source = GeneratorFamilies()[1].make();
  const Instance materialized = workload::Materialize(*source);
  EngineOptions options;
  options.num_resources = 4;

  Engine instance_fed(materialized, options);
  auto policy_a = MakePolicy("dlru-edf");
  instance_fed.BeginRun(*policy_a);
  instance_fed.StepRounds(17);

  Engine source_fed;
  source_fed.Reset(*source, options);
  auto policy_b = MakePolicy("dlru-edf");
  source_fed.BeginRun(*policy_b);
  source_fed.StepRounds(17);

  snapshot::Writer wa;
  snapshot::Writer wb;
  instance_fed.SnapshotRun(wa);
  source_fed.SnapshotRun(wb);
  EXPECT_EQ(wa.words(), wb.words())
      << "source-fed snapshot diverges from instance-fed";
}

// Drains `source` from its cursor to the end of its request horizon and
// appends every emitted (color, count) run.
std::vector<ArrivalSource::Run> DrainRuns(ArrivalSource& source) {
  std::vector<ArrivalSource::Run> all;
  while (source.cursor() < source.num_request_rounds()) {
    const auto runs = source.NextRound();
    all.insert(all.end(), runs.begin(), runs.end());
    all.emplace_back(kNoColor, source.cursor());  // round separator
  }
  return all;
}

TEST(SourceSnapshot, SaveLoadCutsResumeIdentically) {
  std::vector<NamedSource> cases = GeneratorFamilies();
  cases.push_back({"thin(shift(poisson))", [] {
    return workload::MakeThinSource(
        workload::MakeTimeShiftSource(BaseA(), 3), 0.7, 42);
  }});
  cases.push_back({"concat", [] {
    return workload::MakeConcatSource(BaseA(), BaseB(), 4);
  }});
  cases.push_back({"merge(poisson,bursty)", [] {
    std::vector<std::unique_ptr<ArrivalSource>> parts;
    parts.push_back(BaseA());
    parts.push_back(BaseB());
    return workload::MakeMergeSource(std::move(parts));
  }});
  for (const NamedSource& c : cases) {
    auto original = c.make();
    const Round cut =
        std::min<Round>(13, original->num_request_rounds() / 2);
    for (Round k = 0; k < cut; ++k) original->NextRound();
    snapshot::Writer w;
    original->SaveState(w);
    const std::vector<ArrivalSource::Run> expected = DrainRuns(*original);

    auto restored = c.make();
    snapshot::Reader r(w.words());
    restored->LoadState(r);
    EXPECT_TRUE(r.AtEnd()) << c.name;
    EXPECT_EQ(restored->cursor(), cut) << c.name;
    EXPECT_EQ(DrainRuns(*restored), expected) << c.name;

    // SeekRound replay reaches the same point as the state words.
    auto replayed = c.make();
    replayed->SeekRound(cut);
    EXPECT_EQ(DrainRuns(*replayed), expected) << c.name;
  }
}

TEST(SourceSnapshot, CloneStartsFreshAndMatches) {
  for (const NamedSource& family : GeneratorFamilies()) {
    auto source = family.make();
    for (Round k = 0; k < 9 && k < source->num_request_rounds(); ++k) {
      source->NextRound();
    }
    auto clone = source->Clone();
    EXPECT_EQ(clone->cursor(), 0) << family.name;
    EXPECT_EQ(clone->num_request_rounds(), source->num_request_rounds())
        << family.name;
    EXPECT_EQ(clone->horizon(), source->horizon()) << family.name;
    source->Reset();
    EXPECT_EQ(DrainRuns(*clone), DrainRuns(*source)) << family.name;
  }
}

TEST(SourceSnapshot, EngineMigrationFormatRestoresSourceFedRun) {
  // The dist migration format: [engine words][source words] in one stream,
  // restored with RestoreRun(policy, r, &r).
  for (const NamedSource& family : GeneratorFamilies()) {
    EngineOptions options;
    options.num_resources = 4;
    auto source = family.make();
    Engine engine;
    engine.Reset(*source, options);
    auto policy = MakePolicy("dlru-edf");
    engine.BeginRun(*policy);
    engine.StepRounds(11);
    snapshot::Writer w;
    engine.SnapshotRun(w);
    source->SaveState(w);
    // Reference: keep stepping the original to completion.
    while (engine.StepRounds(64)) {
    }
    RunResult expected;
    engine.FinishRun(expected);

    auto fresh_source = family.make();
    Engine restored;
    restored.Reset(*fresh_source, options);
    auto fresh_policy = MakePolicy("dlru-edf");
    snapshot::Reader r(w.words());
    restored.RestoreRun(*fresh_policy, r, &r);
    EXPECT_TRUE(r.AtEnd()) << family.name;
    while (restored.StepRounds(64)) {
    }
    RunResult resumed;
    restored.FinishRun(resumed);
    ExpectSameResult(expected, resumed, family.name + "/migration");
  }
}

// ---- GeneratorSpec round trips --------------------------------------------

TEST(GeneratorSpecTest, WireRoundTripRebuildsIdenticalSources) {
  std::vector<workload::GeneratorSpec> specs;
  specs.push_back(workload::PoissonSpec({{1, 0.8}, {3, 1.4}, {8, 0.5}},
                                        {.rounds = 72, .seed = 11}));
  {
    workload::BurstyOptions options;
    options.rounds = 72;
    options.p_on_to_off = 0.2;
    options.p_off_to_on = 0.3;
    options.start_on = true;
    options.seed = 12;
    specs.push_back(workload::BurstySpec({{2, 2.0}, {5, 1.0}}, options));
  }
  {
    workload::ZipfOptions options;
    options.num_colors = 5;
    options.delay_choices = {1, 2, 4};
    options.jobs_per_round = 3.0;
    options.rounds = 72;
    options.seed = 13;
    specs.push_back(workload::ZipfSpec(options));
  }
  {
    workload::RouterOptions options;
    options.rounds = 96;
    options.period = 24;
    options.seed = 14;
    specs.push_back(
        workload::RouterSpec(workload::DefaultRouterServices(), options));
  }
  {
    workload::DatacenterOptions options;
    options.num_services = 4;
    options.rounds = 96;
    options.phase_length = 24;
    options.seed = 15;
    specs.push_back(workload::DatacenterSpec(options));
  }
  {
    workload::MemctrlOptions options;
    options.rounds = 96;
    options.refresh_period = 24;
    options.refresh_length = 4;
    options.seed = 16;
    specs.push_back(workload::MemctrlSpec(options));
  }
  for (const workload::GeneratorSpec& spec : specs) {
    snapshot::Writer w;
    PutGeneratorSpec(w, spec);
    snapshot::Reader r(w.words());
    const workload::GeneratorSpec decoded = workload::GetGeneratorSpec(r);
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(decoded, spec);
    auto direct = workload::MakeSource(spec);
    auto via_wire = workload::MakeSource(decoded);
    EXPECT_EQ(DrainRuns(*via_wire), DrainRuns(*direct));
  }
}

// ---- TraceStats streaming fold --------------------------------------------

TEST(TraceStatsStreaming, FoldEqualsMaterializedFold) {
  for (const NamedSource& family : GeneratorFamilies()) {
    auto source = family.make();
    const Instance materialized = workload::Materialize(*source);
    const workload::TraceStats dense =
        workload::ComputeTraceStats(materialized);
    const workload::TraceStats streamed =
        workload::ComputeTraceStats(*source);
    EXPECT_EQ(source->cursor(), 0) << family.name << ": fold must Reset";
    EXPECT_EQ(dense.total_jobs, streamed.total_jobs) << family.name;
    EXPECT_EQ(dense.request_rounds, streamed.request_rounds) << family.name;
    EXPECT_EQ(dense.total_rate, streamed.total_rate) << family.name;
    EXPECT_EQ(dense.min_feasible_resources, streamed.min_feasible_resources)
        << family.name;
    ASSERT_EQ(dense.colors.size(), streamed.colors.size()) << family.name;
    for (size_t c = 0; c < dense.colors.size(); ++c) {
      const workload::ColorStats& x = dense.colors[c];
      const workload::ColorStats& y = streamed.colors[c];
      EXPECT_EQ(x.jobs, y.jobs) << family.name << " color " << c;
      EXPECT_EQ(x.mean_rate, y.mean_rate) << family.name << " color " << c;
      EXPECT_EQ(x.peak_round, y.peak_round) << family.name << " color " << c;
      EXPECT_EQ(x.peak_window, y.peak_window)
          << family.name << " color " << c;
      EXPECT_EQ(x.burstiness, y.burstiness) << family.name << " color " << c;
      EXPECT_EQ(x.load_factor, y.load_factor)
          << family.name << " color " << c;
    }
  }
}

// ---- Memctrl + FR-FCFS ----------------------------------------------------

TEST(MemctrlTest, FrFcfsRunsDeterministically) {
  workload::MemctrlOptions gen;
  gen.rounds = 128;
  gen.seed = 7;
  EngineOptions options;
  options.num_resources = 4;
  auto a = workload::MakeMemctrlSource(gen);
  auto b = workload::MakeMemctrlSource(gen);
  const RunResult first = RunSource(*a, "frfcfs", options);
  const RunResult second = RunSource(*b, "frfcfs", options);
  ExpectSameResult(first, second, "frfcfs determinism");
  EXPECT_GT(first.arrived, 0u);
  EXPECT_EQ(first.executed + first.cost.drops, first.arrived);
}

TEST(MemctrlTest, RefreshWindowsStallThenFlush) {
  // During a rank's refresh window the source must emit nothing for that
  // rank's banks; the stashed demand reappears afterwards (no jobs lost
  // relative to total arrivals being conserved across save/load).
  workload::MemctrlOptions gen;
  gen.num_ranks = 1;
  gen.banks_per_rank = 2;
  gen.rounds = 64;
  gen.refresh_period = 16;
  gen.refresh_length = 4;
  gen.burst_rate = 2.0;
  gen.idle_rate = 1.0;
  gen.seed = 3;
  auto source = workload::MakeMemctrlSource(gen);
  source->Reset();
  while (source->cursor() < source->num_request_rounds()) {
    const Round k = source->cursor();
    const bool in_refresh =
        k % gen.refresh_period < gen.refresh_length;
    const auto runs = source->NextRound();
    if (in_refresh) {
      EXPECT_TRUE(runs.empty()) << "arrivals during refresh at round " << k;
    }
  }
}

}  // namespace
}  // namespace rrs
