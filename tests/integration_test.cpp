// Cross-module integration tests: trace round-trips through the filesystem,
// the full pipeline on application scenarios, Theorem-style end-to-end
// comparisons (Lemma 3.1, the "who wins" shape of the paper), and the
// adversary-vs-pipeline matchups.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "analysis/ratio.h"
#include "core/engine.h"
#include "offline/optimal.h"
#include "reduce/pipeline.h"
#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/greedy.h"
#include "util/rng.h"
#include "workload/adversary.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

TEST(Integration, TraceFileRoundTripPreservesRuns) {
  workload::RouterOptions gen;
  gen.rounds = 128;
  gen.seed = 401;
  Instance inst = workload::MakeRouterScenario(
      workload::DefaultRouterServices(), gen);

  std::string path =
      (std::filesystem::temp_directory_path() / "rrs_trace_test.txt").string();
  ASSERT_TRUE(inst.SaveToFile(path));
  Instance loaded = Instance::LoadFromFile(path);
  std::remove(path.c_str());

  DlruEdfPolicy a, b;
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 4;
  RunResult ra = RunPolicy(inst, a, options);
  RunResult rb = RunPolicy(loaded, b, options);
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(ra.executed, rb.executed);
}

TEST(Integration, Lemma31SparseColorsCostAtMostOff) {
  // Lemma 3.1: if every color has fewer than Δ jobs, ΔLRU-EDF (which never
  // makes such colors eligible and therefore never configures them) costs at
  // most OFF. Verified against the exact optimum.
  Rng rng(409);
  const uint64_t delta = 4;
  for (int trial = 0; trial < 10; ++trial) {
    InstanceBuilder b;
    ColorId c0 = b.AddColor(2);
    ColorId c1 = b.AddColor(4);
    ColorId c2 = b.AddColor(8);
    // At most 3 < delta jobs per color, batched arrivals.
    for (ColorId c : {c0, c1, c2}) {
      Round d = (c == c0) ? 2 : (c == c1 ? 4 : 8);
      uint64_t count = 1 + rng.NextBounded(3);
      for (uint64_t i = 0; i < count; ++i) {
        b.AddJob(c, static_cast<Round>(rng.NextBounded(3)) * d);
      }
    }
    Instance inst = b.Build();
    ASSERT_TRUE(inst.IsBatched());

    DlruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model.delta = delta;
    RunResult online = RunPolicy(inst, policy, options);

    offline::OptimalOptions opt_options;
    opt_options.num_resources = 1;
    opt_options.cost_model.delta = delta;
    auto opt = offline::SolveOptimal(inst, opt_options);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(online.total_cost(options.cost_model), opt.total_cost)
        << "trial " << trial;
    // And ΔLRU-EDF indeed never reconfigures here.
    EXPECT_EQ(online.cost.reconfigurations, 0u);
  }
}

TEST(Integration, PaperShapeOnDlruAdversary) {
  // On Appendix A's input, the expected ordering is:
  //   OFF (handmade) <= ΔLRU-EDF pipeline-free run << ΔLRU.
  // j = 6: the asymptotic ratio 2^{j+1}/(nΔ) = 16 comfortably clears the 8x
  // separation asserted below.
  auto adv = workload::MakeDlruAdversary(4, 2, 6, 11);
  CostModel model{2};
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model = model;

  DlruPolicy dlru;
  uint64_t dlru_cost = RunPolicy(adv.instance, dlru, options).total_cost(model);
  DlruEdfPolicy combined;
  uint64_t combined_cost =
      RunPolicy(adv.instance, combined, options).total_cost(model);
  Schedule off = workload::MakeDlruAdversaryOffSchedule(adv);
  uint64_t off_cost = off.Validate(adv.instance).cost.total(model);

  EXPECT_LT(combined_cost, dlru_cost);
  // ΔLRU-EDF should be within a small constant of OFF while ΔLRU is far off.
  EXPECT_LT(static_cast<double>(combined_cost),
            8.0 * static_cast<double>(off_cost));
  EXPECT_GT(static_cast<double>(dlru_cost),
            8.0 * static_cast<double>(off_cost));
}

TEST(Integration, PaperShapeOnEdfAdversary) {
  // On Appendix B's input: EDF thrashes, ΔLRU-EDF stays near OFF.
  auto adv = workload::MakeEdfAdversary(4, 5, 3, 9);
  CostModel model{5};
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model = model;

  EdfPolicy edf(true);
  uint64_t edf_cost = RunPolicy(adv.instance, edf, options).total_cost(model);
  DlruEdfPolicy combined;
  uint64_t combined_cost =
      RunPolicy(adv.instance, combined, options).total_cost(model);
  Schedule off = workload::MakeEdfAdversaryOffSchedule(adv);
  uint64_t off_cost = off.Validate(adv.instance).cost.total(model);

  EXPECT_LT(combined_cost, edf_cost);
  EXPECT_GT(edf_cost, 4 * off_cost);
}

TEST(Integration, PipelineBeatsNaiveBaselinesOnDatacenter) {
  workload::DatacenterOptions gen;
  gen.rounds = 1024;
  gen.phase_length = 128;
  gen.seed = 419;
  Instance inst = workload::MakeDatacenterScenario(gen);

  CostModel model{8};
  EngineOptions options;
  options.num_resources = 16;
  options.cost_model = model;

  auto pipeline = reduce::SolveOnline(inst, options);
  uint64_t pipeline_cost = pipeline.cost().total(model);

  NeverReconfigurePolicy never;
  uint64_t never_cost = RunPolicy(inst, never, options).total_cost(model);
  EXPECT_LT(pipeline_cost, never_cost);
}

TEST(Integration, ExactRatioOnTinyAdversary) {
  // Even the exact optimum confirms the ΔLRU failure on a miniature
  // Appendix-A instance small enough to solve exactly.
  auto adv = workload::MakeDlruAdversary(/*n=*/2, /*delta=*/1, /*j=*/2,
                                         /*k=*/4);
  CostModel model{1};
  EngineOptions options;
  options.num_resources = 2;
  options.cost_model = model;
  DlruPolicy dlru;
  uint64_t online = RunPolicy(adv.instance, dlru, options).total_cost(model);
  auto exact = analysis::MeasureExactRatio(adv.instance, online, 1, model);
  ASSERT_TRUE(exact.has_value());
  EXPECT_GT(exact->ratio, 1.0);
}

TEST(Integration, SerializedAdversaryStaysAdversarial) {
  auto adv = workload::MakeDlruAdversary(4, 2, 3, 7);
  std::string path =
      (std::filesystem::temp_directory_path() / "rrs_adv_test.txt").string();
  ASSERT_TRUE(adv.instance.SaveToFile(path));
  Instance loaded = Instance::LoadFromFile(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.IsRateLimited());
  EXPECT_EQ(loaded.num_jobs(), adv.instance.num_jobs());
}

}  // namespace
}  // namespace rrs
