// Tests for src/parallel: ThreadPool, ParallelFor, SpscQueue.
#include <atomic>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.h"
#include "parallel/spsc_queue.h"
#include "parallel/thread_pool.h"

namespace rrs {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 6 * 7; });
  auto f2 = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownIsFatal) {
  // ~ThreadPool flips shutting_down_; a Submit that loses the race against
  // shutdown must trip the check rather than enqueue onto joined workers.
  // The child constructs a pool in raw storage and destroys it without
  // releasing the storage, so the post-destruction Submit deterministically
  // sees shutting_down_ == true.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        alignas(ThreadPool) unsigned char storage[sizeof(ThreadPool)];
        auto* p = new (storage) ThreadPool(1);
        p->~ThreadPool();
        p->Submit([] {});
      },
      "Submit after shutdown");
}

TEST(ThreadPool, WaitIdleRacingSubmitStress) {
  // WaitIdle must observe a quiescent pool: every task submitted before the
  // call finished, none lost, no deadlock — while another thread keeps
  // submitting. Runs many short waves to shake out lost-notify races.
  ThreadPool pool(4);
  std::atomic<uint64_t> done{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> submitted{0};
  // Count a submission before handing it to the pool: the task may run (and
  // bump done) before control returns from Submit.
  std::thread submitter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 20; ++i) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // After WaitIdle returns, every submission that happened-before the call
    // has run; concurrent submissions may or may not have. The invariant we
    // can check exactly: done never exceeds submitted, and the pool made
    // progress (queue drained at some observation point).
    pool.WaitIdle();
    EXPECT_LE(done.load(), submitted.load());
  }
  stop.store(true);
  submitter.join();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), submitted.load());
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&](int64_t) { ++calls; });
  ParallelFor(pool, 5, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 0, 100,
                           [&](int64_t i) {
                             if (i == 37) throw std::runtime_error("x");
                           }),
               std::runtime_error);
}

TEST(ParallelFor, SkewedWorkStillCoversEveryIndexOnce) {
  // Per-index cost varies by ~100x; dynamic chunk claiming must still cover
  // the range exactly once (a straggler's unclaimed chunks get stolen).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  std::atomic<uint64_t> checksum{0};
  ParallelFor(pool, 0, 10000, [&](int64_t i) {
    volatile uint64_t sink = 0;
    for (int64_t spin = 0; spin < (i % 97) * 20; ++spin) {
      sink = sink + static_cast<uint64_t>(spin);
    }
    hits[static_cast<size_t>(i)]++;
    checksum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_EQ(checksum.load(), uint64_t{10000} * 9999 / 2);
}

TEST(ParallelFor, LargeMinChunkFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);  // no atomics: must run in the caller only
  ParallelFor(
      pool, 0, 10, [&](int64_t i) { hits[static_cast<size_t>(i)]++; },
      /*min_chunk=*/100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SingleThreadPoolCoversRange) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(pool, 0, 500, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NegativeRangeAndOffsets) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, -100, 100,
              [&](int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), -100);  // sum of [-100, 100) = -100
}

TEST(ParallelMap, ComputesAllValues) {
  ThreadPool pool(4);
  auto out = ParallelMap<int64_t>(pool, 256, [](size_t i) {
    return static_cast<int64_t>(i) * 2;
  });
  ASSERT_EQ(out.size(), 256u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i) * 2);
  }
}

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(2);  // capacity rounds up; fill until rejection
  int pushed = 0;
  while (q.TryPush(pushed)) ++pushed;
  EXPECT_GE(pushed, 2);
  int out;
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));  // space freed
}

TEST(SpscQueue, TwoThreadStressPreservesOrderAndCount) {
  SpscQueue<uint64_t> q(1024);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (q.TryPop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

TEST(GlobalThreadPool, IsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace rrs
