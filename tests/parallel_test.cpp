// Tests for src/parallel: ThreadPool, ParallelFor, SpscQueue.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.h"
#include "parallel/spsc_queue.h"
#include "parallel/thread_pool.h"

namespace rrs {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 6 * 7; });
  auto f2 = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&](int64_t) { ++calls; });
  ParallelFor(pool, 5, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 0, 100,
                           [&](int64_t i) {
                             if (i == 37) throw std::runtime_error("x");
                           }),
               std::runtime_error);
}

TEST(ParallelMap, ComputesAllValues) {
  ThreadPool pool(4);
  auto out = ParallelMap<int64_t>(pool, 256, [](size_t i) {
    return static_cast<int64_t>(i) * 2;
  });
  ASSERT_EQ(out.size(), 256u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i) * 2);
  }
}

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(2);  // capacity rounds up; fill until rejection
  int pushed = 0;
  while (q.TryPush(pushed)) ++pushed;
  EXPECT_GE(pushed, 2);
  int out;
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.TryPush(99));  // space freed
}

TEST(SpscQueue, TwoThreadStressPreservesOrderAndCount) {
  SpscQueue<uint64_t> q(1024);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (q.TryPop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

TEST(GlobalThreadPool, IsSingleton) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace rrs
