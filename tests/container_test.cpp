// Unit and randomized-property tests for src/container: IndexedHeap,
// PairingHeap, IntrusiveIndexList, LruTracker.
#include <algorithm>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "container/flat_map.h"
#include "container/indexed_heap.h"
#include "container/intrusive_list.h"
#include "container/lru_tracker.h"
#include "container/pairing_heap.h"
#include "util/rng.h"

namespace rrs {
namespace {

// --------------------------------------------------------- IndexedHeap ----

TEST(IndexedHeap, PushPopSorted) {
  IndexedHeap<int> heap(10);
  heap.Push(3, 30);
  heap.Push(1, 10);
  heap.Push(2, 20);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.Pop(), 1u);
  EXPECT_EQ(heap.Pop(), 2u);
  EXPECT_EQ(heap.Pop(), 3u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedHeap, DecreaseKeyMovesToTop) {
  IndexedHeap<int> heap(4);
  heap.Push(0, 10);
  heap.Push(1, 20);
  heap.Push(2, 30);
  heap.Update(2, 5);
  EXPECT_EQ(heap.Top(), 2u);
  EXPECT_EQ(heap.PriorityOf(2), 5);
}

TEST(IndexedHeap, IncreaseKeySinks) {
  IndexedHeap<int> heap(4);
  heap.Push(0, 10);
  heap.Push(1, 20);
  heap.Update(0, 100);
  EXPECT_EQ(heap.Top(), 1u);
}

TEST(IndexedHeap, RemoveArbitrary) {
  IndexedHeap<int> heap(5);
  for (uint32_t k = 0; k < 5; ++k) heap.Push(k, static_cast<int>(k));
  heap.Remove(2);
  EXPECT_FALSE(heap.Contains(2));
  EXPECT_TRUE(heap.CheckInvariants());
  std::vector<uint32_t> popped;
  while (!heap.empty()) popped.push_back(heap.Pop());
  EXPECT_EQ(popped, (std::vector<uint32_t>{0, 1, 3, 4}));
}

TEST(IndexedHeap, PushOrUpdate) {
  IndexedHeap<int> heap(3);
  heap.PushOrUpdate(0, 5);
  heap.PushOrUpdate(0, 1);
  EXPECT_EQ(heap.PriorityOf(0), 1);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedHeap, ClearEmpties) {
  IndexedHeap<int> heap(3);
  heap.Push(0, 1);
  heap.Push(1, 2);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.Push(0, 9);  // reusable after clear
  EXPECT_EQ(heap.Top(), 0u);
}

TEST(IndexedHeap, RandomizedAgainstStdPriorityQueue) {
  Rng rng(101);
  const size_t capacity = 64;
  IndexedHeap<uint64_t> heap(capacity);
  std::vector<bool> present(capacity, false);
  std::vector<uint64_t> priority(capacity, 0);

  for (int step = 0; step < 20000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(capacity));
    double action = rng.UniformDouble();
    if (action < 0.4) {
      uint64_t p = rng.NextBounded(1000) * capacity + key;  // unique priority
      if (present[key]) {
        heap.Update(key, p);
      } else {
        heap.Push(key, p);
        present[key] = true;
      }
      priority[key] = p;
    } else if (action < 0.6) {
      if (present[key]) {
        heap.Remove(key);
        present[key] = false;
      }
    } else if (!heap.empty()) {
      uint32_t top = heap.Pop();
      // Verify against a brute-force minimum.
      uint64_t best = UINT64_MAX;
      for (size_t i = 0; i < capacity; ++i) {
        if (present[i]) best = std::min(best, priority[i]);
      }
      EXPECT_EQ(priority[top], best);
      present[top] = false;
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(heap.CheckInvariants()) << "step " << step;
    }
  }
}

// --------------------------------------------------------- PairingHeap ----

TEST(PairingHeap, PushPopSorted) {
  PairingHeap<int, int> heap;
  heap.Push(100, 3);
  heap.Push(200, 1);
  heap.Push(300, 2);
  EXPECT_EQ(heap.Pop().first, 200);
  EXPECT_EQ(heap.Pop().first, 300);
  EXPECT_EQ(heap.Pop().first, 100);
  EXPECT_TRUE(heap.empty());
}

TEST(PairingHeap, DecreaseKey) {
  PairingHeap<int, int> heap;
  heap.Push(1, 10);
  auto h2 = heap.Push(2, 20);
  heap.Push(3, 30);
  heap.DecreaseKey(h2, 5);
  EXPECT_EQ(heap.TopValue(), 2);
  EXPECT_EQ(heap.TopPriority(), 5);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(PairingHeap, DecreaseKeyOnRootIsNoopStructurally) {
  PairingHeap<int, int> heap;
  auto h = heap.Push(1, 10);
  heap.Push(2, 20);
  heap.DecreaseKey(h, 1);
  EXPECT_EQ(heap.TopValue(), 1);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(PairingHeap, RandomizedAgainstStdPriorityQueue) {
  Rng rng(103);
  PairingHeap<uint64_t, uint64_t> heap;
  using Entry = std::pair<uint64_t, uint64_t>;  // (priority, value)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> ref;
  uint64_t next_value = 0;

  for (int step = 0; step < 20000; ++step) {
    if (rng.UniformDouble() < 0.6 || heap.empty()) {
      uint64_t p = rng.NextBounded(1'000'000'000);
      heap.Push(next_value, p);
      ref.emplace(p, next_value);
      ++next_value;
    } else {
      auto [value, priority] = heap.Pop();
      EXPECT_EQ(priority, ref.top().first);
      ref.pop();
    }
  }
  while (!heap.empty()) {
    auto [value, priority] = heap.Pop();
    EXPECT_EQ(priority, ref.top().first);
    ref.pop();
  }
}

TEST(PairingHeap, RandomizedDecreaseKey) {
  Rng rng(107);
  PairingHeap<uint32_t, uint64_t> heap;
  std::vector<PairingHeap<uint32_t, uint64_t>::Handle> handles;
  std::vector<uint64_t> priorities;
  std::vector<bool> live;

  for (int step = 0; step < 5000; ++step) {
    double action = rng.UniformDouble();
    if (action < 0.5 || heap.empty()) {
      uint64_t p = (rng.NextBounded(1000000) << 16) | handles.size();
      handles.push_back(heap.Push(static_cast<uint32_t>(handles.size()), p));
      priorities.push_back(p);
      live.push_back(true);
    } else if (action < 0.8) {
      // Decrease a random live handle.
      size_t tries = 0;
      size_t i = rng.NextBounded(handles.size());
      while (!live[i] && tries++ < handles.size()) {
        i = rng.NextBounded(handles.size());
      }
      if (live[i] && priorities[i] > 0) {
        uint64_t p = rng.NextBounded(priorities[i]);
        heap.DecreaseKey(handles[i], p);
        priorities[i] = p;
      }
    } else {
      auto [value, priority] = heap.Pop();
      uint64_t best = UINT64_MAX;
      for (size_t i = 0; i < priorities.size(); ++i) {
        if (live[i]) best = std::min(best, priorities[i]);
      }
      EXPECT_EQ(priority, best);
      live[value] = false;
    }
  }
  EXPECT_TRUE(heap.CheckInvariants());
}

// -------------------------------------------------- IntrusiveIndexList ----

TEST(IntrusiveIndexList, PushFrontBackOrder) {
  IntrusiveIndexList list(8);
  list.PushBack(1);
  list.PushFront(0);
  list.PushBack(2);
  EXPECT_EQ(list.front(), 0u);
  EXPECT_EQ(list.back(), 2u);
  EXPECT_EQ(list.next(0), 1u);
  EXPECT_EQ(list.next(1), 2u);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.CheckInvariants());
}

TEST(IntrusiveIndexList, RemoveMiddleAndEnds) {
  IntrusiveIndexList list(8);
  for (uint32_t k = 0; k < 5; ++k) list.PushBack(k);
  list.Remove(2);
  EXPECT_EQ(list.next(1), 3u);
  list.Remove(0);
  EXPECT_EQ(list.front(), 1u);
  list.Remove(4);
  EXPECT_EQ(list.back(), 3u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.CheckInvariants());
}

TEST(IntrusiveIndexList, MoveToFront) {
  IntrusiveIndexList list(4);
  for (uint32_t k = 0; k < 4; ++k) list.PushBack(k);
  list.MoveToFront(3);
  EXPECT_EQ(list.front(), 3u);
  EXPECT_EQ(list.back(), 2u);
  list.MoveToFront(3);  // already front: no-op
  EXPECT_EQ(list.front(), 3u);
  EXPECT_TRUE(list.CheckInvariants());
}

TEST(IntrusiveIndexList, ClearAndReuse) {
  IntrusiveIndexList list(4);
  list.PushBack(0);
  list.PushBack(1);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Contains(0));
  list.PushBack(1);
  EXPECT_EQ(list.front(), 1u);
  EXPECT_TRUE(list.CheckInvariants());
}

// ------------------------------------------------------------- FlatMap ----

TEST(FlatMap, InsertFindErase) {
  FlatMap<int, std::string> map;
  map[3] = "three";
  map[1] = "one";
  map[2] = "two";
  EXPECT_EQ(map.size(), 3u);
  EXPECT_TRUE(map.CheckInvariants());
  ASSERT_TRUE(map.contains(2));
  EXPECT_EQ(map.at(2), "two");
  EXPECT_EQ(map.erase(2), 1u);
  EXPECT_EQ(map.erase(2), 0u);
  EXPECT_FALSE(map.contains(2));
  EXPECT_TRUE(map.CheckInvariants());
}

TEST(FlatMap, IterationIsSorted) {
  FlatMap<int, int> map;
  for (int k : {5, 1, 4, 2, 3}) map[k] = k * 10;
  int expected = 1;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(key, expected);
    EXPECT_EQ(value, expected * 10);
    ++expected;
  }
  EXPECT_EQ(map.front().first, 1);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int, uint64_t> map;
  map[7] += 3;
  map[7] += 4;
  EXPECT_EQ(map.at(7), 7u);
}

TEST(FlatMap, EmplaceReportsInsertion) {
  FlatMap<int, int> map;
  auto [it1, inserted1] = map.emplace(1, 10);
  EXPECT_TRUE(inserted1);
  auto [it2, inserted2] = map.emplace(1, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 10);
}

TEST(FlatMap, RandomizedAgainstStdMap) {
  Rng rng(211);
  FlatMap<uint32_t, uint64_t> flat;
  std::map<uint32_t, uint64_t> ref;
  for (int step = 0; step < 5000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(64));
    double action = rng.UniformDouble();
    if (action < 0.6) {
      uint64_t v = rng.Next();
      flat[key] = v;
      ref[key] = v;
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [key, value] : flat) {
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    ++it;
  }
}

// ---------------------------------------------------------- LruTracker ----

TEST(LruTracker, TopKOrdersByTimestampDescThenKeyAsc) {
  LruTracker lru(8);
  lru.Insert(3, 10);
  lru.Insert(1, 20);
  lru.Insert(5, 10);  // same ts as key 3 -> key order breaks the tie
  lru.Insert(2, 30);
  EXPECT_EQ(lru.TopK(4), (std::vector<uint32_t>{2, 1, 3, 5}));
  EXPECT_EQ(lru.TopK(2), (std::vector<uint32_t>{2, 1}));
}

TEST(LruTracker, TouchReorders) {
  LruTracker lru(4);
  lru.Insert(0, 1);
  lru.Insert(1, 2);
  lru.Touch(0, 3);
  EXPECT_EQ(lru.TopK(2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(lru.TimestampOf(0), 3);
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(LruTracker, RemoveAndOldest) {
  LruTracker lru(4);
  lru.Insert(0, 5);
  lru.Insert(1, 9);
  uint32_t oldest = 99;
  ASSERT_TRUE(lru.Oldest(oldest));
  EXPECT_EQ(oldest, 0u);
  lru.Remove(0);
  ASSERT_TRUE(lru.Oldest(oldest));
  EXPECT_EQ(oldest, 1u);
  lru.Remove(1);
  EXPECT_FALSE(lru.Oldest(oldest));
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(LruTracker, InsertOrTouch) {
  LruTracker lru(4);
  lru.InsertOrTouch(2, 1);
  lru.InsertOrTouch(2, 7);
  EXPECT_EQ(lru.TimestampOf(2), 7);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruTracker, TopKLargerThanSize) {
  LruTracker lru(4);
  lru.Insert(0, 1);
  EXPECT_EQ(lru.TopK(10).size(), 1u);
}

TEST(LruTracker, RandomizedInvariants) {
  Rng rng(109);
  LruTracker lru(32);
  std::vector<bool> present(32, false);
  for (int step = 0; step < 10000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(32));
    int64_t ts = static_cast<int64_t>(rng.NextBounded(1000));
    if (rng.UniformDouble() < 0.7) {
      lru.InsertOrTouch(key, ts);
      present[key] = true;
    } else if (present[key]) {
      lru.Remove(key);
      present[key] = false;
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(lru.CheckInvariants());
    }
  }
  // TopK of full size must be sorted by (ts desc, key asc).
  auto all = lru.TopK(32);
  for (size_t i = 1; i < all.size(); ++i) {
    int64_t prev = lru.TimestampOf(all[i - 1]);
    int64_t cur = lru.TimestampOf(all[i]);
    EXPECT_TRUE(prev > cur || (prev == cur && all[i - 1] < all[i]));
  }
}

}  // namespace
}  // namespace rrs
