// Property-based suites: every (policy x workload-family x seed) combination
// must produce a legal schedule whose validator-recomputed cost matches the
// engine's accounting, and a handful of cross-policy dominance properties
// must hold. Uses parameterized gtest (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "offline/lower_bound.h"
#include "reduce/distribute.h"
#include "reduce/pipeline.h"
#include "reduce/varbatch.h"
#include "snapshot/codec.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

// ---- Workload family fixtures ---------------------------------------------

enum class Family { kPoissonRateLimited, kBurstyRateLimited, kZipfUnbatched,
                    kRouter, kDatacenter };

std::string FamilyName(Family f) {
  switch (f) {
    case Family::kPoissonRateLimited: return "PoissonRL";
    case Family::kBurstyRateLimited: return "BurstyRL";
    case Family::kZipfUnbatched: return "Zipf";
    case Family::kRouter: return "Router";
    case Family::kDatacenter: return "Datacenter";
  }
  return "?";
}

Instance MakeFamily(Family f, uint64_t seed) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.6}, {4, 0.6}, {8, 0.4}, {16, 0.4}, {32, 0.2}};
  switch (f) {
    case Family::kPoissonRateLimited: {
      workload::PoissonOptions gen;
      gen.rounds = 128;
      gen.rate_limited = true;
      gen.seed = seed;
      return MakePoisson(specs, gen);
    }
    case Family::kBurstyRateLimited: {
      workload::BurstyOptions gen;
      gen.rounds = 128;
      gen.rate_limited = true;
      gen.seed = seed;
      gen.p_off_to_on = 0.05;
      gen.p_on_to_off = 0.15;
      return MakeBursty(specs, gen);
    }
    case Family::kZipfUnbatched: {
      workload::ZipfOptions gen;
      gen.rounds = 128;
      gen.num_colors = 9;
      gen.jobs_per_round = 4.0;
      gen.seed = seed;
      return MakeZipf(gen);
    }
    case Family::kRouter: {
      workload::RouterOptions gen;
      gen.rounds = 128;
      gen.seed = seed;
      return MakeRouterScenario(workload::DefaultRouterServices(), gen);
    }
    case Family::kDatacenter: {
      workload::DatacenterOptions gen;
      gen.rounds = 128;
      gen.phase_length = 32;
      gen.seed = seed;
      return MakeDatacenterScenario(gen);
    }
  }
  return InstanceBuilder().Build();
}

// ---- Legal-schedule property across all policies ---------------------------

using LegalityParam = std::tuple<std::string, Family, uint64_t>;

class PolicyLegality : public ::testing::TestWithParam<LegalityParam> {};

TEST_P(PolicyLegality, RecordedScheduleValidatesAndCostsMatch) {
  const auto& [policy_name, family, seed] = GetParam();
  Instance inst = MakeFamily(family, seed);
  auto policy = MakePolicy(policy_name);
  ASSERT_NE(policy, nullptr);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  options.record_schedule = true;
  RunResult r = RunPolicy(inst, *policy, options);

  // Accounting identity.
  EXPECT_EQ(r.executed + r.cost.drops, r.arrived);

  // Independent validation of the recorded schedule.
  ASSERT_TRUE(r.schedule.has_value());
  auto v = r.schedule->Validate(inst);
  ASSERT_TRUE(v.ok) << policy_name << "/" << FamilyName(family) << ": "
                    << v.error;
  EXPECT_EQ(v.cost, r.cost);
  EXPECT_EQ(v.executed, r.executed);

  // Cost is at least the certified lower bound for the same resource count.
  EXPECT_GE(r.total_cost(options.cost_model),
            offline::LowerBound(inst, options.num_resources,
                                options.cost_model));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyLegality,
    ::testing::Combine(
        ::testing::Values("dlru", "edf", "seq-edf", "dlru-edf",
                          "dlru-edf-evict", "greedy-edf", "lazy-greedy",
                          "static"),
        ::testing::Values(Family::kPoissonRateLimited,
                          Family::kBurstyRateLimited, Family::kZipfUnbatched,
                          Family::kRouter, Family::kDatacenter),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<LegalityParam>& info) {
      auto name = std::get<0>(info.param) + "_" +
                  FamilyName(std::get<1>(info.param)) + "_s" +
                  std::to_string(std::get<2>(info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---- Pipeline legality across families and resource counts -----------------

using PipelineParam = std::tuple<Family, uint32_t, uint64_t>;

class PipelineLegality : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineLegality, SolveOnlineValidatesAgainstOriginal) {
  const auto& [family, n, seed] = GetParam();
  Instance inst = MakeFamily(family, seed);
  EngineOptions options;
  options.num_resources = n;
  options.cost_model.delta = 3;
  auto result = reduce::SolveOnline(inst, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
  EXPECT_EQ(result.validation.executed + result.cost().drops,
            inst.num_jobs());
  // The inner (transformed) run can never drop fewer jobs than the final
  // schedule executes... (both count the same executions).
  EXPECT_EQ(result.inner.executed, result.validation.executed);
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, PipelineLegality,
    ::testing::Combine(::testing::Values(Family::kPoissonRateLimited,
                                         Family::kZipfUnbatched,
                                         Family::kRouter,
                                         Family::kDatacenter),
                       ::testing::Values(4u, 8u, 16u),
                       ::testing::Values(11u, 12u)),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      return FamilyName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Delta sweep: engine cost accounting is linear in delta ---------------

class DeltaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaSweep, TotalCostDecomposes) {
  const uint64_t delta = GetParam();
  Instance inst = MakeFamily(Family::kBurstyRateLimited, 5);
  auto policy = MakePolicy("dlru-edf");
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = delta;
  RunResult r = RunPolicy(inst, *policy, options);
  EXPECT_EQ(r.total_cost(options.cost_model),
            r.cost.reconfigurations * delta + r.cost.drops);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 64u));

// ---- Resource monotonicity of Par-EDF --------------------------------------

class ParEdfResourceSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParEdfResourceSweep, MoreResourcesNeverIncreaseDrops) {
  const uint32_t m = GetParam();
  Instance inst = MakeFamily(Family::kPoissonRateLimited, 9);
  uint64_t drops_m = offline::DropLowerBound(inst, m);
  uint64_t drops_m1 = offline::DropLowerBound(inst, m + 1);
  EXPECT_GE(drops_m, drops_m1);
}

INSTANTIATE_TEST_SUITE_P(Resources, ParEdfResourceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// ---- Reduction cost-bound invariants ---------------------------------------
//
// Lemma 4.2: projecting a schedule for the Distribute-transformed instance
// back onto the original elides no-op recolorings, so the certified cost
// never exceeds the inner run's cost. VarBatch's projection only re-targets
// job ids, so its certified cost is bounded by the inner cost too.

Instance RandomBatched(uint64_t seed) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.7}, {4, 0.8}, {8, 0.6}, {16, 0.5}};
  workload::PoissonOptions gen;
  gen.rounds = 96;
  gen.batched = true;  // batched but NOT rate-limited: Distribute's input
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

class DistributeCostBound : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributeCostBound, ProjectedCostNeverExceedsInnerCost) {
  Instance inst = RandomBatched(GetParam());
  ASSERT_TRUE(inst.IsBatched());
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  auto policy = MakePolicy("dlru-edf");
  auto run = reduce::RunDistribute(inst, *policy, options);

  ASSERT_TRUE(run.validation.ok) << run.validation.error;
  // Job identity passes through the projection, so the execution/drop sets
  // are preserved exactly; only reconfigurations can shrink (elided no-ops).
  EXPECT_EQ(run.validation.cost.drops, run.inner.cost.drops);
  EXPECT_EQ(run.validation.executed, run.inner.executed);
  EXPECT_LE(run.validation.cost.reconfigurations,
            run.inner.cost.reconfigurations);
  EXPECT_LE(run.validation.cost.total(options.cost_model),
            run.inner.cost.total(options.cost_model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributeCostBound,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

class VarBatchCostBound : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarBatchCostBound, ProjectedCostNeverExceedsInnerCost) {
  // Arbitrary (unbatched) input: VarBatch's own precondition.
  Instance inst = MakeFamily(Family::kZipfUnbatched, GetParam());
  auto transform = reduce::VarBatchInstance(inst);
  ASSERT_TRUE(transform.transformed.IsBatched());
  EXPECT_EQ(transform.transformed.num_jobs(), inst.num_jobs());

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  options.record_schedule = true;
  auto policy = MakePolicy("dlru-edf");
  RunResult inner = RunPolicy(transform.transformed, *policy, options);
  ASSERT_TRUE(inner.schedule.has_value());

  Schedule projected =
      reduce::ProjectVarBatchSchedule(*inner.schedule, transform);
  auto v = projected.Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, inner.executed);
  EXPECT_EQ(v.cost.drops, inner.cost.drops);
  EXPECT_LE(v.cost.total(options.cost_model),
            inner.cost.total(options.cost_model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarBatchCostBound,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

// ---- Snapshot/restore commutes with the reductions -------------------------
//
// Checkpointing the inner run mid-way and restoring it (on a different
// engine + fresh policy object) must leave the reduction's outcome
// unchanged: the restored inner run finishes bit-identically, so the
// projected/certified cost is the same as without the interruption.

void ExpectSameCosts(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations);
  EXPECT_EQ(got.cost.drops, want.cost.drops);
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops);
  EXPECT_EQ(got.executed, want.executed);
  EXPECT_EQ(got.arrived, want.arrived);
  EXPECT_EQ(got.drops_per_color, want.drops_per_color);
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters);
}

RunResult FinishInterrupted(const Instance& transformed,
                            const EngineOptions& options, Round cut) {
  Engine donor;
  donor.Reset(transformed, options);
  auto policy = MakePolicy("dlru-edf");
  donor.BeginRun(*policy);
  donor.StepRounds(cut);
  snapshot::Writer w;
  donor.SnapshotRun(w);
  donor.AbortRun();

  Engine resumed;
  resumed.Reset(transformed, options);
  auto policy2 = MakePolicy("dlru-edf");
  snapshot::Reader r(w.words());
  resumed.RestoreRun(*policy2, r);
  while (resumed.StepRounds(64)) {
  }
  RunResult result;
  resumed.FinishRun(result);
  return result;
}

TEST(SnapshotReductionCommute, DistributeInnerRunSurvivesCheckpoint) {
  Instance inst = RandomBatched(41);
  auto transform = reduce::DistributeInstance(inst);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  auto oracle_policy = MakePolicy("dlru-edf");
  RunResult oracle = RunPolicy(transform.transformed, *oracle_policy, options);
  for (Round cut : {Round{5}, Round{33}, Round{70}}) {
    ExpectSameCosts(FinishInterrupted(transform.transformed, options, cut),
                    oracle);
  }
}

TEST(SnapshotReductionCommute, VarBatchInnerRunSurvivesCheckpoint) {
  Instance inst = MakeFamily(Family::kZipfUnbatched, 43);
  auto transform = reduce::VarBatchInstance(inst);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  auto oracle_policy = MakePolicy("dlru-edf");
  RunResult oracle = RunPolicy(transform.transformed, *oracle_policy, options);
  for (Round cut : {Round{5}, Round{33}, Round{70}}) {
    ExpectSameCosts(FinishInterrupted(transform.transformed, options, cut),
                    oracle);
  }
}

}  // namespace
}  // namespace rrs
