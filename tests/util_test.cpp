// Unit tests for src/util: RNG and distributions, streaming statistics,
// string helpers, flag parsing, and table rendering.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/str.h"
#include "util/table.h"

namespace rrs {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(29);
  for (double mean : {0.5, 2.0, 10.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(37);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(41);
  double sum = 0;
  const int n = 100000;
  const double p = 0.25;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  EXPECT_NEAR(sum / n, (1 - p) / p, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(47);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(16, 1.0);
  double sum = 0;
  for (size_t i = 0; i < zipf.size(); ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RanksAreMonotone) {
  ZipfDistribution zipf(10, 1.2);
  for (size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfDistribution zipf(8, 0.0);
  for (size_t i = 0; i < zipf.size(); ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 1.0 / 8, 1e-9);
  }
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(6, 1.0);
  Rng rng(53);
  std::vector<int> counts(6, 0);
  const int n = 120000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.Pmf(i), 0.01);
  }
}

// -------------------------------------------------------------- Stats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // n-1 denominator
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(59);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble(-5, 5);
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 7.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1);   // underflow
  h.Add(0);    // bucket 0
  h.Add(1.9);  // bucket 0
  h.Add(2.0);  // bucket 1
  h.Add(9.99); // bucket 4
  h.Add(10.0); // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_FALSE(h.ToAscii().empty());
}

// ---------------------------------------------------------------- Str ----

TEST(Str, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Str, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Str, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("3.5").has_value());
}

TEST(Str, ParseUintRejectsNegative) {
  EXPECT_EQ(ParseUint("42"), 42u);
  EXPECT_FALSE(ParseUint("-1").has_value());
}

TEST(Str, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("2.5x").has_value());
}

TEST(Str, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(HumanCount(12'345'678), "12.3M");
  EXPECT_EQ(HumanCount(999), "999");
}

// -------------------------------------------------------------- Flags ----

TEST(Flags, ParsesAllForms) {
  FlagSet flags;
  flags.DefineInt("n", 4, "resources")
      .DefineDouble("rate", 1.0, "rate")
      .DefineBool("verbose", false, "verbosity")
      .DefineString("policy", "dlru-edf", "policy name");
  const char* argv[] = {"prog",      "--n=8",      "--rate", "2.5",
                        "--verbose", "--policy=edf", "positional"};
  ASSERT_TRUE(flags.Parse(7, argv)) << flags.error();
  EXPECT_EQ(flags.GetInt("n"), 8);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.5);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("policy"), "edf");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, NoPrefixDisablesBool) {
  FlagSet flags;
  flags.DefineBool("replicate", true, "replication");
  const char* argv[] = {"prog", "--no-replicate"};
  ASSERT_TRUE(flags.Parse(2, argv)) << flags.error();
  EXPECT_FALSE(flags.GetBool("replicate"));
}

TEST(Flags, UnknownFlagFails) {
  FlagSet flags;
  flags.DefineInt("n", 4, "resources");
  const char* argv[] = {"prog", "--m=3"};
  EXPECT_FALSE(flags.Parse(2, argv));
  EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST(Flags, TypeErrorFails) {
  FlagSet flags;
  flags.DefineInt("n", 4, "resources");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, argv));
}

TEST(Flags, HelpRequested) {
  FlagSet flags;
  flags.DefineInt("n", 4, "resources");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Help("prog").find("--n"), std::string::npos);
}

TEST(Flags, DefaultsSurvive) {
  FlagSet flags;
  flags.DefineInt("n", 4, "resources");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_EQ(flags.GetInt("n"), 4);
}

// -------------------------------------------------------------- Table ----

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.AddRow().Cell("alpha").Cell(int64_t{1});
  t.AddRow().Cell("b").Cell(2.5, 1);
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| name  | value |"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("2.5"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.AddRow().Cell("has,comma").Cell("has\"quote");
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, JsonNumbersUnquotedStringsQuoted) {
  Table t({"name", "count", "ratio"});
  t.AddRow().Cell("alpha").Cell(int64_t{3}).Cell(1.5, 2);
  std::string json = t.ToJson();
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\": 1.5"), std::string::npos) << json;
}

TEST(Table, JsonEscapesSpecials) {
  Table t({"v"});
  t.AddRow().Cell("a\"b\\c\nd");
  std::string json = t.ToJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
}

TEST(Table, AtAccessor) {
  Table t({"x"});
  t.AddRow().Cell(uint64_t{7});
  EXPECT_EQ(t.At(0, 0), "7");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_cols(), 1u);
}

}  // namespace
}  // namespace rrs
