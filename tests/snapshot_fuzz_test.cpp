// Randomized checkpoint-point differential fuzz for checkpoint/restore.
//
// Each iteration draws a random workload, engine shape, and a chain of
// random checkpoint rounds, snapshots the run at each cut, migrates it to a
// different engine + fresh policy object, and finishes — the final
// RunResult must be bit-identical to the uninterrupted run. Runs for every
// registry policy; a second fuzzer drives StreamEngine's RLE-ring save/load
// the same way round by round.
//
// Iteration count is capped for tier-1 speed and raised via the
// RRS_FUZZ_ITERS environment variable (the `nightly`-labeled registration
// and the sanitizer/TSan suites set it explicitly).
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "sched/registry.h"
#include "snapshot/codec.h"
#include "util/rng.h"
#include "workload/arrival_source.h"
#include "workload/mix.h"
#include "workload/source.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

int FuzzIters() {
  const char* env = std::getenv("RRS_FUZZ_ITERS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 12;  // tier-1 cap; nightly/sanitize runs raise it
}

Instance FuzzInstance(Rng& rng) {
  std::vector<workload::ColorSpec> specs;
  const size_t num_colors = 2 + rng.NextBounded(6);
  for (size_t c = 0; c < num_colors; ++c) {
    workload::ColorSpec spec;
    spec.delay_bound = Round{1} << rng.NextBounded(5);
    spec.rate = rng.UniformDouble(0.05, 0.8);
    specs.push_back(spec);
  }
  workload::PoissonOptions gen;
  gen.rounds = 16 + static_cast<Round>(rng.NextBounded(140));
  gen.seed = rng.Next();
  return MakePoisson(specs, gen);
}

EngineOptions FuzzOptions(Rng& rng) {
  EngineOptions options;
  // Multiple of 4 and >= 4 so the ΔLRU-EDF family's resource-split
  // precondition holds for every registry policy.
  options.num_resources = 4 * (1 + static_cast<uint32_t>(rng.NextBounded(3)));
  options.cost_model.delta = 1 + rng.NextBounded(5);
  // Occasionally run double-speed so checkpoints cover mini-round runs too.
  if (rng.Bernoulli(0.25)) options.mini_rounds_per_round = 2;
  return options;
}

void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  ASSERT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  ASSERT_EQ(got.cost.drops, want.cost.drops) << label;
  ASSERT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  ASSERT_EQ(got.executed, want.executed) << label;
  ASSERT_EQ(got.arrived, want.arrived) << label;
  ASSERT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  ASSERT_EQ(got.drops_per_color, want.drops_per_color) << label;
  ASSERT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

// ---- Engine: chained random checkpoints, every registry policy -----------

class SnapshotFuzzEveryPolicy
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotFuzzEveryPolicy, ChainedRandomCheckpointsAreExact) {
  const std::string name = GetParam();
  Rng rng(0xf022 ^ std::hash<std::string>{}(name));
  const int iters = FuzzIters();

  for (int iter = 0; iter < iters; ++iter) {
    Instance instance = FuzzInstance(rng);
    EngineOptions options = FuzzOptions(rng);
    const std::string label =
        name + " iter " + std::to_string(iter);

    auto oracle_policy = MakePolicy(name);
    ASSERT_NE(oracle_policy, nullptr) << name;
    RunResult oracle = RunPolicy(instance, *oracle_policy, options);

    // 1-3 random checkpoint rounds, each migrating to the other engine.
    const int cuts = 1 + static_cast<int>(rng.NextBounded(3));
    Engine engines[2];
    engines[0].Reset(instance, options);
    auto policy = MakePolicy(name);
    engines[0].BeginRun(*policy);
    int active = 0;
    snapshot::Writer w;
    for (int cut = 0; cut < cuts; ++cut) {
      const Round at =
          1 + static_cast<Round>(rng.NextBounded(
                  static_cast<uint64_t>(instance.num_request_rounds())));
      if (at > engines[active].next_round()) {
        engines[active].StepRounds(at - engines[active].next_round());
      }
      w.Clear();
      engines[active].SnapshotRun(w);
      engines[active].AbortRun();
      active = 1 - active;
      engines[active].Reset(instance, options);
      policy = MakePolicy(name);
      snapshot::Reader r(w.words());
      engines[active].RestoreRun(*policy, r);
      ASSERT_TRUE(r.AtEnd()) << label;
    }
    while (engines[active].StepRounds(64)) {
    }
    RunResult resumed;
    engines[active].FinishRun(resumed);
    ExpectSameRunResult(resumed, oracle, label);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SnapshotFuzzEveryPolicy,
                         ::testing::ValuesIn(PolicyNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- StreamEngine: random cut, restored stream must emit the same rounds -

TEST(SnapshotFuzzStream, RandomCutRestoresEmitIdenticalOutcomes) {
  Rng rng(0x57f0);
  const int iters = FuzzIters();

  const std::vector<std::string> policies = PolicyNames();
  for (int iter = 0; iter < iters; ++iter) {
    Instance instance = FuzzInstance(rng);
    EngineOptions options = FuzzOptions(rng);
    const std::string name = policies[rng.NextBounded(policies.size())];
    const std::string label = name + " iter " + std::to_string(iter);

    std::vector<Round> bounds;
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      bounds.push_back(instance.delay_bound(c));
    }
    const Round cut = 1 + static_cast<Round>(rng.NextBounded(
                              static_cast<uint64_t>(
                                  instance.num_request_rounds())));

    auto policy = MakePolicy(name);
    StreamEngine original(bounds, *policy, options);
    std::vector<std::pair<ColorId, uint64_t>> arrivals;
    auto feed_round = [&](StreamEngine& engine, Round k) -> const RoundOutcome& {
      arrivals.clear();
      auto jobs = instance.jobs_in_round(k);
      size_t i = 0;
      while (i < jobs.size()) {
        ColorId c = jobs[i].color;
        uint64_t count = 0;
        while (i < jobs.size() && jobs[i].color == c) {
          ++count;
          ++i;
        }
        arrivals.emplace_back(c, count);
      }
      return engine.Step(arrivals);
    };

    for (Round k = 0; k < cut; ++k) feed_round(original, k);

    snapshot::Writer w;
    original.SaveState(w);
    auto policy2 = MakePolicy(name);
    StreamEngine restored(bounds, *policy2, options);
    snapshot::Reader r(w.words());
    restored.LoadState(r);
    ASSERT_TRUE(r.AtEnd()) << label;

    for (Round k = cut; k < instance.num_request_rounds(); ++k) {
      const RoundOutcome a = feed_round(original, k);
      const RoundOutcome& b = feed_round(restored, k);
      ASSERT_EQ(a.reconfigs, b.reconfigs) << label << " round " << k;
      ASSERT_EQ(a.executions, b.executions) << label << " round " << k;
      ASSERT_EQ(a.drops, b.drops) << label << " round " << k;
    }
    original.Finish();
    restored.Finish();
    ASSERT_EQ(original.cost().reconfigurations,
              restored.cost().reconfigurations)
        << label;
    ASSERT_EQ(original.cost().drops, restored.cost().drops) << label;
    ASSERT_EQ(original.executed(), restored.executed()) << label;
  }
}

// ---- ArrivalSource: random wrapper chains, random chained cuts -----------
//
// Draws a random source tree (generator bases under random mix wrappers),
// cuts it at random rounds with SaveState/LoadState onto a fresh tree, and
// checks the restored tree emits the identical remaining stream. The
// wrappers chain their inner sources' sections, so this fuzzes the
// recursive state format the dist migration path ships.

std::function<std::unique_ptr<workload::ArrivalSource>()> FuzzSourceFactory(
    Rng& rng) {
  std::vector<workload::ColorSpec> specs;
  const size_t num_colors = 2 + rng.NextBounded(4);
  for (size_t c = 0; c < num_colors; ++c) {
    workload::ColorSpec spec;
    spec.delay_bound = Round{1} << rng.NextBounded(5);
    spec.rate = rng.UniformDouble(0.05, 0.8);
    specs.push_back(spec);
  }
  const Round rounds = 16 + static_cast<Round>(rng.NextBounded(100));
  const uint64_t seed = rng.Next();
  const bool bursty = rng.Bernoulli(0.5);
  auto base = [specs, rounds, seed,
               bursty]() -> std::unique_ptr<workload::ArrivalSource> {
    if (bursty) {
      workload::BurstyOptions options;
      options.rounds = rounds;
      options.p_on_to_off = 0.15;
      options.p_off_to_on = 0.25;
      options.seed = seed;
      return workload::MakeBurstySource(specs, options);
    }
    workload::PoissonOptions options;
    options.rounds = rounds;
    options.seed = seed;
    return workload::MakePoissonSource(specs, options);
  };
  switch (rng.NextBounded(4)) {
    case 0:
      return base;
    case 1: {
      const Round offset = static_cast<Round>(rng.NextBounded(9));
      return [base, offset] {
        return workload::MakeTimeShiftSource(base(), offset);
      };
    }
    case 2: {
      const double keep = rng.UniformDouble(0.3, 0.9);
      const uint64_t thin_seed = rng.Next();
      return [base, keep, thin_seed] {
        return workload::MakeThinSource(base(), keep, thin_seed);
      };
    }
    default: {
      const Round gap = static_cast<Round>(rng.NextBounded(6));
      return [base, gap] {
        return workload::MakeConcatSource(base(), base(), gap);
      };
    }
  }
}

TEST(SnapshotFuzzSource, ChainedRandomCutsEmitIdenticalStreams) {
  Rng rng(0x50a7);
  const int iters = FuzzIters();
  for (int iter = 0; iter < iters; ++iter) {
    const std::string label = "iter " + std::to_string(iter);
    auto make = FuzzSourceFactory(rng);
    // Merge two independently drawn trees a quarter of the time, so the
    // fuzzer also covers the N-ary wrapper's chained sections.
    if (rng.Bernoulli(0.25)) {
      auto other = FuzzSourceFactory(rng);
      auto merged = [make, other] {
        std::vector<std::unique_ptr<workload::ArrivalSource>> parts;
        parts.push_back(make());
        parts.push_back(other());
        return workload::MakeMergeSource(std::move(parts));
      };
      make = merged;
    }
    auto original = make();
    auto restored = make();
    const int cuts = 1 + static_cast<int>(rng.NextBounded(3));
    snapshot::Writer w;
    for (int cut = 0; cut < cuts; ++cut) {
      const Round total = original->num_request_rounds();
      if (original->cursor() < total) {
        const Round at =
            original->cursor() +
            1 + static_cast<Round>(rng.NextBounded(static_cast<uint64_t>(
                    total - original->cursor())));
        while (original->cursor() < at) original->NextRound();
      }
      w.Clear();
      original->SaveState(w);
      snapshot::Reader r(w.words());
      restored->LoadState(r);
      ASSERT_TRUE(r.AtEnd()) << label;
      ASSERT_EQ(restored->cursor(), original->cursor()) << label;
    }
    while (original->cursor() < original->num_request_rounds()) {
      const Round k = original->cursor();
      const auto a = original->NextRound();
      const auto b = restored->NextRound();
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << label << " round " << k;
    }
  }
}

// ---- Engine + source: the dist migration format under fuzz ---------------
//
// A source-fed engine run snapshotted at random cuts, each cut migrating to
// a different engine AND a fresh source restored from the appended source
// words (RestoreRun(policy, r, &r)) — exactly what a dist worker does with
// a shipped tenant checkpoint.

TEST(SnapshotFuzzSource, EngineMigrationWithSourceWordsIsExact) {
  Rng rng(0x50a8);
  const int iters = FuzzIters();
  const std::vector<std::string> policies = PolicyNames();
  for (int iter = 0; iter < iters; ++iter) {
    auto make = FuzzSourceFactory(rng);
    EngineOptions options = FuzzOptions(rng);
    std::string name = policies[rng.NextBounded(policies.size())];
    if (name == "lookahead") name = "dlru-edf";  // needs a full-job shape
    const std::string label = name + " iter " + std::to_string(iter);

    auto oracle_source = make();
    auto oracle_policy = MakePolicy(name);
    Engine oracle_engine;
    oracle_engine.Reset(*oracle_source, options);
    const RunResult oracle = oracle_engine.Run(*oracle_policy);

    std::unique_ptr<workload::ArrivalSource> sources[2] = {make(), make()};
    Engine engines[2];
    engines[0].Reset(*sources[0], options);
    auto policy = MakePolicy(name);
    engines[0].BeginRun(*policy);
    int active = 0;
    snapshot::Writer w;
    const int cuts = 1 + static_cast<int>(rng.NextBounded(3));
    for (int cut = 0; cut < cuts; ++cut) {
      const Round at = 1 + static_cast<Round>(rng.NextBounded(
                               static_cast<uint64_t>(std::max<Round>(
                                   sources[active]->num_request_rounds(), 1))));
      if (at > engines[active].next_round()) {
        engines[active].StepRounds(at - engines[active].next_round());
      }
      w.Clear();
      engines[active].SnapshotRun(w);
      sources[active]->SaveState(w);
      engines[active].AbortRun();
      active = 1 - active;
      sources[active] = make();
      engines[active].Reset(*sources[active], options);
      policy = MakePolicy(name);
      snapshot::Reader r(w.words());
      engines[active].RestoreRun(*policy, r, &r);
      ASSERT_TRUE(r.AtEnd()) << label;
    }
    while (engines[active].StepRounds(64)) {
    }
    RunResult resumed;
    engines[active].FinishRun(resumed);
    ExpectSameRunResult(resumed, oracle, label);
  }
}

}  // namespace
}  // namespace rrs
