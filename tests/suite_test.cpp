// Tests for the experiment-suite registry: ids are unique and ordered, every
// entry carries a claim, and a representative entry produces its table
// through the registry path.
#include <set>

#include <gtest/gtest.h>

#include "analysis/suite.h"

namespace rrs {
namespace {

TEST(Suite, IdsUniqueAndComplete) {
  auto suite = analysis::ExperimentSuite();
  ASSERT_GE(suite.size(), 11u);
  std::set<std::string> ids;
  for (const auto& spec : suite) {
    EXPECT_TRUE(ids.insert(spec.id).second) << "duplicate id " << spec.id;
    EXPECT_FALSE(spec.title.empty()) << spec.id;
    EXPECT_FALSE(spec.claim.empty()) << spec.id;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << spec.id;
  }
  EXPECT_TRUE(ids.count("E1"));
  EXPECT_TRUE(ids.count("E8"));
  EXPECT_TRUE(ids.count("E14"));
}

TEST(Suite, RegistryRunsAnExperiment) {
  auto suite = analysis::ExperimentSuite();
  // E1 is cheap and deterministic; run it through the registry.
  for (const auto& spec : suite) {
    if (spec.id != "E1") continue;
    Table table = spec.run();
    EXPECT_GT(table.num_rows(), 0u);
    EXPECT_GT(table.num_cols(), 0u);
    return;
  }
  FAIL() << "E1 missing from the suite";
}

}  // namespace
}  // namespace rrs
