// Test battery for the interval-uncertainty robust solver
// (offline/robust_optimal + offline/interval_state + workload/uncertain).
// The center of gravity of the feature: dominance merging must never prune a
// feasible concrete schedule, so the suite pins
//   - zero-width windows: bit-exact bracket agreement with SolveOptimal on
//     the same 500-instance corpus the concrete differential suite uses;
//   - sampled-trace soundness: hundreds of concrete window instantiations
//     per windowed set, every one's exact OPT inside the robust bracket;
//   - interval-dominance properties: containment prunes, never the reverse,
//     differential against a dense reference predicate, plus a golden
//     regression corpus pinning verdicts and the packed word layout;
//   - bit-identical results across 0/1/2/8 threads and budget exhaustion.
//
// Also built under ASan+UBSan (rrs_offline_robust_sanitize_test, -L
// sanitize) and TSan (offline_robust_tsan, -L tsan); higher fuzz tiers run
// via RRS_FUZZ_ITERS (-L nightly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ratio.h"
#include "obs/scope.h"
#include "offline/interval_state.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "offline/robust_optimal.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"
#include "workload/arrival_source.h"
#include "workload/uncertain.h"

namespace rrs {
namespace {

// Iteration tier, like snapshot_fuzz_test: default suits tier-1; sanitize
// and nightly registrations raise it via RRS_FUZZ_ITERS.
int FuzzIters() {
  const char* env = std::getenv("RRS_FUZZ_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 12;
}

// Exactly the concrete differential suite's tiny-instance generator (same
// palette, same draw order), so the zero-width differential below replays
// the identical 500-instance corpus.
Instance TinyInstance(Rng& rng, bool weighted) {
  InstanceBuilder b;
  const size_t colors = 1 + rng.NextBounded(3);
  static const Round kDelays[] = {1, 2, 3, 4, 5, 8};
  for (size_t c = 0; c < colors; ++c) {
    Round d = kDelays[rng.NextBounded(sizeof(kDelays) / sizeof(Round))];
    uint64_t w = weighted ? 1 + rng.NextBounded(4) : 1;
    b.AddColor(d, "", w);
  }
  const uint64_t jobs = 1 + rng.NextBounded(10);
  for (uint64_t j = 0; j < jobs; ++j) {
    b.AddJob(static_cast<ColorId>(rng.NextBounded(colors)),
             static_cast<Round>(rng.NextBounded(7)));
  }
  return b.Build();
}

// Tiny windowed set: like TinyInstance but each job gets a window of width
// 0-3 — small enough that the pessimistic duplication stays solvable.
workload::UncertainInstance TinyWindowedSet(Rng& rng, bool weighted) {
  workload::UncertainInstance set;
  const size_t colors = 1 + rng.NextBounded(3);
  static const Round kDelays[] = {1, 2, 3, 4, 5, 8};
  for (size_t c = 0; c < colors; ++c) {
    Round d = kDelays[rng.NextBounded(sizeof(kDelays) / sizeof(Round))];
    uint64_t w = weighted ? 1 + rng.NextBounded(4) : 1;
    set.AddColor(d, "", w);
  }
  const uint64_t jobs = 1 + rng.NextBounded(7);
  for (uint64_t j = 0; j < jobs; ++j) {
    const Round lo = static_cast<Round>(rng.NextBounded(6));
    const Round width = static_cast<Round>(rng.NextBounded(4));
    set.AddJob(static_cast<ColorId>(rng.NextBounded(colors)), lo, lo + width);
  }
  return set;
}

offline::RobustOptions RobustBase(uint32_t m, uint64_t delta) {
  offline::RobustOptions options;
  options.num_resources = m;
  options.cost_model.delta = delta;
  return options;
}

offline::OptimalOptions OptimalBase(uint32_t m, uint64_t delta) {
  offline::OptimalOptions options;
  options.num_resources = m;
  options.cost_model.delta = delta;
  return options;
}

// Solves sampled concrete traces (memoized on the pinned arrivals, so
// repeated draws cost one solve) and checks each exact OPT lands inside the
// robust bracket. Returns the number of *distinct* traces checked.
int CheckSampledSoundness(const workload::UncertainInstance& set,
                          const offline::RobustResult& robust, uint32_t m,
                          uint64_t delta, int samples, uint64_t seed_base) {
  std::map<std::vector<std::pair<ColorId, Round>>, uint64_t> memo;
  for (int s = 0; s < samples; ++s) {
    const Instance trace = set.Sample(seed_base + static_cast<uint64_t>(s));
    std::vector<std::pair<ColorId, Round>> key;
    key.reserve(trace.num_jobs());
    for (const Job& job : trace.jobs()) key.emplace_back(job.color, job.arrival);
    auto [it, inserted] = memo.try_emplace(std::move(key), 0);
    if (inserted) {
      const auto exact = offline::SolveOptimal(trace, OptimalBase(m, delta));
      EXPECT_TRUE(exact.exact);
      it->second = exact.total_cost;
    }
    EXPECT_LE(robust.lower_bound, it->second)
        << "sample " << s << " fell below the robust bracket";
    EXPECT_GE(robust.upper_bound, it->second)
        << "sample " << s << " exceeded the robust bracket";
  }
  return static_cast<int>(memo.size());
}

TEST(OfflineRobust, ZeroWidthMatchesSolveOptimalOnDifferentialCorpus) {
  // The acceptance differential: lift every instance of the concrete
  // corpus (same seed, same draws) into a zero-width window set; the robust
  // bracket must equal [OPT, OPT] bit-exactly.
  Rng rng(20240601);
  for (int trial = 0; trial < 500; ++trial) {
    const bool weighted = trial % 3 == 0;
    Instance inst = TinyInstance(rng, weighted);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 4;

    const auto exact = offline::SolveOptimal(inst, OptimalBase(m, delta));
    ASSERT_TRUE(exact.exact) << "trial " << trial;

    const auto set = workload::UncertainInstance::FromInstance(inst, 0, 0);
    ASSERT_TRUE(set.IsZeroWidth());
    const auto robust = offline::SolveRobust(set, RobustBase(m, delta));
    ASSERT_TRUE(robust.exact) << "trial " << trial;
    EXPECT_EQ(robust.lower_bound, exact.total_cost)
        << "trial " << trial << " m=" << m << " delta=" << delta << "\n"
        << inst.Summary();
    EXPECT_EQ(robust.upper_bound, exact.total_cost)
        << "trial " << trial << " m=" << m << " delta=" << delta;
    // Zero width means the dominance rule degenerates to span equality,
    // which interning already collapses: nothing may be containment-pruned.
    EXPECT_EQ(robust.pruned_dominated, 0u) << "trial " << trial;
  }
}

TEST(OfflineRobust, SampledTracesLandInsideRobustBracket) {
  // The soundness suite: >= 300 concrete window instantiations per windowed
  // set, each exact OPT inside the certified bracket.
  const int sets = std::max(12, FuzzIters());
  Rng rng(20250809);
  int distinct_total = 0;
  for (int trial = 0; trial < sets; ++trial) {
    const auto set = TinyWindowedSet(rng, trial % 3 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 4;
    const auto robust = offline::SolveRobust(set, RobustBase(m, delta));
    ASSERT_TRUE(robust.exact) << "trial " << trial;
    EXPECT_LE(robust.lower_bound, robust.upper_bound);
    distinct_total += CheckSampledSoundness(
        set, robust, m, delta, /*samples=*/300,
        /*seed_base=*/0x5eed0000u + static_cast<uint64_t>(trial) * 1000);
  }
  EXPECT_GE(distinct_total, sets);  // windows of width 0 still give 1 trace
}

TEST(OfflineRobust, WidenedWindowsStillBracketTheBaseTrace) {
  // FromInstance(inst, 1, 1) includes inst itself as a member trace, so its
  // exact OPT must sit inside the widened bracket.
  Rng rng(20250810);
  for (int trial = 0; trial < 30; ++trial) {
    Instance inst = TinyInstance(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const auto exact = offline::SolveOptimal(inst, OptimalBase(m, 2));
    ASSERT_TRUE(exact.exact);

    const auto set = workload::UncertainInstance::FromInstance(inst, 1, 1);
    const auto robust = offline::SolveRobust(set, RobustBase(m, 2));
    ASSERT_TRUE(robust.exact) << "trial " << trial;
    EXPECT_LE(robust.lower_bound, exact.total_cost) << "trial " << trial;
    EXPECT_GE(robust.upper_bound, exact.total_cost) << "trial " << trial;
  }
}

TEST(OfflineRobust, BitIdenticalAcrossThreadCounts) {
  // Every result field must be identical for pool == nullptr and pools of
  // 1/2/8 threads; half the trials squeeze the budget so the exhaustion
  // path (frontier min-reduction) is pinned too.
  ThreadPool pool1(1), pool2(2), pool8(8);
  ThreadPool* pools[] = {nullptr, &pool1, &pool2, &pool8};

  Rng rng(20250811);
  for (int trial = 0; trial < 40; ++trial) {
    const auto set = TinyWindowedSet(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    auto options = RobustBase(m, 2);
    if (trial % 2 == 1) options.max_states = 8;

    options.pool = nullptr;
    const auto base = offline::SolveRobust(set, options);
    for (ThreadPool* pool : pools) {
      options.pool = pool;
      const auto other = offline::SolveRobust(set, options);
      EXPECT_EQ(base.exact, other.exact) << "trial " << trial;
      EXPECT_EQ(base.lower_bound, other.lower_bound) << "trial " << trial;
      EXPECT_EQ(base.upper_bound, other.upper_bound) << "trial " << trial;
      EXPECT_EQ(base.states_expanded, other.states_expanded)
          << "trial " << trial;
      EXPECT_EQ(base.states_generated, other.states_generated)
          << "trial " << trial;
      EXPECT_EQ(base.pruned_bound, other.pruned_bound) << "trial " << trial;
      EXPECT_EQ(base.pruned_dominated, other.pruned_dominated)
          << "trial " << trial;
      EXPECT_EQ(base.max_layer_width, other.max_layer_width)
          << "trial " << trial;
    }
  }
}

TEST(OfflineRobust, ExhaustionBracketStaysSound) {
  // Budget exhaustion must degrade to a wider bracket, never an invalid
  // one: sampled exact optima stay inside even at max_states = 1.
  Rng rng(20250812);
  int exhausted_checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto set = TinyWindowedSet(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 2;
    auto options = RobustBase(m, delta);
    options.max_states = 1 + trial % 6;
    const auto bracket = offline::SolveRobust(set, options);
    if (bracket.exact) continue;
    EXPECT_LE(bracket.lower_bound, bracket.upper_bound) << "trial " << trial;
    CheckSampledSoundness(set, bracket, m, delta, /*samples=*/40,
                          /*seed_base=*/0xabc000u + trial);
    ++exhausted_checked;
  }
  EXPECT_GE(exhausted_checked, 10);
}

TEST(OfflineRobust, PruningAblationsKeepBracketsSound) {
  // Soundness may not depend on either pruning rule; all four combinations
  // must bracket every sampled optimum (tightness may differ).
  Rng rng(20250813);
  for (int trial = 0; trial < 16; ++trial) {
    const auto set = TinyWindowedSet(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 3;
    auto options = RobustBase(m, delta);
    for (bool bound : {false, true}) {
      for (bool dominance : {false, true}) {
        options.prune_bound = bound;
        options.prune_dominance = dominance;
        const auto robust = offline::SolveRobust(set, options);
        ASSERT_TRUE(robust.exact) << "trial " << trial;
        CheckSampledSoundness(set, robust, m, delta, /*samples=*/25,
                              /*seed_base=*/0xd00d00u + trial);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Interval-state predicates: property/fuzz + regression corpus.
// ---------------------------------------------------------------------------

using Buckets = std::vector<offline::IntervalBucket>;

// Dense reference for the containment predicate: cumulative arrays per
// horizon, no merge-walk cleverness. The packed implementation must agree.
bool RefProfileContains(const Buckets& a, const Buckets& b) {
  uint32_t max_rel = 1;
  for (const auto& x : a) max_rel = std::max(max_rel, x.rel);
  for (const auto& x : b) max_rel = std::max(max_rel, x.rel);
  for (uint32_t t = 1; t <= max_rel; ++t) {
    uint64_t a_lo = 0, a_hi = 0, b_lo = 0, b_hi = 0;
    for (const auto& x : a) {
      if (x.rel <= t) {
        a_lo += x.lo;
        a_hi += x.hi;
      }
    }
    for (const auto& x : b) {
      if (x.rel <= t) {
        b_lo += x.lo;
        b_hi += x.hi;
      }
    }
    if (a_lo > b_lo || b_hi > a_hi) return false;
  }
  return true;
}

Buckets RandomProfile(Rng& rng) {
  Buckets out;
  const uint32_t len = static_cast<uint32_t>(rng.NextBounded(4));
  uint32_t rel = 0;
  for (uint32_t i = 0; i < len; ++i) {
    rel += 1 + static_cast<uint32_t>(rng.NextBounded(3));
    offline::IntervalBucket bucket;
    bucket.rel = rel;
    bucket.hi = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    bucket.lo = static_cast<uint32_t>(rng.NextBounded(bucket.hi + 1));
    out.push_back(bucket);
  }
  return out;
}

std::vector<uint32_t> RandomConfig(Rng& rng, uint32_t m, uint32_t nc) {
  std::vector<uint32_t> cfg;
  for (uint32_t i = 0; i < m; ++i) {
    cfg.push_back(static_cast<uint32_t>(rng.NextBounded(nc + 1)));
  }
  std::sort(cfg.begin(), cfg.end());
  return cfg;
}

TEST(IntervalDominance, ContainedStatesArePrunedAndNeverTheReverse) {
  // Derive B from A by tightening each bucket within A's [lo, hi] — by
  // construction A contains B, so A must dominate B, and B may dominate A
  // only when nothing actually differs.
  Rng rng(20250814);
  const int iters = 40 * FuzzIters();
  for (int it = 0; it < iters; ++it) {
    const uint32_t m = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    const uint32_t nc = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    const auto cfg = RandomConfig(rng, m, nc);
    std::vector<Buckets> a_profiles, b_profiles;
    for (uint32_t c = 0; c < nc; ++c) {
      const Buckets a = RandomProfile(rng);
      Buckets b;
      for (const offline::IntervalBucket& x : a) {
        offline::IntervalBucket y = x;
        y.lo = x.lo + static_cast<uint32_t>(rng.NextBounded(x.hi - x.lo + 1));
        y.hi = y.lo + static_cast<uint32_t>(rng.NextBounded(x.hi - y.lo + 1));
        if (y.hi == 0) continue;  // tightened to empty: drop the bucket
        b.push_back(y);
      }
      a_profiles.push_back(a);
      b_profiles.push_back(b);
    }
    const auto a_span = offline::EncodeIntervalState(cfg, a_profiles);
    const auto b_span = offline::EncodeIntervalState(cfg, b_profiles);
    const uint64_t a_lo = rng.NextBounded(20);
    const uint64_t a_hi = a_lo + rng.NextBounded(20);
    const uint64_t b_lo = a_lo + rng.NextBounded(a_hi - a_lo + 1);
    const uint64_t b_hi = b_lo + rng.NextBounded(a_hi - b_lo + 1);

    EXPECT_TRUE(offline::IntervalStateDominates(a_span, a_lo, a_hi, b_span,
                                                b_lo, b_hi, m, nc))
        << "iter " << it;
    const bool identical =
        a_span == b_span && a_lo == b_lo && a_hi == b_hi;
    if (!identical) {
      // The reverse may hold only if B's envelopes and costs also bracket
      // A's — which with B ⊆ A forces equality. Never on a strict subset.
      EXPECT_FALSE(offline::IntervalStateDominates(b_span, b_lo, b_hi, a_span,
                                                   a_lo, a_hi, m, nc))
          << "iter " << it;
    }
  }
}

TEST(IntervalDominance, MatchesDenseReferenceOnRandomPairs) {
  // Independent pairs: the packed merge-walk predicate must agree with the
  // dense cumulative reference everywhere, and mutual dominance must imply
  // identical states.
  Rng rng(20250815);
  const int iters = 40 * FuzzIters();
  for (int it = 0; it < iters; ++it) {
    const uint32_t m = 1 + static_cast<uint32_t>(rng.NextBounded(2));
    const uint32_t nc = 1 + static_cast<uint32_t>(rng.NextBounded(2));
    const auto cfg = RandomConfig(rng, m, nc);
    std::vector<Buckets> a_profiles, b_profiles;
    for (uint32_t c = 0; c < nc; ++c) {
      a_profiles.push_back(RandomProfile(rng));
      b_profiles.push_back(RandomProfile(rng));
    }
    const auto a_span = offline::EncodeIntervalState(cfg, a_profiles);
    const auto b_span = offline::EncodeIntervalState(cfg, b_profiles);
    const uint64_t a_lo = rng.NextBounded(8);
    const uint64_t a_hi = a_lo + rng.NextBounded(8);
    const uint64_t b_lo = rng.NextBounded(8);
    const uint64_t b_hi = b_lo + rng.NextBounded(8);

    bool ref_ab = a_lo <= b_lo && a_hi >= b_hi;
    bool ref_ba = b_lo <= a_lo && b_hi >= a_hi;
    for (uint32_t c = 0; c < nc; ++c) {
      ref_ab = ref_ab && RefProfileContains(a_profiles[c], b_profiles[c]);
      ref_ba = ref_ba && RefProfileContains(b_profiles[c], a_profiles[c]);
    }
    const bool got_ab = offline::IntervalStateDominates(
        a_span, a_lo, a_hi, b_span, b_lo, b_hi, m, nc);
    const bool got_ba = offline::IntervalStateDominates(
        b_span, b_lo, b_hi, a_span, a_lo, a_hi, m, nc);
    EXPECT_EQ(got_ab, ref_ab) << "iter " << it;
    EXPECT_EQ(got_ba, ref_ba) << "iter " << it;
    if (got_ab && got_ba) {
      EXPECT_EQ(a_span, b_span) << "mutual dominance on distinct spans";
      EXPECT_EQ(a_lo, b_lo);
      EXPECT_EQ(a_hi, b_hi);
    }
  }
}

TEST(IntervalDominance, RegressionCorpusPinsVerdicts) {
  // tests/golden/interval_dominance_corpus.txt: hand-built edge cases (and
  // any future counterexamples) as raw packed words. Each entry:
  //   m nc a_cost_lo a_cost_hi a_len <a words> b_cost_lo b_cost_hi b_len
  //   <b words> expect_ab expect_ba
  std::ifstream in(RRS_INTERVAL_CORPUS_FILE);
  ASSERT_TRUE(in.is_open()) << "missing " << RRS_INTERVAL_CORPUS_FILE;
  std::string line;
  int entries = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint32_t m = 0, nc = 0, a_len = 0, b_len = 0;
    uint64_t a_lo = 0, a_hi = 0, b_lo = 0, b_hi = 0;
    int expect_ab = 0, expect_ba = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> m >> nc >> a_lo >> a_hi >> a_len))
        << "corpus entry " << entries;
    std::vector<uint32_t> a_span(a_len), b_span;
    for (uint32_t& w : a_span) ASSERT_TRUE(static_cast<bool>(ls >> w));
    ASSERT_TRUE(static_cast<bool>(ls >> b_lo >> b_hi >> b_len));
    b_span.resize(b_len);
    for (uint32_t& w : b_span) ASSERT_TRUE(static_cast<bool>(ls >> w));
    ASSERT_TRUE(static_cast<bool>(ls >> expect_ab >> expect_ba));

    EXPECT_EQ(offline::IntervalStateDominates(a_span, a_lo, a_hi, b_span,
                                              b_lo, b_hi, m, nc),
              expect_ab == 1)
        << "corpus entry " << entries << " (A->B)";
    EXPECT_EQ(offline::IntervalStateDominates(b_span, b_lo, b_hi, a_span,
                                              a_lo, a_hi, m, nc),
              expect_ba == 1)
        << "corpus entry " << entries << " (B->A)";
    ++entries;
  }
  EXPECT_GE(entries, 10);
}

TEST(IntervalDominance, PackedLayoutIsSnapshotStable) {
  // The exact word sequence is load-bearing (golden corpus entries and any
  // future on-disk states depend on it): [config m words][per color: len,
  // (rel, lo, hi) triples].
  const std::vector<uint32_t> cfg = {0, 2};  // m=2, color 0 + black (nc=2)
  std::vector<Buckets> profiles(2);
  profiles[0] = {{1, 0, 2}, {4, 1, 1}};
  profiles[1] = {};
  const auto span = offline::EncodeIntervalState(cfg, profiles);
  const std::vector<uint32_t> expected = {0, 2, 2, 1, 0, 2, 4, 1, 1, 0};
  EXPECT_EQ(span, expected);

  // And the containment predicate reads that layout: the state contains a
  // tightened copy of itself.
  std::vector<Buckets> tighter(2);
  tighter[0] = {{1, 1, 2}, {4, 1, 1}};
  tighter[1] = {};
  const auto tight_span = offline::EncodeIntervalState(cfg, tighter);
  EXPECT_TRUE(offline::IntervalStateContains(span, tight_span, 2, 2));
  EXPECT_FALSE(offline::IntervalStateContains(tight_span, span, 2, 2));
}

// ---------------------------------------------------------------------------
// Supporting pieces: envelopes, sampling, lower-bound leg, ratio, obs.
// ---------------------------------------------------------------------------

TEST(UncertainInstance, EnvelopeInstancesAnchorTheSet) {
  workload::UncertainInstance set;
  const ColorId c0 = set.AddColor(3, "a", 2);
  const ColorId c1 = set.AddColor(5, "b");
  set.AddJob(c0, 2, 2);      // forced
  set.AddJob(c0, 1, 3);      // width 2
  set.AddJobs(c1, 0, 1, 2);  // width 1, twice

  EXPECT_FALSE(set.IsZeroWidth());
  EXPECT_EQ(set.num_jobs(), 4u);
  EXPECT_EQ(set.num_request_rounds(), 4);
  EXPECT_EQ(set.horizon(), 3 + 3);  // the width-2 job of color 0

  const Instance forced = set.ForcedInstance();
  EXPECT_EQ(forced.num_jobs(), 1u);  // only the pinned job
  EXPECT_EQ(forced.num_colors(), 2u);
  EXPECT_EQ(forced.drop_cost(c0), 2u);

  const Instance pessimistic = set.PessimisticInstance();
  EXPECT_EQ(pessimistic.num_jobs(), 1u + 3u + 2u * 2u);

  // Zero-width: all three coincide in job multiset.
  const auto zero = workload::UncertainInstance::FromInstance(forced, 0, 0);
  EXPECT_TRUE(zero.IsZeroWidth());
  EXPECT_EQ(zero.ForcedInstance().num_jobs(),
            zero.PessimisticInstance().num_jobs());
}

TEST(UncertainInstance, SampleSourceMaterializesTheSampledTrace) {
  Rng rng(20250816);
  const auto set = TinyWindowedSet(rng, true);
  for (uint64_t seed : {1ull, 42ull, 999ull}) {
    const Instance direct = set.Sample(seed);
    auto source = set.SampleSource(seed);
    ASSERT_NE(source, nullptr);
    const Instance via_source = workload::Materialize(*source);
    ASSERT_EQ(direct.num_jobs(), via_source.num_jobs());
    for (JobId j = 0; j < direct.num_jobs(); ++j) {
      EXPECT_EQ(direct.job(j).color, via_source.job(j).color);
      EXPECT_EQ(direct.job(j).arrival, via_source.job(j).arrival);
    }
    // Same seed, same trace; sampling is a pure function of the seed.
    const Instance again = set.Sample(seed);
    ASSERT_EQ(direct.num_jobs(), again.num_jobs());
    for (JobId j = 0; j < direct.num_jobs(); ++j) {
      EXPECT_EQ(direct.job(j).arrival, again.job(j).arrival);
    }
    // Every sampled arrival stays inside its job's window (jobs are sorted
    // by arrival, so match on per-color counts instead of identity).
    for (const Job& job : direct.jobs()) {
      bool in_some_window = false;
      for (const workload::WindowedJob& w : set.jobs()) {
        if (w.color == job.color && w.release_lo <= job.arrival &&
            job.arrival <= w.release_hi) {
          in_some_window = true;
          break;
        }
      }
      EXPECT_TRUE(in_some_window);
    }
  }
}

TEST(OfflineRobust, RobustLowerBoundIsTheForcedInstanceBound) {
  Rng rng(20250817);
  for (int trial = 0; trial < 20; ++trial) {
    const auto set = TinyWindowedSet(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const CostModel model{1 + static_cast<uint64_t>(trial % 3)};
    const uint64_t robust_lb = offline::RobustLowerBound(set, m, model);
    EXPECT_EQ(robust_lb, offline::LowerBound(set.ForcedInstance(), m, model));
    // And it holds for every member trace (spot-check a few).
    for (uint64_t seed = 0; seed < 5; ++seed) {
      const auto exact =
          offline::SolveOptimal(set.Sample(seed), OptimalBase(m, model.delta));
      ASSERT_TRUE(exact.exact);
      EXPECT_LE(robust_lb, exact.total_cost) << "trial " << trial;
    }
  }
}

TEST(OfflineRobust, EnvelopeHallLegMatchesPairwiseOnEachSide) {
  // (rel, lo, hi) triples: the lo-side leg equals CapacityRelaxedDrops on
  // the (rel, lo) pairs, the hi side on the (rel, hi) pairs.
  const uint32_t triples[] = {1, 1, 3, 5, 2, 4};
  const uint32_t lo_pairs[] = {1, 1, 5, 2};
  const uint32_t hi_pairs[] = {1, 3, 5, 4};
  for (uint32_t m = 1; m <= 3; ++m) {
    EXPECT_EQ(offline::CapacityRelaxedDropsEnvelope(triples, m, false),
              offline::CapacityRelaxedDrops(lo_pairs, m));
    EXPECT_EQ(offline::CapacityRelaxedDropsEnvelope(triples, m, true),
              offline::CapacityRelaxedDrops(hi_pairs, m));
  }
  EXPECT_EQ(offline::CapacityRelaxedDropsEnvelope({}, 1, false), 0u);
  EXPECT_EQ(offline::CapacityRelaxedDropsEnvelope({}, 1, true), 0u);
}

TEST(OfflineRobust, MeasureRobustRatioSurfacesBrackets) {
  workload::UncertainInstance set;
  const ColorId c0 = set.AddColor(4);
  const ColorId c1 = set.AddColor(4);
  set.AddJobs(c0, 0, 1, 4);
  set.AddJobs(c1, 0, 0, 4);
  const CostModel model{2};

  const auto report = analysis::MeasureRobustRatio(set, /*online_cost=*/20,
                                                   /*m=*/2, model);
  ASSERT_TRUE(report.exact);
  EXPECT_LE(report.opt_lower, report.opt_upper);
  EXPECT_LE(report.ratio_lower, report.ratio_upper);
  EXPECT_GT(report.states_expanded, 0u);

  const auto squeezed = analysis::MeasureRobustRatio(set, 20, 2, model,
                                                     /*max_states=*/1);
  ASSERT_FALSE(squeezed.exact);
  EXPECT_LE(squeezed.opt_lower, report.opt_lower);
  EXPECT_GE(squeezed.opt_upper, report.opt_upper);
  EXPECT_LE(squeezed.ratio_lower, squeezed.ratio_upper);
}

TEST(OfflineRobust, SolverEmitsObsCounters) {
  obs::Scope scope;
  workload::UncertainInstance set;
  const ColorId c0 = set.AddColor(4);
  const ColorId c1 = set.AddColor(4);
  set.AddJobs(c0, 0, 1, 4);
  set.AddJobs(c1, 0, 0, 4);

  auto options = RobustBase(2, 1);
  options.obs_scope = &scope;
  const auto result = offline::SolveRobust(set, options);
  ASSERT_TRUE(result.exact);

  const auto values = scope.registry().Values();
  auto value_of = [&](const char* name) {
    auto it = values.find(name);
    return it == values.end() ? uint64_t{0}
                              : static_cast<uint64_t>(it->second);
  };
  EXPECT_EQ(value_of("offline.robust.solves"), 1u);
  EXPECT_EQ(value_of("offline.robust.solves_exact"), 1u);
  EXPECT_EQ(value_of("offline.robust.states_expanded"),
            result.states_expanded);
  EXPECT_EQ(value_of("offline.robust.states_generated"),
            result.states_generated);
  EXPECT_EQ(value_of("offline.robust.pruned_bound"), result.pruned_bound);
  const obs::LogHistogram* widths =
      scope.registry().FindHistogram("offline.robust.layer_width");
  ASSERT_NE(widths, nullptr);
  EXPECT_GT(widths->count(), 0u);
  EXPECT_EQ(widths->max(), result.max_layer_width);
}

}  // namespace
}  // namespace rrs
