// Tests for src/sched: the ColorStateTable state machine of Section 3.1,
// CacheSlots, the ranking keys, Par-EDF, and the behavior of the ΔLRU, EDF,
// ΔLRU-EDF, and baseline policies on hand-built instances.
#include <map>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/cache_slots.h"
#include "sched/color_state.h"
#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/greedy.h"
#include "sched/lookahead.h"
#include "sched/par_edf.h"
#include "sched/ranking.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/adversary.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

// A stub ResourceView for driving CacheSlots and policies directly.
// Holds the pending table in a base subobject so it is constructed before
// ResourceView, which captures a pointer to it.
struct FakeViewPending {
  explicit FakeViewPending(size_t colors) : pending_(colors, 0) {}
  std::vector<uint64_t> pending_;
};

class FakeView : private FakeViewPending, public ResourceView {
 public:
  FakeView(uint32_t n, size_t colors)
      : FakeViewPending(colors),
        ResourceView(pending_.data()),
        colors_(n, kNoColor) {}

  uint32_t num_resources() const override {
    return static_cast<uint32_t>(colors_.size());
  }
  ColorId color_of(ResourceId r) const override { return colors_[r]; }
  void SetColor(ResourceId r, ColorId c) override {
    if (colors_[r] == c) return;
    colors_[r] = c;
    ++reconfigs_;
  }
  Round earliest_deadline(ColorId c) const override {
    return deadline_.at(c);
  }
  const std::vector<ColorId>& nonidle_colors() const override {
    nonidle_.clear();
    for (ColorId c = 0; c < pending_.size(); ++c) {
      if (pending_[c] > 0) nonidle_.push_back(c);
    }
    return nonidle_;
  }

  void set_pending(ColorId c, uint64_t n) { pending_[c] = n; }
  void set_deadline(ColorId c, Round d) { deadline_[c] = d; }
  uint64_t reconfigs() const { return reconfigs_; }
  const std::vector<ColorId>& colors() const { return colors_; }

 private:
  std::vector<ColorId> colors_;
  std::map<ColorId, Round> deadline_;
  mutable std::vector<ColorId> nonidle_;
  uint64_t reconfigs_ = 0;
};

Instance SimpleInstance(Round d0 = 2, Round d1 = 4) {
  InstanceBuilder b;
  b.AddColor(d0);
  b.AddColor(d1);
  return b.Build();
}

// ------------------------------------------------------ ColorStateTable ----

TEST(ColorStateTable, CounterWrapMakesEligible) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, /*delta=*/3);

  EXPECT_FALSE(table.eligible(0));
  EXPECT_FALSE(table.OnArrivals(0, 0, 2));  // cnt = 2 < 3
  EXPECT_EQ(table.counter(0), 2u);
  EXPECT_FALSE(table.eligible(0));

  EXPECT_TRUE(table.OnArrivals(2, 0, 1));  // cnt reaches 3: wrap, eligible
  EXPECT_TRUE(table.eligible(0));
  EXPECT_EQ(table.counter(0), 0u);
  EXPECT_EQ(table.wrap_events(), 1u);
}

TEST(ColorStateTable, CounterWrapKeepsRemainder) {
  Instance inst = SimpleInstance();
  ColorStateTable table;
  table.Reset(inst, 3);
  table.OnArrivals(0, 0, 7);  // 7 mod 3 = 1
  EXPECT_EQ(table.counter(0), 1u);
  EXPECT_TRUE(table.eligible(0));
}

TEST(ColorStateTable, TimestampPromotedAtNextBoundary) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  ColorStateTable::BoundaryEvents events;
  auto uncached = [](ColorId) { return false; };

  // Round 0: boundary, no wraps pending; then a wrap at round 0.
  table.ProcessBoundary(0, uncached, events);
  EXPECT_TRUE(events.timestamp_updated.empty());
  table.OnArrivals(0, 0, 2);  // wrap at round 0
  EXPECT_EQ(table.timestamp(0), 0);  // not yet promoted

  // Round 2: next multiple of D_0 = 2 -> promotion.
  table.ProcessBoundary(2, [](ColorId) { return true; }, events);
  ASSERT_EQ(events.timestamp_updated.size(), 1u);
  EXPECT_EQ(events.timestamp_updated[0], 0u);
  EXPECT_EQ(table.timestamp(0), 0);  // the wrap happened in round 0
  EXPECT_EQ(table.timestamp_update_events(), 1u);

  // A wrap at round 2, promoted at round 4.
  table.OnArrivals(2, 0, 2);
  table.ProcessBoundary(4, [](ColorId) { return true; }, events);
  EXPECT_EQ(table.timestamp(0), 2);
}

TEST(ColorStateTable, BoundaryColorsFollowDelayBounds) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  ColorStateTable::BoundaryEvents events;
  auto uncached = [](ColorId) { return false; };

  table.ProcessBoundary(2, uncached, events);
  EXPECT_EQ(events.boundary_colors, (std::vector<ColorId>{0}));  // only D=2
  table.ProcessBoundary(4, uncached, events);
  EXPECT_EQ(events.boundary_colors, (std::vector<ColorId>{0, 1}));
  table.ProcessBoundary(3, uncached, events);
  EXPECT_TRUE(events.boundary_colors.empty());
}

TEST(ColorStateTable, UncachedEligibleBecomesIneligibleAtBoundary) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  table.OnArrivals(0, 0, 2);  // eligible
  ASSERT_TRUE(table.eligible(0));

  ColorStateTable::BoundaryEvents events;
  table.ProcessBoundary(2, [](ColorId) { return false; }, events);
  ASSERT_EQ(events.became_ineligible.size(), 1u);
  EXPECT_FALSE(table.eligible(0));
  EXPECT_EQ(table.counter(0), 0u);
  EXPECT_EQ(table.epochs_completed(), 1u);
}

TEST(ColorStateTable, CachedEligibleStaysEligibleAtBoundary) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  table.OnArrivals(0, 0, 2);
  ColorStateTable::BoundaryEvents events;
  table.ProcessBoundary(2, [](ColorId) { return true; }, events);
  EXPECT_TRUE(events.became_ineligible.empty());
  EXPECT_TRUE(table.eligible(0));
}

TEST(ColorStateTable, DeadlineSetAtBoundary) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  ColorStateTable::BoundaryEvents events;
  auto cached = [](ColorId) { return true; };
  table.ProcessBoundary(4, cached, events);
  EXPECT_EQ(table.deadline(0), 6);  // 4 + 2
  EXPECT_EQ(table.deadline(1), 8);  // 4 + 4
}

TEST(ColorStateTable, DropClassificationByEligibility) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  table.RecordDrop(0, 3);  // ineligible
  table.OnArrivals(0, 0, 2);
  table.RecordDrop(0, 5);  // now eligible
  EXPECT_EQ(table.ineligible_drops(), 3u);
  EXPECT_EQ(table.eligible_drops(), 5u);
}

TEST(ColorStateTable, NumEpochsCountsIncompleteEpochs) {
  Instance inst = SimpleInstance(2, 4);
  ColorStateTable table;
  table.Reset(inst, 2);
  EXPECT_EQ(table.num_epochs(), 0u);  // no color saw any job
  table.OnArrivals(0, 0, 1);
  EXPECT_EQ(table.num_epochs(), 1u);  // color 0's (incomplete) epoch 0
  table.OnArrivals(0, 1, 1);
  EXPECT_EQ(table.num_epochs(), 2u);
}

TEST(ColorStateTable, EligibleColorsListTracksState) {
  Instance inst = SimpleInstance(2, 2);
  ColorStateTable table;
  table.Reset(inst, 1);
  table.OnArrivals(0, 0, 1);
  table.OnArrivals(0, 1, 1);
  EXPECT_EQ(table.eligible_colors().size(), 2u);
  ColorStateTable::BoundaryEvents events;
  table.ProcessBoundary(2, [](ColorId c) { return c == 0; }, events);
  EXPECT_EQ(table.eligible_colors().size(), 1u);
  EXPECT_EQ(table.eligible_colors()[0], 0u);
}

// ----------------------------------------------------------- CacheSlots ----

TEST(CacheSlots, InsertEvictApplyWithReplication) {
  CacheSlots slots;
  slots.Reset(2, 4, /*replicate=*/true);
  FakeView view(4, 4);

  slots.Insert(1);
  slots.Insert(3);
  slots.ApplyTo(view);
  EXPECT_EQ(view.reconfigs(), 4u);  // 2 colors x 2 locations
  EXPECT_TRUE(slots.IsCached(1));
  EXPECT_TRUE(slots.full());

  slots.Evict(1);
  slots.Insert(2);
  slots.ApplyTo(view);
  EXPECT_EQ(view.reconfigs(), 6u);  // one slot recolored in 2 locations
  EXPECT_FALSE(slots.IsCached(1));
  EXPECT_TRUE(slots.IsCached(2));
  EXPECT_TRUE(slots.CheckInvariants());

  // Replica mirrors the primary.
  for (uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(view.colors()[s], view.colors()[2 + s]);
  }
}

TEST(CacheSlots, NoReplication) {
  CacheSlots slots;
  slots.Reset(2, 4, /*replicate=*/false);
  FakeView view(2, 4);
  slots.Insert(0);
  slots.ApplyTo(view);
  EXPECT_EQ(view.reconfigs(), 1u);
}

TEST(CacheSlots, EvictedSlotReusedFirst) {
  CacheSlots slots;
  slots.Reset(3, 6, true);
  FakeView view(6, 6);
  slots.Insert(0);
  slots.Insert(1);
  slots.ApplyTo(view);
  slots.Evict(0);
  slots.Insert(2);  // must land in 0's slot, leaving no vacated slot
  slots.ApplyTo(view);
  EXPECT_TRUE(slots.CheckInvariants());
  EXPECT_EQ(slots.size(), 2u);
}

TEST(CacheSlots, CachedColorsListMatches) {
  CacheSlots slots;
  slots.Reset(3, 6, false);
  slots.Insert(4);
  slots.Insert(2);
  slots.Evict(4);
  auto cached = slots.cached_colors();
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0], 2u);
}

// -------------------------------------------------------------- Ranking ----

TEST(Ranking, NonidleBeforeIdleThenDeadlineDelayColor) {
  ColorRankKey nonidle_early{0, 4, 2, 1};
  ColorRankKey nonidle_late{0, 8, 2, 0};
  ColorRankKey idle_early{1, 2, 2, 0};
  EXPECT_LT(nonidle_early, nonidle_late);
  EXPECT_LT(nonidle_late, idle_early);

  ColorRankKey tie_small_delay{0, 4, 2, 5};
  ColorRankKey tie_big_delay{0, 4, 8, 0};
  EXPECT_LT(tie_small_delay, tie_big_delay);

  ColorRankKey tie_color_a{0, 4, 2, 3};
  ColorRankKey tie_color_b{0, 4, 2, 7};
  EXPECT_LT(tie_color_a, tie_color_b);
}

TEST(Ranking, JobRankKeyOrder) {
  JobRankKey a{4, 2, 0, 0};
  JobRankKey b{4, 4, 0, 1};
  JobRankKey c{5, 1, 0, 2};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

// -------------------------------------------------------------- Par-EDF ----

TEST(ParEdf, ExecutesEverythingWhenCapacitySuffices) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJobs(c, 0, 4);
  Instance inst = b.Build();
  auto result = RunParEdf(inst, 1);
  EXPECT_EQ(result.executed, 4u);
  EXPECT_EQ(result.drops, 0u);
}

TEST(ParEdf, DropsWhenOverloaded) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 10);  // 10 jobs, 2 executable rounds, m=1
  Instance inst = b.Build();
  auto result = RunParEdf(inst, 1);
  EXPECT_EQ(result.executed, 2u);
  EXPECT_EQ(result.drops, 8u);
}

TEST(ParEdf, MultipleResourcesScaleThroughput) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 10);
  Instance inst = b.Build();
  EXPECT_EQ(RunParEdf(inst, 5).executed, 10u);
}

TEST(ParEdf, PrefersEarlierDeadlines) {
  InstanceBuilder b;
  ColorId urgent = b.AddColor(1);
  ColorId relaxed = b.AddColor(8);
  b.AddJob(relaxed, 0);
  b.AddJob(urgent, 0);
  Instance inst = b.Build();
  auto result = RunParEdf(inst, 1);
  // Round 0 executes the urgent job; the relaxed one still fits later.
  EXPECT_EQ(result.drops, 0u);
}

TEST(ParEdf, DropLowerBoundsEnginePolicies) {
  // Par-EDF's drop count is a lower bound on the drops of every feasible
  // m-resource schedule (Lemma 3.7); engine policies produce feasible
  // schedules, so they can never drop less.
  Rng rng(211);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {1, 0.7}, {2, 0.7}, {4, 0.5}, {8, 0.4}};
    workload::PoissonOptions gen;
    gen.rounds = 32;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint32_t m = 2;
    uint64_t lb = ParEdfDropCost(inst, m);
    for (const char* name : {"greedy-edf", "lazy-greedy", "static"}) {
      auto policy = MakePolicy(name);
      EngineOptions options;
      options.num_resources = m;
      RunResult r = RunPolicy(inst, *policy, options);
      EXPECT_GE(r.cost.drops, lb) << name << " trial " << trial;
    }
  }
}

// ------------------------------------------------------------- Policies ----

TEST(EdfPolicy, CachesEarliestDeadlineNonidleColors) {
  // Two colors, capacity for one (n=2 -> P=1). The D=2 color has the earlier
  // color deadline and must win the slot.
  InstanceBuilder b;
  ColorId fast = b.AddColor(2);
  ColorId slow = b.AddColor(8);
  b.AddJobs(fast, 0, 2);
  b.AddJobs(slow, 0, 2);
  Instance inst = b.Build();

  EdfPolicy policy(true);
  EngineOptions options;
  options.num_resources = 2;
  options.cost_model.delta = 1;  // every job wraps its counter immediately
  RunResult r = RunPolicy(inst, policy, options);
  // The fast color (deadline 2) is executed in round 0 on both locations.
  EXPECT_EQ(r.drops_per_color[fast], 0u);
}

TEST(SeqEdfPolicy, UsesAllCapacityDistinct) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(2);
  ColorId c1 = b.AddColor(2);
  b.AddJobs(c0, 0, 2);
  b.AddJobs(c1, 0, 2);
  Instance inst = b.Build();

  EdfPolicy policy(/*replicate=*/false);
  EngineOptions options;
  options.num_resources = 2;
  options.cost_model.delta = 1;
  RunResult r = RunPolicy(inst, policy, options);
  // Two distinct colors cached on two resources: each executes both its jobs
  // in rounds 0 and 1.
  EXPECT_EQ(r.executed, 4u);
  EXPECT_EQ(r.cost.drops, 0u);
}

TEST(DlruPolicy, KeepsRecentIdleColorCachedUnderutilizing) {
  // Appendix A in miniature: ΔLRU pins short-term colors with fresh
  // timestamps even while they are idle, dropping the long-term backlog.
  auto adv = workload::MakeDlruAdversary(/*n=*/4, /*delta=*/2, /*j=*/3,
                                         /*k=*/7);
  DlruPolicy dlru;
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(adv.instance, dlru, options);
  // All 2^7 long-term jobs are dropped.
  EXPECT_EQ(r.drops_per_color[adv.long_color], uint64_t{1} << 7);
}

TEST(DlruEdfPolicy, ServesLongColorWhereDlruDoesNot) {
  auto adv = workload::MakeDlruAdversary(4, 2, 3, 7);
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;

  DlruPolicy dlru;
  RunResult dlru_run = RunPolicy(adv.instance, dlru, options);
  DlruEdfPolicy combined;
  RunResult combined_run = RunPolicy(adv.instance, combined, options);

  EXPECT_LT(combined_run.drops_per_color[adv.long_color],
            dlru_run.drops_per_color[adv.long_color]);
  EXPECT_LT(combined_run.total_cost(options.cost_model),
            dlru_run.total_cost(options.cost_model));
}

TEST(DlruEdfPolicy, AvoidsEdfThrashing) {
  auto adv = workload::MakeEdfAdversary(/*n=*/4, /*delta=*/5, /*j=*/3,
                                        /*k=*/7);
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 5;

  EdfPolicy edf(true);
  RunResult edf_run = RunPolicy(adv.instance, edf, options);
  DlruEdfPolicy combined;
  RunResult combined_run = RunPolicy(adv.instance, combined, options);

  EXPECT_LT(combined_run.cost.reconfigurations, edf_run.cost.reconfigurations);
}

TEST(DlruEdfPolicy, CountersExported) {
  auto adv = workload::MakeDlruAdversary(4, 2, 3, 6);
  DlruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(adv.instance, policy, options);
  EXPECT_TRUE(r.telemetry.counters.count("num_epochs"));
  EXPECT_TRUE(r.telemetry.counters.count("eligible_drops"));
  EXPECT_EQ(r.telemetry.counters["eligible_drops"] +
                r.telemetry.counters["ineligible_drops"],
            static_cast<double>(r.cost.drops));
}

TEST(DlruEdfPolicy, Lemma33ReconfigBound) {
  // ReconfigCost <= 4 * numEpochs * Δ (Lemma 3.3) across random inputs.
  Rng rng(223);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {1, 0.5}, {2, 0.5}, {4, 0.5}, {8, 0.5}, {16, 0.4}};
    workload::BurstyOptions gen;
    gen.rounds = 256;
    gen.rate_limited = true;
    gen.seed = rng.Next();
    Instance inst = MakeBursty(specs, gen);
    DlruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model.delta = 3;
    RunResult r = RunPolicy(inst, policy, options);
    EXPECT_LE(r.cost.reconfig_cost(options.cost_model),
              4 * policy.num_epochs() * options.cost_model.delta)
        << "trial " << trial;
  }
}

TEST(DlruEdfPolicy, Lemma34IneligibleDropBound) {
  // IneligibleDropCost <= numEpochs * Δ (Lemma 3.4).
  Rng rng(227);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {2, 0.6}, {4, 0.6}, {8, 0.4}, {16, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 256;
    gen.rate_limited = true;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    DlruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model.delta = 4;
    RunResult r = RunPolicy(inst, policy, options);
    EXPECT_LE(policy.ineligible_drop_cost(),
              policy.num_epochs() * options.cost_model.delta)
        << "trial " << trial;
  }
}

TEST(DlruEdfPolicy, IneligibleJobCollection) {
  auto adv = workload::MakeDlruAdversary(4, 2, 3, 6);
  DlruEdfPolicy policy;
  policy.set_collect_ineligible_jobs(true);
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(adv.instance, policy, options);
  (void)r;
  EXPECT_EQ(policy.ineligible_job_ids().size(), policy.ineligible_drop_cost());
}

TEST(GreedyEdfPolicy, ServesUrgentFirst) {
  InstanceBuilder b;
  ColorId urgent = b.AddColor(1);
  ColorId relaxed = b.AddColor(16);
  b.AddJob(urgent, 0);
  b.AddJobs(relaxed, 0, 4);
  Instance inst = b.Build();
  GreedyEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.drops_per_color[urgent], 0u);
  EXPECT_EQ(r.cost.drops, 0u);  // plenty of time for the relaxed jobs after
}

TEST(LazyGreedyPolicy, ThresholdSuppressesSmallBursts) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJobs(c, 0, 2);  // backlog 2 < threshold 3: never configured
  Instance inst = b.Build();
  LazyGreedyPolicy policy(3);
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed, 0u);
  EXPECT_EQ(r.cost.reconfigurations, 0u);
}

TEST(LazyGreedyPolicy, KeepsServingCurrentColor) {
  InstanceBuilder b;
  ColorId a = b.AddColor(16);
  ColorId z = b.AddColor(16);
  b.AddJobs(a, 0, 4);
  b.AddJobs(z, 0, 4);
  Instance inst = b.Build();
  LazyGreedyPolicy policy(1);
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  // One resource serves 8 jobs in 8 rounds (all deadlines 16): 2 reconfigs.
  EXPECT_EQ(r.executed, 8u);
  EXPECT_EQ(r.cost.reconfigurations, 2u);
}

TEST(LookaheadPolicy, ZeroWindowStillServesPending) {
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJobs(c, 0, 4);
  Instance inst = b.Build();
  LookaheadGreedyPolicy::Params params;
  params.window = 0;
  LookaheadGreedyPolicy policy(params);
  EngineOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed, 4u);
  EXPECT_EQ(r.cost.drops, 0u);
}

TEST(LookaheadPolicy, FutureKnowledgeCutsReconfigurationsDeterministic) {
  // Fixed-seed bursty traffic: seeing future arrivals lets the policy keep
  // colors it will need again (hysteresis + anticipation), so W = 16 must
  // beat W = 0 on this deterministic instance — the E14 effect, pinned.
  std::vector<workload::ColorSpec> specs = {
      {2, 0.7}, {4, 0.7}, {8, 0.5}, {16, 0.4}, {32, 0.3}};
  workload::BurstyOptions gen;
  gen.rounds = 512;
  gen.p_off_to_on = 0.03;
  gen.p_on_to_off = 0.1;
  gen.seed = 53;
  Instance inst = MakeBursty(specs, gen);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 8;
  LookaheadGreedyPolicy::Params p0, p16;
  p0.window = 0;
  p16.window = 16;
  LookaheadGreedyPolicy blind(p0), sighted(p16);
  RunResult r0 = RunPolicy(inst, blind, options);
  RunResult r16 = RunPolicy(inst, sighted, options);
  EXPECT_LT(r16.total_cost(options.cost_model),
            r0.total_cost(options.cost_model));
  EXPECT_LT(r16.cost.reconfigurations, r0.cost.reconfigurations);
}

TEST(LookaheadPolicy, MoreLookaheadNeverWorseOnAverage) {
  // Not a pointwise guarantee, but across seeds the mean cost with W=16
  // must not exceed the mean cost with W=0 on bursty traffic.
  Rng rng(229);
  double cost_w0 = 0, cost_w16 = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {2, 0.7}, {4, 0.6}, {8, 0.5}, {16, 0.4}};
    workload::BurstyOptions gen;
    gen.rounds = 256;
    gen.seed = rng.Next();
    Instance inst = MakeBursty(specs, gen);
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model.delta = 6;
    LookaheadGreedyPolicy::Params p0, p16;
    p0.window = 0;
    p16.window = 16;
    LookaheadGreedyPolicy a(p0), b(p16);
    cost_w0 += static_cast<double>(
        RunPolicy(inst, a, options).total_cost(options.cost_model));
    cost_w16 += static_cast<double>(
        RunPolicy(inst, b, options).total_cost(options.cost_model));
  }
  EXPECT_LE(cost_w16, cost_w0 * 1.05);
}

TEST(DsSeqEdf, Lemma39SubsequenceMonotonicity) {
  // Lemma 3.9: if DS-Seq-EDF executes j jobs on a subsequence α of σ, it
  // executes at least j jobs on σ. Verified over random (σ, α) pairs.
  Rng rng(233);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {1, 0.6}, {2, 0.6}, {4, 0.5}, {8, 0.4}};
    workload::PoissonOptions gen;
    gen.rounds = 48;
    gen.rate_limited = true;
    gen.seed = rng.Next();
    Instance sigma = MakePoisson(specs, gen);
    if (sigma.num_jobs() == 0) continue;

    // Random subsequence α: drop each job with probability 0.4.
    InstanceBuilder ab;
    for (ColorId c = 0; c < sigma.num_colors(); ++c) {
      ab.AddColor(sigma.delay_bound(c));
    }
    for (const Job& j : sigma.jobs()) {
      if (!rng.Bernoulli(0.4)) ab.AddJob(j.color, j.arrival);
    }
    Instance alpha = ab.Build();

    EngineOptions options;
    options.num_resources = 2;
    options.mini_rounds_per_round = 2;  // double speed
    options.cost_model.delta = 2;
    EdfPolicy on_alpha(/*replicate=*/false), on_sigma(false);
    uint64_t executed_alpha = RunPolicy(alpha, on_alpha, options).executed;
    uint64_t executed_sigma = RunPolicy(sigma, on_sigma, options).executed;
    EXPECT_GE(executed_sigma, executed_alpha) << "trial " << trial;
  }
}

TEST(Registry, AllNamesConstruct) {
  for (const std::string& name : PolicyNames()) {
    auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name().substr(0, 3), name.substr(0, 3));
  }
  EXPECT_EQ(MakePolicy("no-such-policy"), nullptr);
}

}  // namespace
}  // namespace rrs
