// Tests for the observability subsystem (src/obs/): metrics registry and
// log-linear histograms, the ring-buffer tracer and its Chrome trace_event
// exporter (golden round-trip through a line-based parser), engine/scope
// telemetry wiring across all three engines, concurrent Scope absorption,
// and the TimelinePolicy CSV export round-trip.
//
// This file is also the sanitizer suite: with -DRRS_SANITIZE=ON it is
// rebuilt against an ASan+UBSan library copy (ctest -L sanitize), so the
// concurrency-sensitive pieces (per-thread trace tracks, Scope::Absorb under
// contention) are exercised here on purpose.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/runner.h"
#include "analysis/sweep.h"
#include "analysis/timeline.h"
#include "core/engine.h"
#include "core/reference_engine.h"
#include "core/stream_engine.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "sched/dlru_edf.h"
#include "sched/invariant_checker.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance ObsWorkload(uint64_t seed, Round rounds = 256) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.6}, {4, 0.6}, {8, 0.4}, {16, 0.3}, {32, 0.2}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.rate_limited = true;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

// ---- LogHistogram ---------------------------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  obs::LogHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.max(), 15u);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(h.bucket_count(i), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
}

TEST(LogHistogram, SingleValueQuantileIsExactAcrossMagnitudes) {
  for (uint64_t v : {7ull, 100ull, 5000ull, 123456ull, 99999999ull}) {
    obs::LogHistogram h;
    h.Record(v);
    // Interpolation clamps to max, so a single sample round-trips exactly.
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), static_cast<double>(v)) << v;
    EXPECT_DOUBLE_EQ(h.Quantile(0.99), static_cast<double>(v)) << v;
  }
}

TEST(LogHistogram, RelativeErrorBounded) {
  // Any value lands in a bucket whose width is at most 12.5% of its lower
  // bound (8 linear sub-buckets per power of two).
  for (uint64_t v = 16; v < (1ull << 20); v = v * 3 + 1) {
    obs::LogHistogram h;
    h.Record(v);
    h.Record(v);  // two samples so interpolation does not clamp to max
    const double p0 = h.Quantile(0.0);
    EXPECT_LE(p0, static_cast<double>(v)) << v;
    EXPECT_GE(p0, static_cast<double>(v) * 0.875) << v;
  }
}

TEST(LogHistogram, QuantilesAreMonotoneAndOrdered) {
  obs::LogHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  double prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double val = h.Quantile(q);
    EXPECT_GE(val, prev);
    prev = val;
  }
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 * 0.125);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(LogHistogram, RecordManyMatchesRepeatedRecord) {
  obs::LogHistogram many, loop;
  const std::pair<uint64_t, uint64_t> samples[] = {
      {0, 3}, {7, 1}, {100, 50}, {(1ull << 33) + 9, 4}, {12, 0}};
  for (const auto& [value, count] : samples) {
    many.RecordMany(value, count);
    for (uint64_t i = 0; i < count; ++i) loop.Record(value);
  }
  EXPECT_EQ(many.count(), loop.count());
  EXPECT_EQ(many.sum(), loop.sum());
  EXPECT_EQ(many.max(), loop.max());
  for (uint32_t i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(many.bucket_count(i), loop.bucket_count(i)) << i;
  }
  EXPECT_DOUBLE_EQ(many.Quantile(0.5), loop.Quantile(0.5));
}

TEST(LogHistogram, ResetOnEmptyIsANoOpAndKeepsInvariants) {
  // The empty fast-path (count_ == 0 skips the bucket clear) must leave an
  // untouched histogram indistinguishable from a freshly constructed one —
  // including after Merge added zero counts, which must not break the
  // "count_ == 0 implies all buckets zero" invariant the fast-path relies on.
  obs::LogHistogram h, empty;
  h.Reset();
  h.Merge(empty);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (uint32_t i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(h.bucket_count(i), 0u) << i;
  }
  // And the fast-path does not leak stale state through a record/reset/record
  // cycle: reset-after-record clears, second reset is the empty path.
  h.Record(42);
  h.Reset();
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  h.Record(3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 3u);
}

TEST(LogHistogram, MergeAndReset) {
  obs::LogHistogram a, b;
  a.Record(3);
  a.Record(100);
  b.Record(7);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 110u);
  EXPECT_EQ(a.max(), 100u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(LogHistogram, MergeDiffRecoversPeriodicDeltas) {
  // The absorb pattern: a writer records into one cumulative histogram; a
  // periodic absorber snapshots it as a baseline and later pulls the delta
  // with MergeDiff. The accumulated deltas must reproduce the stream a
  // dedicated pending histogram would have captured.
  obs::LogHistogram cumulative, baseline, absorbed, expected;
  auto absorb = [&] {
    absorbed.MergeDiff(cumulative, baseline);
    baseline = cumulative;
  };
  cumulative.RecordMany(100, 3);
  expected.RecordMany(100, 3);
  absorb();
  // Empty round: nothing recorded since the baseline copy.
  absorb();
  cumulative.Record(7);
  cumulative.RecordMany((1ull << 20) + 5, 2);
  expected.Record(7);
  expected.RecordMany((1ull << 20) + 5, 2);
  absorb();
  EXPECT_EQ(absorbed.count(), expected.count());
  EXPECT_EQ(absorbed.sum(), expected.sum());
  EXPECT_EQ(absorbed.max(), expected.max());
  for (uint32_t i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(absorbed.bucket_count(i), expected.bucket_count(i)) << i;
  }
}

TEST(LogHistogram, BucketBoundsContainTheirValues) {
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 1023ull, 1024ull,
                     (1ull << 40) + 12345ull}) {
    obs::LogHistogram h;
    h.Record(v);
    // Find the unique populated bucket and check [lo, hi) contains v.
    for (uint32_t i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
      if (h.bucket_count(i) == 0) continue;
      EXPECT_GE(v, obs::LogHistogram::BucketLo(i)) << v;
      EXPECT_LT(v, obs::LogHistogram::BucketHi(i)) << v;
    }
  }
}

// ---- Registry -------------------------------------------------------------

TEST(Registry, HandlesAreStableAcrossInserts) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("other" + std::to_string(i)).Add(1);
  }
  EXPECT_EQ(&reg.counter("first"), &c);
  c.Add(3);
  EXPECT_EQ(reg.FindCounter("first")->value, 3u);
  EXPECT_EQ(reg.FindCounter("never"), nullptr);
  EXPECT_EQ(reg.FindHistogram("never"), nullptr);
}

TEST(Registry, ValuesFlattensCountersAndGauges) {
  obs::Registry reg;
  reg.counter("a").Add(2);
  reg.gauge("b").Set(1.5);
  reg.histogram("h").Record(10);  // histograms are excluded from Values()
  auto values = reg.Values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values["a"], 2.0);
  EXPECT_DOUBLE_EQ(values["b"], 1.5);
}

TEST(Registry, MergeFromAddsAndMerges) {
  obs::Registry a, b;
  a.counter("hits").Add(1);
  b.counter("hits").Add(4);
  b.gauge("level").Set(2.0);
  b.histogram("lat").Record(100);
  a.MergeFrom(b);
  EXPECT_EQ(a.FindCounter("hits")->value, 5u);
  EXPECT_DOUBLE_EQ(a.Values()["level"], 2.0);
  ASSERT_NE(a.FindHistogram("lat"), nullptr);
  EXPECT_EQ(a.FindHistogram("lat")->count(), 1u);
}

TEST(Registry, JsonExportContainsAllSections) {
  obs::Registry reg;
  reg.counter("engine.drops").Add(7);
  reg.gauge("load").Set(0.5);
  reg.histogram("engine.phase.drop.ns").Record(1000);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.drops\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(Registry, PrometheusExportSanitizesNames) {
  obs::Registry reg;
  reg.counter("engine.drops.color3").Add(9);
  reg.histogram("phase.ns").Record(64);
  const std::string prom = reg.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE rrs_engine_drops_color3 counter"),
            std::string::npos);
  EXPECT_NE(prom.find("rrs_engine_drops_color3 9"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE rrs_phase_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("rrs_phase_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("rrs_phase_ns_count 1"), std::string::npos);
  // No unsanitized dots anywhere in metric names.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE", 0) == 0) continue;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_EQ(name.find('.'), std::string::npos) << line;
  }
}

TEST(Registry, PrometheusAdversarialNamesStayLegal) {
  obs::Registry reg;
  reg.counter("bad\"quote").Add(1);
  reg.counter("line\nbreak").Add(2);
  reg.counter("back\\slash").Add(3);
  reg.counter("").Add(4);  // empty raw name: the prefix carries the metric
  reg.gauge("späce and ütf8").Set(1.0);
  const std::string prom = reg.ToPrometheus();
  // Every non-comment line is `name[{labels}] value` with a legal name.
  std::istringstream lines(prom);
  std::string line;
  size_t sample_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# ", 0) == 0) continue;
    ASSERT_FALSE(line.empty());
    const std::string name = line.substr(0, line.find_first_of(" {"));
    ASSERT_FALSE(name.empty()) << line;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "illegal char in metric name: " << line;
    }
    ++sample_lines;
  }
  EXPECT_EQ(sample_lines, 5u);
  EXPECT_NE(prom.find("rrs_bad_quote 1"), std::string::npos);
  EXPECT_NE(prom.find("rrs_line_break 2"), std::string::npos);
  EXPECT_NE(prom.find("rrs_back_slash 3"), std::string::npos);
  EXPECT_NE(prom.find("\nrrs_ 4"), std::string::npos);
}

TEST(Registry, PrometheusMetadataEmittedOncePerSanitizedName) {
  obs::Registry reg;
  // Three raw names collapsing onto one sanitized name.
  reg.counter("a.b").Add(1);
  reg.counter("a-b").Add(2);
  reg.counter("a b").Add(3);
  reg.counter("distinct").Add(9);
  const std::string prom = reg.ToPrometheus();
  auto count_of = [&](const std::string& needle) {
    size_t n = 0;
    for (size_t at = prom.find(needle); at != std::string::npos;
         at = prom.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE rrs_a_b counter\n"), 1u);
  EXPECT_EQ(count_of("# HELP rrs_a_b "), 1u);
  EXPECT_EQ(count_of("# TYPE rrs_distinct counter\n"), 1u);
  EXPECT_EQ(count_of("# HELP rrs_distinct "), 1u);
  // All three collapsed samples still appear.
  EXPECT_NE(prom.find("rrs_a_b 1"), std::string::npos);
  EXPECT_NE(prom.find("rrs_a_b 2"), std::string::npos);
  EXPECT_NE(prom.find("rrs_a_b 3"), std::string::npos);
}

TEST(Registry, PrometheusEveryMetricHasHelpAndType) {
  obs::Registry reg;
  reg.counter("c").Add(1);
  reg.gauge("g").Set(2.5);
  reg.histogram("h").Record(10);
  const std::string prom = reg.ToPrometheus();
  for (const char* needle :
       {"# HELP rrs_c ", "# TYPE rrs_c counter", "# HELP rrs_g ",
        "# TYPE rrs_g gauge", "# HELP rrs_h ", "# TYPE rrs_h summary"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
}

TEST(PromHelpers, EscapeLabelHandlesSpecials) {
  EXPECT_EQ(obs::PromEscapeLabel("plain"), "plain");
  EXPECT_EQ(obs::PromEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PromEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PromEscapeLabel("a\nb"), "a\\nb");
  EXPECT_EQ(obs::PromEscapeLabel("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::PromEscapeLabel(""), "");
}

TEST(PromHelpers, MetricNameSanitizes) {
  EXPECT_EQ(obs::PromMetricName("rrs", "fleet.slo.misses"),
            "rrs_fleet_slo_misses");
  EXPECT_EQ(obs::PromMetricName("rrs", "ok_name:sub"), "rrs_ok_name:sub");
  EXPECT_EQ(obs::PromMetricName("rrs", "\"\n\\"), "rrs____");
  EXPECT_EQ(obs::PromMetricName("rrs", ""), "rrs_");
}

// ---- Scope generic absorption under contention (sanitize/tsan target) -----

TEST(ScopeConcurrency, AbsorbCountersAndHistogramFromEightThreads) {
  obs::Scope scope;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&scope, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::pair<std::string_view, uint64_t> deltas[] = {
            {"stress.shared", 1},
            {t % 2 == 0 ? "stress.even" : "stress.odd", 2},
        };
        scope.AbsorbCounters(deltas);
        obs::LogHistogram h;
        h.Record(static_cast<uint64_t>(t * kIters + i));
        scope.AbsorbHistogram("stress.hist", h);
        scope.AbsorbGauge("stress.gauge", static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(scope.registry().FindCounter("stress.shared")->value,
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(scope.registry().FindCounter("stress.even")->value,
            static_cast<uint64_t>(4 * kIters * 2));
  EXPECT_EQ(scope.registry().FindCounter("stress.odd")->value,
            static_cast<uint64_t>(4 * kIters * 2));
  ASSERT_NE(scope.registry().FindHistogram("stress.hist"), nullptr);
  EXPECT_EQ(scope.registry().FindHistogram("stress.hist")->count(),
            static_cast<uint64_t>(kThreads * kIters));
  // The gauge holds whichever thread wrote last — any valid thread index.
  const double gauge = scope.registry().Values()["stress.gauge"];
  EXPECT_GE(gauge, 0.0);
  EXPECT_LT(gauge, static_cast<double>(kThreads));
  // Locked render helpers see a consistent aggregate.
  const std::string prom = scope.RenderPrometheus();
  EXPECT_NE(prom.find("rrs_stress_shared 1600"), std::string::npos);
  EXPECT_NE(scope.RenderJson().find("\"stress.hist\""), std::string::npos);
}

// ---- Tracer ---------------------------------------------------------------

TEST(Tracer, RegisterEmitAndCount) {
  obs::Tracer tracer;
  obs::TraceTrack* t = tracer.RegisterTrack("engine/drop");
  EXPECT_EQ(tracer.num_tracks(), 1u);
  const uint64_t epoch = tracer.epoch_ns();
  tracer.Emit(t, "drop", epoch + 100, 50, /*arg=*/3);
  EXPECT_EQ(t->emitted(), 1u);
  EXPECT_EQ(t->dropped(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_EQ(t->name(), "engine/drop");
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  obs::Tracer::Options options;
  options.events_per_track = 4;
  obs::Tracer tracer(options);
  obs::TraceTrack* t = tracer.RegisterTrack("tiny");
  const uint64_t epoch = tracer.epoch_ns();
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(t, "e", epoch + i * 1000, 10, i);
  }
  EXPECT_EQ(t->emitted(), 10u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  // Export holds only the newest 4 events: rounds 6..9, oldest first.
  const std::string json = tracer.ToChromeJson();
  for (uint64_t round : {0ull, 5ull}) {
    EXPECT_EQ(json.find("{\"round\":" + std::to_string(round) + "}"),
              std::string::npos);
  }
  size_t prev = 0;
  for (uint64_t round : {6ull, 7ull, 8ull, 9ull}) {
    const size_t at =
        json.find("{\"round\":" + std::to_string(round) + "}");
    ASSERT_NE(at, std::string::npos) << round;
    EXPECT_GT(at, prev);  // oldest-first ordering in the export
    prev = at;
  }
}

TEST(Tracer, ThreadTracksAreDistinctPerThread) {
  obs::Tracer tracer;
  obs::TraceTrack* main_track = tracer.ThreadTrack();
  EXPECT_EQ(tracer.ThreadTrack(), main_track);  // cached
  obs::TraceTrack* other_track = nullptr;
  std::thread other([&] { other_track = tracer.ThreadTrack(); });
  other.join();
  ASSERT_NE(other_track, nullptr);
  EXPECT_NE(other_track, main_track);
  EXPECT_EQ(tracer.num_tracks(), 2u);
  EXPECT_NE(main_track->name(), other_track->name());
  EXPECT_EQ(main_track->name().rfind("thread-", 0), 0u);
}

// ---- Chrome trace_event export: golden round-trip -------------------------

// Minimal line-based parser for the exporter's one-event-per-line JSON.
struct ChromeEvent {
  std::string name;
  std::string ph;
  int tid = -1;
  double ts = -1;
  double dur = -1;
  long long round = -1;
  std::string thread_name;  // for "M" metadata events
};

std::string FindStringField(const std::string& line, const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  const size_t at = line.find(marker);
  if (at == std::string::npos) return "";
  const size_t start = at + marker.size();
  return line.substr(start, line.find('"', start) - start);
}

double FindNumberField(const std::string& line, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  const size_t at = line.find(marker);
  if (at == std::string::npos) return -1;
  return std::stod(line.substr(at + marker.size()));
}

std::vector<ChromeEvent> ParseChromeTrace(const std::string& json) {
  std::vector<ChromeEvent> events;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":") == std::string::npos) continue;
    ChromeEvent e;
    e.name = FindStringField(line, "name");
    e.ph = FindStringField(line, "ph");
    e.tid = static_cast<int>(FindNumberField(line, "tid"));
    e.ts = FindNumberField(line, "ts");
    e.dur = FindNumberField(line, "dur");
    e.round = static_cast<long long>(FindNumberField(line, "round"));
    if (e.ph == "M") {
      // {"name":"thread_name",...,"args":{"name":"<track>"}} — the second
      // "name" is the track's; grab the last occurrence.
      const size_t args = line.find("\"args\"");
      if (args != std::string::npos) {
        e.thread_name = FindStringField(line.substr(args), "name");
      }
    }
    events.push_back(e);
  }
  return events;
}

TEST(ChromeTrace, SyntheticRoundTripPreservesEventsAndTracks) {
  obs::Tracer tracer;
  obs::TraceTrack* drop = tracer.RegisterTrack("run0/engine/drop");
  obs::TraceTrack* exec = tracer.RegisterTrack("run0/engine/execute");
  const uint64_t epoch = tracer.epoch_ns();
  // Two rounds, phases strictly ordered and non-overlapping within a round.
  tracer.Emit(drop, "drop", epoch + 1000, 100, 0);
  tracer.Emit(exec, "execute", epoch + 1200, 300, 0);
  tracer.Emit(drop, "drop", epoch + 2000, 80, 1);
  tracer.Emit(exec, "execute", epoch + 2100, 250, 1);

  const auto events = ParseChromeTrace(tracer.ToChromeJson());

  std::map<std::string, int> track_tids;  // thread_name metadata -> tid
  std::vector<ChromeEvent> complete;
  for (const auto& e : events) {
    if (e.ph == "M" && e.name == "thread_name") {
      track_tids[e.thread_name] = e.tid;
    } else if (e.ph == "X") {
      complete.push_back(e);
    }
  }
  ASSERT_EQ(track_tids.size(), 2u);
  ASSERT_EQ(complete.size(), 4u);
  EXPECT_TRUE(track_tids.count("run0/engine/drop"));
  EXPECT_TRUE(track_tids.count("run0/engine/execute"));
  EXPECT_NE(track_tids["run0/engine/drop"], track_tids["run0/engine/execute"]);

  // Per-round nesting: drop completes before execute starts (ts in µs).
  for (long long round : {0, 1}) {
    const ChromeEvent* d = nullptr;
    const ChromeEvent* x = nullptr;
    for (const auto& e : complete) {
      if (e.round != round) continue;
      (e.name == "drop" ? d : x) = &e;
    }
    ASSERT_NE(d, nullptr);
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(d->tid, track_tids["run0/engine/drop"]);
    EXPECT_LE(d->ts + d->dur, x->ts + 1e-9);
  }
  // ts values are relative to the tracer epoch: first event at 1.0 µs.
  EXPECT_NEAR(complete[0].ts, 1.0, 1e-6);
  EXPECT_NEAR(complete[0].dur, 0.1, 1e-6);
}

#if RRS_OBS_LEVEL >= 1

TEST(ChromeTrace, EngineRunExportsOrderedPhaseTracks) {
  obs::Tracer tracer;
  obs::Scope::Options scope_options;
  scope_options.tracer = &tracer;
  obs::Scope scope(scope_options);

  Instance instance = ObsWorkload(17, /*rounds=*/64);
  DlruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  options.obs_scope = &scope;
  RunResult r = RunPolicy(instance, policy, options);

  const auto events = ParseChromeTrace(tracer.ToChromeJson());
  std::map<int, std::string> tid_names;
  std::map<long long, std::map<std::string, double>> phase_start_by_round;
  size_t complete_events = 0;
  for (const auto& e : events) {
    if (e.ph == "M" && e.name == "thread_name") tid_names[e.tid] = e.thread_name;
    if (e.ph != "X" || e.name == "recolor") continue;
    ++complete_events;
    phase_start_by_round[e.round][e.name] = e.ts;
  }
  // One track per engine phase, named run<id>/engine/<phase>.
  std::set<std::string> names;
  for (const auto& [tid, name] : tid_names) names.insert(name);
  for (const char* phase : {"drop", "arrival", "reconfig", "execute"}) {
    EXPECT_TRUE(names.count(std::string("run0/engine/") + phase)) << phase;
  }
  // With a tracer attached every round is sampled: 4 events per round.
  EXPECT_EQ(complete_events,
            static_cast<size_t>(r.rounds_simulated) * obs::kNumPhases);
  // Model phase order holds within every round.
  for (const auto& [round, starts] : phase_start_by_round) {
    ASSERT_EQ(starts.size(), 4u) << "round " << round;
    EXPECT_LE(starts.at("drop"), starts.at("arrival")) << round;
    EXPECT_LE(starts.at("arrival"), starts.at("reconfig")) << round;
    EXPECT_LE(starts.at("reconfig"), starts.at("execute")) << round;
  }
}

TEST(ChromeTrace, WriteChromeJsonRoundTripsThroughDisk) {
  obs::Tracer tracer;
  obs::TraceTrack* t = tracer.RegisterTrack("t0");
  tracer.Emit(t, "e", tracer.epoch_ns() + 10, 5, 0);
  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  ASSERT_TRUE(tracer.WriteChromeJson(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), tracer.ToChromeJson());
  std::remove(path.c_str());
}

// ---- Engine/scope wiring --------------------------------------------------

TEST(EngineTelemetry, MatchesCostAcrossAllEngines) {
  Instance instance = ObsWorkload(23);
  EngineOptions options;
  options.num_resources = 6;
  options.cost_model.delta = 3;
  obs::Scope scope;
  options.obs_scope = &scope;

  for (int which = 0; which < 2; ++which) {
    DlruEdfPolicy policy;
    RunResult r = which == 0 ? RunPolicy(instance, policy, options)
                             : RunPolicyReference(instance, policy, options);
    const obs::Telemetry& t = r.telemetry;
    EXPECT_EQ(t.arrived, r.arrived);
    EXPECT_EQ(t.executed, r.executed);
    EXPECT_EQ(t.drops, r.cost.drops);
    EXPECT_EQ(t.reconfigs, r.cost.reconfigurations);
    EXPECT_EQ(t.rounds, static_cast<uint64_t>(r.rounds_simulated));
    uint64_t drops_sum = 0;
    for (uint64_t d : t.drops_per_color) drops_sum += d;
    EXPECT_EQ(drops_sum, t.drops);
    uint64_t reconf_sum = 0;
    for (uint64_t c : t.reconfigs_per_color) reconf_sum += c;
    EXPECT_LE(reconf_sum, t.reconfigs);  // recolorings to black excluded
    EXPECT_GT(t.counters.size(), 0u);  // ExportMetrics snapshot present
  }
  // Both runs were absorbed into the shared scope.
  EXPECT_EQ(scope.runs_absorbed(), 2u);
  ASSERT_NE(scope.registry().FindCounter("engine.runs"), nullptr);
  EXPECT_EQ(scope.registry().FindCounter("engine.runs")->value, 2u);
}

TEST(EngineTelemetry, PhaseHistogramsPopulateAndSummarize) {
  Instance instance = ObsWorkload(31, /*rounds=*/512);
  DlruEdfPolicy policy;
  obs::Scope scope;  // metrics only: rounds are sampled every 32
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  options.obs_scope = &scope;
  RunResult r = RunPolicy(instance, policy, options);

  uint64_t total_samples = 0;
  for (int p = 0; p < obs::kNumPhases; ++p) {
    const obs::PhaseStat& stat = r.telemetry.phase[p];
    total_samples += stat.samples;
    if (stat.samples > 0) {
      EXPECT_LE(stat.p50_ns, stat.p99_ns + 1e-9) << obs::PhaseName(p);
      EXPECT_GE(static_cast<double>(stat.max_ns), stat.p99_ns * 0.875)
          << obs::PhaseName(p);
    }
  }
  // 512 rounds at sample shift 5 -> 16+ samples per phase.
  EXPECT_GE(total_samples, 4u * 16u);
  const obs::LogHistogram* hist =
      scope.registry().FindHistogram("engine.phase.drop.ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), r.telemetry.phase[obs::kPhaseDrop].samples);
  const std::string summary = r.telemetry.SummaryLine();
  EXPECT_NE(summary.find("drops="), std::string::npos);
  EXPECT_NE(summary.find("p50"), std::string::npos);
}

TEST(EngineTelemetry, GlobalScopeIsUsedWhenNoExplicitScope) {
  obs::Scope scope;
  obs::SetGlobalScope(&scope);
  Instance instance = ObsWorkload(5, /*rounds=*/64);
  DlruEdfPolicy policy;
  EngineOptions options;  // no obs_scope set
  options.num_resources = 4;
  RunPolicy(instance, policy, options);
  obs::SetGlobalScope(nullptr);
  EXPECT_EQ(scope.runs_absorbed(), 1u);
  // Runs after the global scope is cleared do not touch it.
  RunPolicy(instance, policy, options);
  EXPECT_EQ(scope.runs_absorbed(), 1u);
}

TEST(StreamTelemetry, SnapshotMatchesTotalsAndAbsorbsOnce) {
  obs::Scope scope;
  DlruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  options.obs_scope = &scope;
  StreamEngine engine({2, 4, 8}, policy, options);
  const std::vector<std::pair<ColorId, uint64_t>> burst = {
      {0, 3}, {1, 2}, {2, 1}};
  for (int i = 0; i < 32; ++i) engine.Step(burst);
  engine.Finish();

  const obs::Telemetry t = engine.SnapshotTelemetry();
  EXPECT_EQ(t.arrived, engine.arrived());
  EXPECT_EQ(t.executed, engine.executed());
  EXPECT_EQ(t.drops, engine.cost().drops);
  EXPECT_EQ(t.reconfigs, engine.cost().reconfigurations);
  EXPECT_EQ(t.rounds, static_cast<uint64_t>(engine.current_round()));
  uint64_t drops_sum = 0;
  for (uint64_t d : t.drops_per_color) drops_sum += d;
  EXPECT_EQ(drops_sum, t.drops);

  EXPECT_EQ(scope.runs_absorbed(), 1u);
  engine.AbsorbIntoScope();  // idempotent
  EXPECT_EQ(scope.runs_absorbed(), 1u);
  EXPECT_EQ(scope.registry().FindCounter("engine.arrived")->value,
            engine.arrived());
}

TEST(RunnerTelemetry, PolicyReportCarriesSnapshot) {
  Instance instance = ObsWorkload(3, /*rounds=*/64);
  DlruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 4;
  analysis::PolicyReport report =
      analysis::RunAndReport(instance, policy, options);
  EXPECT_EQ(report.telemetry.drops, report.cost.drops);
  EXPECT_EQ(report.telemetry.executed, report.executed);
  EXPECT_TRUE(report.telemetry.counters.count("num_epochs"));
}

// ---- Concurrency: shared scope + per-thread tracks (sanitizer target) -----

TEST(ScopeConcurrency, ParallelRunsAbsorbWithoutLoss) {
  obs::Tracer tracer;
  obs::Scope::Options scope_options;
  scope_options.tracer = &tracer;
  obs::Scope scope(scope_options);

  constexpr int kRuns = 24;
  std::vector<uint64_t> drops(kRuns, 0);
  ParallelFor(GlobalThreadPool(), 0, kRuns, [&](int64_t i) {
    obs::Span span(&tracer, tracer.ThreadTrack(), "obs-test-run",
                   static_cast<uint64_t>(i));
    Instance instance = ObsWorkload(100 + static_cast<uint64_t>(i),
                                    /*rounds=*/96);
    DlruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model.delta = 2;
    options.obs_scope = &scope;
    RunResult r = RunPolicy(instance, policy, options);
    drops[static_cast<size_t>(i)] = r.cost.drops;
  });

  EXPECT_EQ(scope.runs_absorbed(), static_cast<uint64_t>(kRuns));
  uint64_t total_drops = 0;
  for (uint64_t d : drops) total_drops += d;
  ASSERT_NE(scope.registry().FindCounter("engine.drops"), nullptr);
  EXPECT_EQ(scope.registry().FindCounter("engine.drops")->value, total_drops);
  // Every run registered its 4 phase tracks; workers added thread tracks.
  EXPECT_GE(tracer.num_tracks(), static_cast<size_t>(kRuns) * 4);
  const std::string summary = scope.SummaryLine();
  EXPECT_NE(summary.find("runs=24"), std::string::npos);
}

TEST(SweepTelemetry, ScopeAggregatesAcrossSweepRuns) {
  analysis::SweepConfig config;
  config.ns = {4, 8};
  config.deltas = {2};
  config.seeds = {1, 2};
  config.use_pipeline = false;
  obs::Tracer tracer;
  obs::Scope::Options scope_options;
  scope_options.tracer = &tracer;
  obs::Scope scope(scope_options);
  config.scope = &scope;
  auto factory = [](uint64_t seed) { return ObsWorkload(seed, 64); };
  auto cells = analysis::RunCostSweep(factory, config);
  ASSERT_EQ(cells.size(), 2u);
  // 2 cells x 2 seeds = 4 engine runs absorbed.
  EXPECT_EQ(scope.runs_absorbed(), 4u);
  // Sweep tasks trace onto per-thread tracks.
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("sweep.run"), std::string::npos);
  EXPECT_NE(json.find("thread-"), std::string::npos);
}

#endif  // RRS_OBS_LEVEL >= 1

// ---- TimelinePolicy CSV export round-trip ---------------------------------

TEST(TimelineCsv, ExportRoundTripsAndSumsMatchRunResult) {
  Instance instance = ObsWorkload(41, /*rounds=*/128);
  DlruEdfPolicy inner;
  analysis::TimelinePolicy timeline(inner);
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(instance, timeline, options);

  const std::string path = ::testing::TempDir() + "obs_timeline.csv";
  ASSERT_TRUE(timeline.ToTable().WriteCsv(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  // Column order is part of the export contract.
  EXPECT_EQ(header,
            "round,arrivals,drops,reconfigs,executed,backlog,utilization");

  uint64_t arrivals = 0, drops = 0, reconfigs = 0, executed = 0;
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string field;
    std::vector<std::string> row;
    while (std::getline(fields, field, ',')) row.push_back(field);
    ASSERT_EQ(row.size(), 7u) << line;
    arrivals += std::stoull(row[1]);
    drops += std::stoull(row[2]);
    reconfigs += std::stoull(row[3]);
    executed += std::stoull(row[4]);
    ++rows;
  }
  std::remove(path.c_str());

  EXPECT_GT(rows, 0u);
  EXPECT_EQ(arrivals, r.arrived);
  EXPECT_EQ(drops, r.cost.drops);
  EXPECT_EQ(reconfigs, r.cost.reconfigurations);
  EXPECT_EQ(executed, r.executed);
}

// ---- Level-0 contract -----------------------------------------------------

TEST(ObsLevel, PolicyCountersSurviveAtEveryLevel) {
  // The ExportMetrics -> telemetry.counters snapshot is end-of-run work and
  // runs regardless of RRS_OBS_LEVEL, so policies keep their counters even
  // with instrumentation compiled out.
  Instance instance = ObsWorkload(2, /*rounds=*/64);
  DlruEdfPolicy inner;
  InvariantCheckingPolicy checked(inner, /*lru_slots_den=*/4);
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(instance, checked, options);
  ASSERT_TRUE(r.telemetry.counters.count("invariant_checks"));
  EXPECT_EQ(r.telemetry.counters["invariant_checks"],
            static_cast<double>(checked.checks_performed()));
#if RRS_OBS_LEVEL == 0
  // Compiled out: no telemetry, no scope absorption, but the run still works.
  obs::Scope scope;
  options.obs_scope = &scope;
  RunPolicy(instance, checked, options);
  EXPECT_EQ(scope.runs_absorbed(), 0u);
#endif
}

}  // namespace
}  // namespace rrs
