// Differential suite for the exact offline solver rewrite: the packed
// branch-and-bound search (offline/optimal) against the two retained
// independent implementations — the exhaustive brute force (no shared
// representation) and the pre-rewrite layered DP (offline/dp_reference) — on
// hundreds of tiny random instances, plus the properties the rewrite added:
// bit-identical results across thread counts, certified brackets on budget
// exhaustion, admissible-heuristic sanity, and obs counter emission.
//
// Also built under ASan+UBSan as rrs_offline_differential_sanitize_test
// (ctest -L sanitize): the packed arenas, open-addressing tables, and
// parallel shard merge are exactly the code worth running instrumented.
#include <gtest/gtest.h>

#include "analysis/ratio.h"
#include "obs/scope.h"
#include "offline/bruteforce.h"
#include "offline/clairvoyant.h"
#include "offline/dp_reference.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace rrs {
namespace {

// Tiny random instance: 1-3 colors, wide delay palette (D = 1, non-powers-
// of-two), optional drop weights, jobs scattered over a short horizon. Kept
// small enough that SolveBruteForce finishes within its node budget on most
// draws.
Instance TinyInstance(Rng& rng, bool weighted) {
  InstanceBuilder b;
  const size_t colors = 1 + rng.NextBounded(3);
  static const Round kDelays[] = {1, 2, 3, 4, 5, 8};
  for (size_t c = 0; c < colors; ++c) {
    Round d = kDelays[rng.NextBounded(sizeof(kDelays) / sizeof(Round))];
    uint64_t w = weighted ? 1 + rng.NextBounded(4) : 1;
    b.AddColor(d, "", w);
  }
  const uint64_t jobs = 1 + rng.NextBounded(10);
  for (uint64_t j = 0; j < jobs; ++j) {
    b.AddJob(static_cast<ColorId>(rng.NextBounded(colors)),
             static_cast<Round>(rng.NextBounded(7)));
  }
  return b.Build();
}

offline::OptimalOptions BaseOptions(uint32_t m, uint64_t delta) {
  offline::OptimalOptions options;
  options.num_resources = m;
  options.cost_model.delta = delta;
  return options;
}

TEST(OfflineDifferential, ThreeWayAgreementOnTinyInstances) {
  // ~500 draws; every draw is checked against the reference DP, and against
  // brute force whenever its node budget suffices.
  Rng rng(20240601);
  int bf_checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const bool weighted = trial % 3 == 0;
    Instance inst = TinyInstance(rng, weighted);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 4;

    auto result = offline::SolveOptimal(inst, BaseOptions(m, delta));
    ASSERT_TRUE(result.exact) << "trial " << trial;
    EXPECT_EQ(result.lower_bound, result.total_cost);
    EXPECT_EQ(result.upper_bound, result.total_cost);

    offline::DpReferenceOptions dp_options;
    dp_options.num_resources = m;
    dp_options.cost_model.delta = delta;
    auto dp = offline::SolveLayeredDpReference(inst, dp_options);
    ASSERT_TRUE(dp.has_value()) << "trial " << trial;
    EXPECT_EQ(result.total_cost, dp->total_cost)
        << "trial " << trial << " m=" << m << " delta=" << delta
        << (weighted ? " weighted" : "") << "\n"
        << inst.Summary();

    offline::BruteForceOptions bf_options;
    bf_options.num_resources = m;
    bf_options.cost_model.delta = delta;
    bf_options.max_nodes = 2'000'000;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    if (!bf.has_value()) continue;  // node budget; skip
    EXPECT_EQ(result.total_cost, *bf) << "trial " << trial;
    ++bf_checked;
  }
  EXPECT_GE(bf_checked, 250);
}

TEST(OfflineDifferential, ReconstructionValidatesAtExactCost) {
  Rng rng(20240602);
  for (int trial = 0; trial < 120; ++trial) {
    Instance inst = TinyInstance(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    const uint64_t delta = 1 + trial % 3;

    auto options = BaseOptions(m, delta);
    options.reconstruct_schedule = true;
    auto result = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(result.exact && result.schedule.has_value())
        << "trial " << trial;
    auto v = result.schedule->Validate(inst);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    // The independent validator's recomputed cost must equal the search's.
    EXPECT_EQ(v.cost.total(CostModel{delta}), result.total_cost)
        << "trial " << trial << "\n"
        << inst.Summary();
  }
}

TEST(OfflineDifferential, BitIdenticalAcrossThreadCounts) {
  // The whole result — costs, bracket, every counter, and the reconstructed
  // schedule — must be identical for pool == nullptr and pools of 1/2/8
  // threads. This pins the design invariants: fixed shard count, canonical
  // layer order, (cost, parent) total order in merges, layer-granular
  // budget checks.
  ThreadPool pool1(1), pool2(2), pool8(8);
  ThreadPool* pools[] = {nullptr, &pool1, &pool2, &pool8};

  Rng rng(20240603);
  for (int trial = 0; trial < 60; ++trial) {
    Instance inst = TinyInstance(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    auto options = BaseOptions(m, 2);
    options.reconstruct_schedule = true;
    // Half the trials exhaust a small budget, so the bracket path is pinned
    // across thread counts too (frontier min-reduction).
    if (trial % 2 == 1) options.max_states = 8;

    options.pool = nullptr;
    auto base = offline::SolveOptimal(inst, options);
    for (ThreadPool* pool : pools) {
      options.pool = pool;
      auto other = offline::SolveOptimal(inst, options);
      EXPECT_EQ(base.exact, other.exact) << "trial " << trial;
      EXPECT_EQ(base.total_cost, other.total_cost) << "trial " << trial;
      EXPECT_EQ(base.lower_bound, other.lower_bound) << "trial " << trial;
      EXPECT_EQ(base.upper_bound, other.upper_bound) << "trial " << trial;
      EXPECT_EQ(base.states_expanded, other.states_expanded)
          << "trial " << trial;
      EXPECT_EQ(base.states_generated, other.states_generated)
          << "trial " << trial;
      EXPECT_EQ(base.pruned_bound, other.pruned_bound) << "trial " << trial;
      EXPECT_EQ(base.pruned_dominated, other.pruned_dominated)
          << "trial " << trial;
      EXPECT_EQ(base.max_layer_width, other.max_layer_width)
          << "trial " << trial;
      ASSERT_EQ(base.schedule.has_value(), other.schedule.has_value());
      if (base.schedule.has_value()) {
        // Schedules are rebuilt by a deterministic replay of the backtracked
        // configuration sequence; identical parents => identical schedules.
        EXPECT_EQ(base.schedule->executions().size(),
                  other.schedule->executions().size());
        EXPECT_EQ(base.schedule->reconfigs().size(),
                  other.schedule->reconfigs().size());
      }
    }
  }
}

TEST(OfflineDifferential, PruningAblationsPreserveTheOptimum) {
  // Exactness must not depend on either pruning rule: with bound pruning,
  // dominance, both, or neither, the optimum is the same (the prunes only
  // shrink the explored frontier).
  Rng rng(20240604);
  for (int trial = 0; trial < 80; ++trial) {
    Instance inst = TinyInstance(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    auto options = BaseOptions(m, 1 + trial % 3);

    uint64_t costs[4];
    int i = 0;
    for (bool bound : {false, true}) {
      for (bool dominance : {false, true}) {
        options.prune_bound = bound;
        options.prune_dominance = dominance;
        auto r = offline::SolveOptimal(inst, options);
        ASSERT_TRUE(r.exact) << "trial " << trial;
        costs[i++] = r.total_cost;
      }
    }
    EXPECT_EQ(costs[0], costs[1]) << "trial " << trial;
    EXPECT_EQ(costs[0], costs[2]) << "trial " << trial;
    EXPECT_EQ(costs[0], costs[3]) << "trial " << trial;
  }
}

TEST(OfflineDifferential, ExhaustionBracketsTheTrueOptimum) {
  // Solve exactly with a big budget, then squeeze the budget until the
  // search exhausts: the returned bracket must contain the true optimum.
  Rng rng(20240605);
  int exhausted_checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Instance inst = TinyInstance(rng, trial % 2 == 0);
    const uint32_t m = 1 + static_cast<uint32_t>(trial % 2);
    auto options = BaseOptions(m, 2);

    auto exact = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(exact.exact);

    options.max_states = 1 + trial % 6;
    auto bracket = offline::SolveOptimal(inst, options);
    if (bracket.exact) continue;  // tiny instance finished anyway
    EXPECT_LE(bracket.lower_bound, exact.total_cost) << "trial " << trial;
    EXPECT_GE(bracket.upper_bound, exact.total_cost) << "trial " << trial;
    EXPECT_EQ(bracket.total_cost, bracket.upper_bound);
    EXPECT_FALSE(bracket.schedule.has_value());
    ++exhausted_checked;
  }
  EXPECT_GE(exhausted_checked, 30);
}

TEST(OfflineDifferential, MeasureRatioSurfacesBrackets) {
  // analysis::MeasureRatio must degrade to the solver's bracket instead of
  // failing, and collapse to the exact ratio when the budget suffices.
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  b.AddJobs(c0, 4, 4);
  Instance inst = b.Build();
  CostModel model{2};

  auto exact = analysis::MeasureRatio(inst, /*online_cost=*/20, 2, model);
  ASSERT_TRUE(exact.exact);
  EXPECT_EQ(exact.opt_lower, exact.opt_upper);
  EXPECT_DOUBLE_EQ(exact.ratio_lower, exact.ratio_upper);
  EXPECT_GT(exact.states_expanded, 0u);

  auto squeezed =
      analysis::MeasureRatio(inst, /*online_cost=*/20, 2, model,
                             /*max_states=*/1);
  ASSERT_FALSE(squeezed.exact);
  EXPECT_LE(squeezed.opt_lower, exact.opt_upper);
  EXPECT_GE(squeezed.opt_upper, exact.opt_upper);
  EXPECT_LE(squeezed.ratio_lower, squeezed.ratio_upper);
  // And MeasureExactRatio keeps its historical nullopt contract.
  EXPECT_FALSE(analysis::MeasureExactRatio(inst, 20, 2, model, 1).has_value());
}

TEST(OfflineDifferential, HeuristicLegMatchesHallBound) {
  // CapacityRelaxedDrops on hand-computed profiles (rel, count):
  // 3 jobs due in 1 round, capacity 1 -> 2 forced drops.
  const uint32_t a[] = {1, 3};
  EXPECT_EQ(offline::CapacityRelaxedDrops(a, 1), 2u);
  EXPECT_EQ(offline::CapacityRelaxedDrops(a, 3), 0u);
  // Prefix binding beats total: (1,2),(5,1) with capacity 1 -> the rel-1
  // prefix forces 1 drop even though 3 jobs fit in 5 rounds overall.
  const uint32_t b[] = {1, 2, 5, 1};
  EXPECT_EQ(offline::CapacityRelaxedDrops(b, 1), 1u);
  // Later prefix binds: (1,1),(2,4) -> cum 5 over 2 rounds, capacity 2.
  const uint32_t c[] = {1, 1, 2, 4};
  EXPECT_EQ(offline::CapacityRelaxedDrops(c, 2), 1u);
  EXPECT_EQ(offline::CapacityRelaxedDrops({}, 1), 0u);
}

TEST(OfflineDifferential, SolverEmitsObsCounters) {
  obs::Scope scope;
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  Instance inst = b.Build();

  auto options = BaseOptions(2, 1);
  options.obs_scope = &scope;
  auto result = offline::SolveOptimal(inst, options);
  ASSERT_TRUE(result.exact);

  const auto values = scope.registry().Values();
  auto value_of = [&](const char* name) {
    auto it = values.find(name);
    return it == values.end() ? uint64_t{0}
                              : static_cast<uint64_t>(it->second);
  };
  EXPECT_EQ(value_of("offline.solves"), 1u);
  EXPECT_EQ(value_of("offline.solves_exact"), 1u);
  EXPECT_EQ(value_of("offline.states_expanded"), result.states_expanded);
  EXPECT_EQ(value_of("offline.states_generated"), result.states_generated);
  EXPECT_EQ(value_of("offline.pruned_bound"), result.pruned_bound);
  const obs::LogHistogram* widths =
      scope.registry().FindHistogram("offline.layer_width");
  ASSERT_NE(widths, nullptr);
  EXPECT_GT(widths->count(), 0u);
  EXPECT_EQ(widths->max(), result.max_layer_width);
}

TEST(OfflineDifferential, RaisedEnvelopeSolvesM4SixColorsHorizon128) {
  // The acceptance instance for the rewrite: m = 4 resources, 6 colors,
  // horizon 128, solved *exactly* within the default 5M-state budget. The
  // load is moderate (the envelope claim, not a stress test) but every
  // round has work and all six colors recur.
  InstanceBuilder b;
  ColorId colors[6];
  static const Round kDelays[6] = {2, 4, 4, 8, 16, 32};
  for (int c = 0; c < 6; ++c) {
    colors[c] = b.AddColor(kDelays[c], "", 1 + c % 2);
  }
  Rng rng(97);
  for (Round t = 0; t + 4 <= 128; t += 4) {
    // ~3 jobs per 4-round block over rotating color pairs.
    b.AddJob(colors[rng.NextBounded(6)], t);
    b.AddJob(colors[rng.NextBounded(6)], t + rng.NextBounded(4));
    if (t % 8 == 0) b.AddJob(colors[rng.NextBounded(6)], t + rng.NextBounded(4));
  }
  Instance inst = b.Build();
  ASSERT_GE(inst.horizon(), 128u);

  auto options = BaseOptions(4, 2);
  auto result = offline::SolveOptimal(inst, options);
  EXPECT_TRUE(result.exact) << "expanded " << result.states_expanded
                            << ", widest layer " << result.max_layer_width;
  EXPECT_LE(result.states_expanded, options.max_states);
  // The reference DP exhausts at the state budget the packed solver
  // actually used: bound + dominance pruning buy >3x fewer expansions on
  // this instance (and ~8x wall time; the full-budget DP run lives in
  // bench_offline_solver, not here, to keep the test fast).
  offline::DpReferenceOptions dp_options;
  dp_options.num_resources = 4;
  dp_options.cost_model.delta = 2;
  dp_options.max_states = result.states_expanded;
  EXPECT_FALSE(offline::SolveLayeredDpReference(inst, dp_options).has_value());
}

}  // namespace
}  // namespace rrs
