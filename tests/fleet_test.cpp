// Session-reuse differential suite: the core/session.h contract says a run
// through a reused (Reset) session or a pooled fleet session is
// bit-identical to a run through a freshly constructed engine. This file
// pins that, for every registry policy, for the FleetRunner at 0/1/2/8
// threads, for the pipeline session, and for the OnlineSolver.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "fleet/fleet_runner.h"
#include "parallel/thread_pool.h"
#include "reduce/distribute.h"
#include "reduce/online.h"
#include "reduce/pipeline.h"
#include "reduce/varbatch.h"
#include "sched/dlru_edf.h"
#include "sched/registry.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance FleetTenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

// Bit-identical RunResult comparison over everything deterministic (phase
// wall times excluded).
void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  EXPECT_EQ(got.cost.drops, want.cost.drops) << label;
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  EXPECT_EQ(got.drops_per_color, want.drops_per_color) << label;
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

// ---- One session object, many tenants, every registry policy -------------

TEST(SessionReuse, EveryRegistryPolicyIsLeakFreeAcrossResets) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    tenants.push_back(FleetTenant(seed));
  }

  for (const std::string& name : PolicyNames()) {
    // Oracle: fresh engine + fresh policy per tenant.
    std::vector<RunResult> fresh;
    for (size_t i = 0; i < tenants.size(); ++i) {
      EngineOptions options;
      options.num_resources = 8;
      options.cost_model.delta = 2 + static_cast<uint64_t>(i % 3);
      auto policy = MakePolicy(name);
      ASSERT_NE(policy, nullptr) << name;
      fresh.push_back(RunPolicy(tenants[i], *policy, options));
    }

    // One engine session + one policy object reused across all tenants.
    Engine engine;
    auto policy = MakePolicy(name);
    for (size_t i = 0; i < tenants.size(); ++i) {
      EngineOptions options;
      options.num_resources = 8;
      options.cost_model.delta = 2 + static_cast<uint64_t>(i % 3);
      engine.Reset(tenants[i], options);
      RunResult reused = engine.Run(*policy);
      ExpectSameRunResult(reused, fresh[i],
                          name + " tenant " + std::to_string(i));
    }
  }
}

TEST(SessionReuse, ShapeCanShrinkAndGrowBetweenTenants) {
  // Alternate between wide and narrow shapes so the session arena both
  // grows and serves smaller tenants from oversized buffers.
  std::vector<Instance> tenants = {FleetTenant(11, 32), FleetTenant(12, 256),
                                   FleetTenant(13, 16), FleetTenant(14, 128)};
  Engine engine;
  DlruEdfPolicy reused_policy;
  for (size_t i = 0; i < tenants.size(); ++i) {
    EngineOptions options;
    options.num_resources = 4 + 4 * static_cast<uint32_t>(i % 2);
    options.cost_model.delta = 3;
    DlruEdfPolicy fresh_policy;
    RunResult fresh = RunPolicy(tenants[i], fresh_policy, options);
    engine.Reset(tenants[i], options);
    ExpectSameRunResult(engine.Run(reused_policy), fresh,
                        "shape tenant " + std::to_string(i));
  }
}

// ---- FleetRunner differential, 0/1/2/8 threads ---------------------------

class FleetDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(FleetDifferential, ReplayFleetMatchesFreshEngines) {
  const size_t threads = GetParam();
  constexpr size_t kTenants = 24;

  std::vector<Instance> tenants;
  std::vector<fleet::FleetJob> jobs;
  std::vector<RunResult> fresh;
  for (size_t i = 0; i < kTenants; ++i) {
    tenants.push_back(FleetTenant(100 + i));
  }
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &tenants[i];
    job.options.num_resources = i % 2 == 0 ? 8 : 4;
    job.options.cost_model.delta = 2 + static_cast<uint64_t>(i % 3);
    jobs.push_back(job);

    DlruEdfPolicy policy;
    fresh.push_back(RunPolicy(tenants[i], policy, jobs[i].options));
  }

  std::unique_ptr<ThreadPool> pool;
  fleet::FleetOptions options;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    options.pool = pool.get();
  }
  options.num_shards = 3;        // deliberately != thread count
  options.rounds_per_tick = 16;  // force multi-tick interleaving
  fleet::FleetRunner runner(std::move(options));

  std::vector<RunResult> got = runner.RunAll(jobs);
  ASSERT_EQ(got.size(), kTenants);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(got[i], fresh[i],
                        "threads=" + std::to_string(threads) + " tenant " +
                            std::to_string(i));
  }

  const fleet::FleetStats stats = runner.stats();
  EXPECT_EQ(stats.sessions_completed, kTenants);
  EXPECT_GT(stats.ticks, 0u);

  // A second fleet through the same runner starts from warm pools and is
  // still bit-identical.
  std::vector<RunResult> again = runner.RunAll(jobs);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(again[i], fresh[i],
                        "rerun tenant " + std::to_string(i));
  }
  // The warm rerun served every tenant from recycled sessions: no pool
  // growth beyond the first fleet's high-water mark.
  const fleet::FleetStats warm = runner.stats();
  EXPECT_GT(warm.sessions_recycled, 0u);
  EXPECT_EQ(warm.sessions_created, stats.sessions_created);
}

TEST_P(FleetDifferential, PipelineFleetMatchesSolveOnline) {
  const size_t threads = GetParam();
  constexpr size_t kTenants = 8;

  std::vector<Instance> tenants;
  for (size_t i = 0; i < kTenants; ++i) {
    tenants.push_back(FleetTenant(200 + i, 64));
  }

  std::vector<fleet::FleetJob> jobs;
  std::vector<CostBreakdown> fresh_cost;
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &tenants[i];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 3;
    job.kind = fleet::FleetJob::Kind::kPipeline;
    jobs.push_back(job);
    fresh_cost.push_back(
        reduce::SolveOnline(tenants[i], job.options).cost());
  }

  std::unique_ptr<ThreadPool> pool;
  fleet::FleetOptions options;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    options.pool = pool.get();
  }
  fleet::FleetRunner runner(std::move(options));
  std::vector<RunResult> got = runner.RunAll(jobs);
  for (size_t i = 0; i < kTenants; ++i) {
    EXPECT_EQ(got[i].cost.reconfigurations, fresh_cost[i].reconfigurations)
        << i;
    EXPECT_EQ(got[i].cost.drops, fresh_cost[i].drops) << i;
    EXPECT_EQ(got[i].arrived, tenants[i].num_jobs()) << i;
    EXPECT_EQ(got[i].executed, got[i].arrived - got[i].cost.drops) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, FleetDifferential,
                         ::testing::Values(0u, 1u, 2u, 8u));

TEST(FleetRunner, LiveSessionCapBoundsConcurrency) {
  constexpr size_t kTenants = 12;
  std::vector<Instance> tenants;
  std::vector<fleet::FleetJob> jobs;
  for (size_t i = 0; i < kTenants; ++i) {
    tenants.push_back(FleetTenant(300 + i, 48));
  }
  std::vector<RunResult> fresh;
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &tenants[i];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 2;
    jobs.push_back(job);
    DlruEdfPolicy policy;
    fresh.push_back(RunPolicy(tenants[i], policy, job.options));
  }

  fleet::FleetOptions options;
  options.num_shards = 1;
  options.max_live_sessions = 3;
  options.rounds_per_tick = 8;
  fleet::FleetRunner runner(std::move(options));
  std::vector<RunResult> got = runner.RunAll(jobs);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(got[i], fresh[i], "capped tenant " + std::to_string(i));
  }
  const fleet::FleetStats stats = runner.stats();
  EXPECT_LE(stats.peak_live_sessions, 3u);
  EXPECT_EQ(stats.sessions_completed, kTenants);
  // The pool never needs more sessions than the live cap.
  EXPECT_LE(stats.sessions_created, 3u);
}

// ---- Pipeline session reuse ----------------------------------------------

TEST(PipelineSession, ReusedSessionMatchesFreeFunction) {
  reduce::PipelineSession session;
  for (uint64_t seed = 31; seed <= 35; ++seed) {
    Instance instance = FleetTenant(seed, 64);
    EngineOptions options;
    options.num_resources = 8;
    options.cost_model.delta = 3;
    reduce::PipelineResult fresh = reduce::SolveOnline(instance, options);
    const reduce::PipelineResult& reused = session.SolveOnline(instance,
                                                               options);
    EXPECT_EQ(reused.cost().reconfigurations, fresh.cost().reconfigurations)
        << seed;
    EXPECT_EQ(reused.cost().drops, fresh.cost().drops) << seed;
    EXPECT_EQ(reused.validation.executed, fresh.validation.executed) << seed;
    ExpectSameRunResult(reused.inner, fresh.inner,
                        "pipeline seed " + std::to_string(seed));
  }
  EXPECT_EQ(session.tenants_served(), 5u);
}

// ---- OnlineSolver reset-and-reuse ----------------------------------------

TEST(OnlineSolverSession, ResetAndReuseMatchesSolveOnline) {
  Instance instance = FleetTenant(41, 64);
  ASSERT_GT(instance.num_jobs(), 0u);

  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  // Ground truth: the offline pipeline.
  auto pipeline = reduce::SolveOnline(instance, options);

  // Matching subcolor budgets so inner numbering is identical.
  auto varbatch = reduce::VarBatchInstance(instance);
  auto distribute = reduce::DistributeInstance(varbatch.transformed);
  std::vector<reduce::OnlineSolver::ColorSpec> colors;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    colors.push_back(
        {instance.delay_bound(c), distribute.subcolors_per_color[c]});
  }

  reduce::OnlineSolver solver(colors, options);
  auto drive = [&](const Instance& inst) {
    std::vector<std::pair<ColorId, uint64_t>> arrivals;
    for (Round k = 0; k < inst.num_request_rounds(); ++k) {
      arrivals.clear();
      auto jobs = inst.jobs_in_round(k);
      size_t i = 0;
      while (i < jobs.size()) {
        ColorId c = jobs[i].color;
        uint64_t count = 0;
        while (i < jobs.size() && jobs[i].color == c) {
          ++count;
          ++i;
        }
        arrivals.emplace_back(c, count);
      }
      solver.Step(arrivals);
    }
    solver.Finish();
  };

  // Tenant 1: fresh solver equals the pipeline.
  drive(instance);
  EXPECT_EQ(solver.cost().drops, pipeline.cost().drops);
  EXPECT_EQ(solver.cost().reconfigurations,
            pipeline.cost().reconfigurations);
  const uint64_t executed1 = solver.executed();

  // Tenant 2: an empty stream (exercises state clearing on a served solver).
  solver.Reset();
  EXPECT_EQ(solver.current_round(), 0);
  for (int k = 0; k < 8; ++k) solver.Step({});
  solver.Finish();
  EXPECT_EQ(solver.cost().total(options.cost_model), 0u);

  // Tenant 3: the original workload again through the same solver object —
  // identical costs to the fresh run, so nothing leaked through Reset.
  solver.Reset();
  drive(instance);
  EXPECT_EQ(solver.cost().drops, pipeline.cost().drops);
  EXPECT_EQ(solver.cost().reconfigurations,
            pipeline.cost().reconfigurations);
  EXPECT_EQ(solver.executed(), executed1);
  EXPECT_EQ(solver.arrived(), instance.num_jobs());
}

}  // namespace
}  // namespace rrs
