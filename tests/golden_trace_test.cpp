// Golden-trace regression suite: SHA-256 fingerprints of per-round
// execution timelines for the canned workload/scenarios.cpp instances,
// across every registry policy.
//
// Each (scenario, policy) run is stepped one round at a time and the
// mid-run accumulators (round, reconfigurations, drops, weighted drops,
// executions) are folded into a SHA-256 digest, followed by the final
// per-color drop vector. The digests are pinned in
// tests/golden/golden_traces.txt: any unintended change to engine phase
// order, policy decisions, cost accounting, or scenario generation shows up
// as a digest mismatch naming the exact (scenario, policy) pair.
//
// After an *intentional* semantics change, regenerate with:
//
//   ./rrs_golden_trace_test --regen-golden
//
// which rewrites the golden file in the source tree (path baked in via
// RRS_GOLDEN_FILE) and prints the new digests for review.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/registry.h"
#include "util/check.h"
#include "util/sha256.h"
#include "workload/scenarios.h"

namespace rrs {
namespace {

std::vector<std::pair<std::string, Instance>> GoldenScenarios() {
  std::vector<std::pair<std::string, Instance>> scenarios;

  workload::RouterOptions router;
  router.rounds = 192;
  router.period = 64;
  router.seed = 7;
  scenarios.emplace_back(
      "router",
      workload::MakeRouterScenario(workload::DefaultRouterServices(), router));

  workload::DatacenterOptions datacenter;
  datacenter.rounds = 384;
  datacenter.phase_length = 128;
  datacenter.seed = 7;
  scenarios.emplace_back("datacenter",
                         workload::MakeDatacenterScenario(datacenter));
  return scenarios;
}

// Fingerprints the full per-round timeline of one policy on one instance.
std::string TraceDigest(const Instance& instance, const std::string& policy) {
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;

  auto p = MakePolicy(policy);
  RRS_CHECK(p != nullptr) << policy;
  Engine engine(instance, options);
  engine.BeginRun(*p);

  Sha256 hash;
  bool more = true;
  while (more) {
    more = engine.StepRounds(1);
    hash.UpdateU64(static_cast<uint64_t>(engine.next_round()));
    const CostBreakdown& cost = engine.run_cost();
    hash.UpdateU64(cost.reconfigurations);
    hash.UpdateU64(cost.drops);
    hash.UpdateU64(cost.weighted_drops);
    hash.UpdateU64(engine.run_executed());
  }
  RunResult result;
  engine.FinishRun(result);
  hash.UpdateU64(result.arrived);
  hash.UpdateU64(result.executed);
  for (uint64_t d : result.drops_per_color) hash.UpdateU64(d);
  return hash.FinishHex();
}

// All (scenario/policy) digests, in deterministic order.
std::map<std::string, std::string> ComputeAllDigests() {
  std::map<std::string, std::string> digests;
  for (const auto& [scenario, instance] : GoldenScenarios()) {
    for (const std::string& policy : PolicyNames()) {
      digests[scenario + "/" + policy] = TraceDigest(instance, policy);
    }
  }
  return digests;
}

std::map<std::string, std::string> LoadGoldenFile(const std::string& path) {
  std::map<std::string, std::string> golden;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key, digest;
    fields >> key >> digest;
    if (!key.empty() && !digest.empty()) golden[key] = digest;
  }
  return golden;
}

TEST(GoldenTrace, EveryScenarioPolicyTimelineMatchesGolden) {
  const std::map<std::string, std::string> golden =
      LoadGoldenFile(RRS_GOLDEN_FILE);
  ASSERT_FALSE(golden.empty())
      << "golden file missing or empty: " << RRS_GOLDEN_FILE
      << " — regenerate with ./rrs_golden_trace_test --regen-golden";

  const std::map<std::string, std::string> got = ComputeAllDigests();
  // Every computed digest must be pinned, and every pin must still exist
  // (a dropped policy or scenario is as much a regression as a changed one).
  EXPECT_EQ(got.size(), golden.size());
  for (const auto& [key, digest] : got) {
    auto it = golden.find(key);
    if (it == golden.end()) {
      ADD_FAILURE() << key << " has no golden digest — if the new "
                    << "scenario/policy is intentional, regenerate with "
                    << "--regen-golden";
      continue;
    }
    EXPECT_EQ(digest, it->second)
        << key << " timeline changed — if intentional, regenerate with "
        << "./rrs_golden_trace_test --regen-golden";
  }
}

TEST(GoldenTrace, DigestIsDeterministicAcrossRuns) {
  const auto scenarios = GoldenScenarios();
  const std::string a = TraceDigest(scenarios[0].second, "dlru-edf");
  const std::string b = TraceDigest(scenarios[0].second, "dlru-edf");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
}

int RegenGolden() {
  const std::map<std::string, std::string> digests = ComputeAllDigests();
  std::ofstream out(RRS_GOLDEN_FILE, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", RRS_GOLDEN_FILE);
    return 1;
  }
  out << "# SHA-256 digests of per-round execution timelines, one line per\n"
         "# <scenario>/<policy>. Regenerate after intentional semantics\n"
         "# changes with: ./rrs_golden_trace_test --regen-golden\n";
  for (const auto& [key, digest] : digests) {
    out << key << " " << digest << "\n";
    std::printf("%s %s\n", key.c_str(), digest.c_str());
  }
  std::printf("wrote %zu digests to %s\n", digests.size(), RRS_GOLDEN_FILE);
  return 0;
}

}  // namespace
}  // namespace rrs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen-golden") == 0) {
      return rrs::RegenGolden();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
