// Batched-vs-scalar differential suite: a tenant run on a BatchEngine lane
// must be bit-identical to the same tenant on a scalar Engine — for every
// registry policy (fused ΔLRU-EDF lanes and generic virtual-hook lanes),
// every slab width, mid-slab completion, slab reuse after reset, lane
// snapshot/restore interop with scalar snapshots at tick cuts, and through
// the FleetRunner at 0/1/2/8 threads.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "fleet/batch_engine.h"
#include "fleet/fleet_runner.h"
#include "parallel/thread_pool.h"
#include "sched/dlru_edf.h"
#include "sched/registry.h"
#include "snapshot/codec.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance BatchTenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  EXPECT_EQ(got.cost.drops, want.cost.drops) << label;
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  EXPECT_EQ(got.drops_per_color, want.drops_per_color) << label;
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

EngineOptions BatchOptions(uint32_t resources = 8, uint64_t delta = 2) {
  EngineOptions options;
  options.num_resources = resources;
  options.cost_model.delta = delta;
  return options;
}

// ---- Every registry policy, every slab width -----------------------------

TEST(BatchEngineDifferential, EveryRegistryPolicyEveryWidthMatchesScalar) {
  constexpr size_t kTenants = 16;
  std::vector<Instance> tenants;
  for (uint64_t seed = 0; seed < kTenants; ++seed) {
    tenants.push_back(BatchTenant(500 + seed));
  }
  const EngineOptions options = BatchOptions();

  for (const std::string& name : PolicyNames()) {
    std::vector<RunResult> fresh;
    for (const Instance& tenant : tenants) {
      auto policy = MakePolicy(name);
      ASSERT_NE(policy, nullptr) << name;
      fresh.push_back(RunPolicy(tenant, *policy, options));
    }

    for (uint32_t width : {1u, 7u, 8u, 16u}) {
      fleet::BatchEngine slab(width);
      const uint32_t lanes = std::min<uint32_t>(width, kTenants);
      std::vector<std::unique_ptr<SchedulerPolicy>> policies;
      for (uint32_t lane = 0; lane < lanes; ++lane) {
        policies.push_back(MakePolicy(name));
        slab.OpenLane(lane, tenants[lane], options, *policies[lane]);
      }
      while (slab.StepRounds(17)) {
      }
      for (uint32_t lane = 0; lane < lanes; ++lane) {
        ASSERT_TRUE(slab.lane_done(lane));
        RunResult got;
        slab.FinishLane(lane, got);
        ExpectSameRunResult(got, fresh[lane],
                            name + " width " + std::to_string(width) +
                                " lane " + std::to_string(lane));
      }
      EXPECT_TRUE(slab.empty());
      EXPECT_EQ(slab.next_round(), 0);
    }
  }
}

// ---- Mixed fused and generic lanes, per-lane parameters ------------------

TEST(BatchEngineDifferential, MixedPoliciesAndParamsShareOneSlab) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    tenants.push_back(BatchTenant(600 + seed));
  }
  const EngineOptions options = BatchOptions();

  // Lane 0/1: stock ΔLRU-EDF (fused). Lane 2: random-evict ablation (fused,
  // full scalar sequence every mini-round for RNG stream identity). Lane 3:
  // a different LRU split (fused, distinct per-lane lru_capacity). Lane 4/5:
  // generic registry policies on the same slab.
  DlruEdfPolicy::Params random_params;
  random_params.random_evict = true;
  DlruEdfPolicy::Params split_params;
  split_params.lru_den = 8;  // LRU side 1 of 4 primary slots (default is 2)
  std::vector<std::unique_ptr<SchedulerPolicy>> policies;
  policies.push_back(std::make_unique<DlruEdfPolicy>());
  policies.push_back(std::make_unique<DlruEdfPolicy>());
  policies.push_back(std::make_unique<DlruEdfPolicy>(random_params));
  policies.push_back(std::make_unique<DlruEdfPolicy>(split_params));
  policies.push_back(MakePolicy("dlru"));
  policies.push_back(MakePolicy("edf"));
  ASSERT_NE(policies[4], nullptr);
  ASSERT_NE(policies[5], nullptr);

  std::vector<RunResult> fresh;
  fresh.push_back(RunPolicy(tenants[0], *std::make_unique<DlruEdfPolicy>(),
                            options));
  fresh.push_back(RunPolicy(tenants[1], *std::make_unique<DlruEdfPolicy>(),
                            options));
  fresh.push_back(RunPolicy(
      tenants[2], *std::make_unique<DlruEdfPolicy>(random_params), options));
  fresh.push_back(RunPolicy(
      tenants[3], *std::make_unique<DlruEdfPolicy>(split_params), options));
  {
    auto p = MakePolicy("dlru");
    fresh.push_back(RunPolicy(tenants[4], *p, options));
  }
  {
    auto p = MakePolicy("edf");
    fresh.push_back(RunPolicy(tenants[5], *p, options));
  }

  fleet::BatchEngine slab(8);
  for (uint32_t lane = 0; lane < 6; ++lane) {
    slab.OpenLane(lane, tenants[lane], options, *policies[lane]);
  }
  EXPECT_EQ(slab.fused_lane_opens(), 4u);
  EXPECT_EQ(slab.generic_lane_opens(), 2u);
  while (slab.StepRounds(13)) {
  }
  for (uint32_t lane = 0; lane < 6; ++lane) {
    RunResult got;
    slab.FinishLane(lane, got);
    ExpectSameRunResult(got, fresh[lane], "mixed lane " + std::to_string(lane));
  }
}

// ---- Mid-slab completion, compaction, and slab reuse after reset ---------

TEST(BatchEngine, LanesFinishAtTheirOwnHorizonsAndSlabResets) {
  const Round horizons[] = {24, 96, 48, 72};
  std::vector<Instance> tenants;
  for (size_t i = 0; i < 4; ++i) {
    tenants.push_back(BatchTenant(700 + i, horizons[i]));
  }
  const EngineOptions options = BatchOptions();

  std::vector<RunResult> fresh;
  for (const Instance& tenant : tenants) {
    DlruEdfPolicy policy;
    fresh.push_back(RunPolicy(tenant, policy, options));
  }

  fleet::BatchEngine slab(4);
  std::vector<std::unique_ptr<SchedulerPolicy>> policies;
  for (uint32_t lane = 0; lane < 4; ++lane) {
    policies.push_back(std::make_unique<DlruEdfPolicy>());
    slab.OpenLane(lane, tenants[lane], options, *policies[lane]);
  }

  // Finish lanes the moment they complete, while others keep stepping — the
  // short lanes leave mid-slab and the slab keeps advancing the rest.
  std::vector<bool> finished(4, false);
  size_t finished_count = 0;
  bool more = true;
  while (more) {
    more = slab.StepRounds(8);
    for (uint32_t lane = 0; lane < 4; ++lane) {
      if (finished[lane] || !slab.lane_done(lane)) continue;
      RunResult got;
      slab.FinishLane(lane, got);
      ExpectSameRunResult(got, fresh[lane],
                          "staggered lane " + std::to_string(lane));
      finished[lane] = true;
      ++finished_count;
    }
  }
  EXPECT_EQ(finished_count, 4u);
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.next_round(), 0);

  // Reuse the same slab for a second set of tenants (Session rule 3): the
  // reused arena and policies produce bit-identical results.
  std::vector<Instance> second;
  for (size_t i = 0; i < 4; ++i) {
    second.push_back(BatchTenant(710 + i, 64));
  }
  for (uint32_t lane = 0; lane < 4; ++lane) {
    slab.OpenLane(lane, second[lane], options, *policies[lane]);
  }
  while (slab.StepRounds(8)) {
  }
  for (uint32_t lane = 0; lane < 4; ++lane) {
    DlruEdfPolicy policy;
    RunResult want = RunPolicy(second[lane], policy, options);
    RunResult got;
    slab.FinishLane(lane, got);
    ExpectSameRunResult(got, want, "reused lane " + std::to_string(lane));
  }
}

// ---- Snapshot/restore interop with the scalar Engine ---------------------

TEST(BatchSnapshot, LaneSnapshotBytesEqualScalarSnapshot) {
  Instance tenant = BatchTenant(800);
  Instance neighbor = BatchTenant(801);
  const EngineOptions options = BatchOptions();
  constexpr Round kCut = 40;

  Engine engine(tenant, options);
  DlruEdfPolicy scalar_policy;
  engine.BeginRun(scalar_policy);
  engine.StepRounds(kCut);
  snapshot::Writer scalar_words;
  engine.SnapshotRun(scalar_words);
  engine.AbortRun();

  // The lane shares its slab (and wheel) with a neighbor; its snapshot must
  // still come out byte-identical to the scalar session's.
  fleet::BatchEngine slab(8);
  DlruEdfPolicy lane_policy;
  DlruEdfPolicy neighbor_policy;
  slab.OpenLane(2, tenant, options, lane_policy);
  slab.OpenLane(5, neighbor, options, neighbor_policy);
  slab.StepRounds(kCut);
  snapshot::Writer lane_words;
  slab.SnapshotLane(2, lane_words);

  EXPECT_EQ(lane_words.words(), scalar_words.words());
}

TEST(BatchSnapshot, LaneSnapshotRestoresIntoScalarEngine) {
  Instance tenant = BatchTenant(810);
  Instance neighbor = BatchTenant(811);
  const EngineOptions options = BatchOptions();

  DlruEdfPolicy oracle_policy;
  RunResult want = RunPolicy(tenant, oracle_policy, options);

  fleet::BatchEngine slab(4);
  DlruEdfPolicy lane_policy;
  DlruEdfPolicy neighbor_policy;
  slab.OpenLane(0, tenant, options, lane_policy);
  slab.OpenLane(1, neighbor, options, neighbor_policy);
  slab.StepRounds(32);
  snapshot::Writer words;
  slab.SnapshotLane(0, words);

  Engine engine(tenant, options);
  DlruEdfPolicy restored_policy;
  snapshot::Reader reader(words.words());
  engine.RestoreRun(restored_policy, reader);
  while (engine.StepRounds(16)) {
  }
  RunResult got;
  engine.FinishRun(got);
  ExpectSameRunResult(got, want, "lane→scalar restore");
}

TEST(BatchSnapshot, ScalarSnapshotsRestoreIntoLanesAtATickCut) {
  std::vector<Instance> tenants = {BatchTenant(820), BatchTenant(821),
                                   BatchTenant(822)};
  const EngineOptions options = BatchOptions();
  constexpr Round kCut = 24;

  std::vector<RunResult> want;
  std::vector<snapshot::Writer> words(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    DlruEdfPolicy policy;
    want.push_back(RunPolicy(tenants[i], policy, options));

    Engine engine(tenants[i], options);
    DlruEdfPolicy cut_policy;
    engine.BeginRun(cut_policy);
    engine.StepRounds(kCut);
    engine.SnapshotRun(words[i]);
    engine.AbortRun();
  }

  // Restore all three mid-run scalar sessions into one slab (the first
  // restore sets the slab's round) and run the rest batched.
  fleet::BatchEngine slab(8);
  std::vector<std::unique_ptr<DlruEdfPolicy>> policies;
  for (size_t i = 0; i < tenants.size(); ++i) {
    policies.push_back(std::make_unique<DlruEdfPolicy>());
    snapshot::Reader reader(words[i].words());
    slab.RestoreLane(static_cast<uint32_t>(i), tenants[i], options,
                     *policies[i], reader);
  }
  EXPECT_EQ(slab.next_round(), kCut);
  while (slab.StepRounds(16)) {
  }
  for (size_t i = 0; i < tenants.size(); ++i) {
    RunResult got;
    slab.FinishLane(static_cast<uint32_t>(i), got);
    ExpectSameRunResult(got, want[i],
                        "scalar→lane restore " + std::to_string(i));
  }
}

// ---- FleetRunner batched path, 0/1/2/8 threads ---------------------------

class BatchFleetDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchFleetDifferential, BatchedFleetMatchesFreshEngines) {
  const size_t threads = GetParam();
  constexpr size_t kTenants = 32;

  std::vector<Instance> tenants;
  for (size_t i = 0; i < kTenants; ++i) {
    tenants.push_back(BatchTenant(900 + i));
  }
  std::vector<fleet::FleetJob> jobs;
  std::vector<RunResult> fresh;
  size_t eligible = 0;
  size_t fallback = 0;
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &tenants[i];
    // Two shape groups (different resource counts) so slabs must sort
    // tenants by shape; every 7th job records a schedule and must fall back
    // to a scalar session.
    job.options.num_resources = i % 2 == 0 ? 8 : 4;
    job.options.cost_model.delta = 2;
    job.options.record_schedule = i % 7 == 0;
    jobs.push_back(job);
    if (job.options.record_schedule) {
      ++fallback;
    } else {
      ++eligible;
    }

    DlruEdfPolicy policy;
    fresh.push_back(RunPolicy(tenants[i], policy, job.options));
  }

  std::unique_ptr<ThreadPool> pool;
  fleet::FleetOptions options;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(threads);
    options.pool = pool.get();
  }
  options.num_shards = 3;
  options.rounds_per_tick = 16;
  options.batch_width = 8;
  fleet::FleetRunner runner(std::move(options));

  std::vector<RunResult> got = runner.RunAll(jobs);
  ASSERT_EQ(got.size(), kTenants);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(got[i], fresh[i],
                        "threads=" + std::to_string(threads) + " tenant " +
                            std::to_string(i));
  }

  const fleet::FleetStats stats = runner.stats();
  EXPECT_EQ(stats.sessions_completed, kTenants);
  EXPECT_EQ(stats.batched_sessions, eligible);
  EXPECT_EQ(stats.fallback_sessions, fallback);
  EXPECT_GT(stats.lane_rounds_stepped, 0u);
  EXPECT_GT(stats.slab_rounds_stepped, 0u);
  EXPECT_GE(stats.lane_rounds_stepped, stats.slab_rounds_stepped);

  // Warm rerun through the same runner: still bit-identical, slab pools
  // grew only on the first fleet.
  std::vector<RunResult> again = runner.RunAll(jobs);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(again[i], fresh[i],
                        "rerun tenant " + std::to_string(i));
  }
  const fleet::FleetStats warm = runner.stats();
  EXPECT_EQ(warm.sessions_created, stats.sessions_created);
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchFleetDifferential,
                         ::testing::Values(0u, 1u, 2u, 8u));

TEST(BatchFleet, LiveCapCountsLanes) {
  constexpr size_t kTenants = 16;
  std::vector<Instance> tenants;
  std::vector<fleet::FleetJob> jobs;
  std::vector<RunResult> fresh;
  for (size_t i = 0; i < kTenants; ++i) {
    tenants.push_back(BatchTenant(950 + i, 48));
  }
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &tenants[i];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 2;
    jobs.push_back(job);
    DlruEdfPolicy policy;
    fresh.push_back(RunPolicy(tenants[i], policy, job.options));
  }

  fleet::FleetOptions options;
  options.num_shards = 1;
  options.max_live_sessions = 6;
  options.rounds_per_tick = 8;
  options.batch_width = 4;
  fleet::FleetRunner runner(std::move(options));
  std::vector<RunResult> got = runner.RunAll(jobs);
  for (size_t i = 0; i < kTenants; ++i) {
    ExpectSameRunResult(got[i], fresh[i], "capped tenant " + std::to_string(i));
  }
  const fleet::FleetStats stats = runner.stats();
  EXPECT_LE(stats.peak_live_sessions, 6u);
  EXPECT_EQ(stats.sessions_completed, kTenants);
  EXPECT_EQ(stats.batched_sessions, kTenants);
}

}  // namespace
}  // namespace rrs
