// Tests for the artifact layer: schedule serialization round-trips, the
// mutation-rejection property of the validator (randomly corrupted schedules
// must be caught), the timeline recorder + Gantt renderer, and the workload
// composition utilities.
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/timeline.h"
#include "core/engine.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/mix.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance ArtifactWorkload(uint64_t seed) {
  std::vector<workload::ColorSpec> specs = {{2, 0.8}, {4, 0.6}, {8, 0.4}};
  workload::PoissonOptions gen;
  gen.rounds = 48;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

// ------------------------------------------- Schedule serialization ----

TEST(ScheduleSerialization, RoundTripPreservesValidationResult) {
  Instance inst = ArtifactWorkload(5);
  auto policy = MakePolicy("greedy-edf");
  EngineOptions options;
  options.num_resources = 4;
  options.cost_model.delta = 3;
  options.record_schedule = true;
  RunResult r = RunPolicy(inst, *policy, options);
  ASSERT_TRUE(r.schedule.has_value());

  std::stringstream ss;
  r.schedule->Serialize(ss);
  Schedule back = Schedule::Deserialize(ss);
  EXPECT_EQ(back.num_resources(), r.schedule->num_resources());
  EXPECT_EQ(back.mini_rounds_per_round(),
            r.schedule->mini_rounds_per_round());
  EXPECT_EQ(back.reconfigs(), r.schedule->reconfigs());
  EXPECT_EQ(back.executions(), r.schedule->executions());

  auto v = back.Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.cost, r.cost);
}

TEST(ScheduleSerialization, BlackReconfigRoundTrips) {
  Schedule s(2, 2);
  s.AddReconfig(0, 0, 0, 3);
  s.AddReconfig(5, 1, 1, kNoColor);
  std::stringstream ss;
  s.Serialize(ss);
  Schedule back = Schedule::Deserialize(ss);
  ASSERT_EQ(back.reconfigs().size(), 2u);
  EXPECT_EQ(back.reconfigs()[1].to, kNoColor);
  EXPECT_EQ(back.mini_rounds_per_round(), 2);
}

TEST(ScheduleSerialization, RejectsGarbage) {
  std::stringstream ss("not a schedule\n");
  EXPECT_DEATH(Schedule::Deserialize(ss), "header");
}

TEST(ScheduleValidator, RejectsRandomMutations) {
  // Property: corrupting a valid schedule in any of several systematic ways
  // must be detected by the validator (or, for benign mutations like
  // deleting an execution, still validate but at a different cost).
  Instance inst = ArtifactWorkload(7);
  auto policy = MakePolicy("dlru-edf");
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  options.record_schedule = true;
  RunResult r = RunPolicy(inst, *policy, options);
  ASSERT_TRUE(r.schedule.has_value());
  const Schedule& good = *r.schedule;
  ASSERT_TRUE(good.Validate(inst).ok);
  ASSERT_FALSE(good.executions().empty());

  Rng rng(77);
  int rejected = 0, attempts = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Schedule mutated(good.num_resources(), good.mini_rounds_per_round());
    for (const auto& a : good.reconfigs()) {
      mutated.AddReconfig(a.round, a.mini, a.resource, a.to);
    }
    size_t victim = rng.NextBounded(good.executions().size());
    int mutation = static_cast<int>(rng.NextBounded(4));
    for (size_t i = 0; i < good.executions().size(); ++i) {
      ExecAction a = good.executions()[i];
      if (i == victim) {
        switch (mutation) {
          case 0:  // duplicate the execution in the next round
            mutated.AddExecution(a.round, a.mini, a.resource, a.job);
            a.round += 1;
            break;
          case 1:  // push the execution past the job's deadline
            a.round = inst.deadline(a.job) + 1;
            break;
          case 2:  // execute before arrival
            a.round = inst.job(a.job).arrival - 1;
            break;
          case 3:  // point at a different (likely wrong-colored) slot time
            a.round = inst.job(a.job).arrival;
            a.resource = (a.resource + 1) % good.num_resources();
            break;
        }
      }
      if (a.round < 0) continue;  // mutation fell off the timeline
      mutated.AddExecution(a.round, a.mini, a.resource, a.job);
    }
    ++attempts;
    if (!mutated.Validate(inst).ok) ++rejected;
  }
  // Mutations 0-2 are always illegal; mutation 3 can occasionally remain
  // legal (the neighboring resource may share the color and be free), so
  // demand a high rejection rate rather than 100%.
  EXPECT_GT(rejected * 4, attempts * 3)
      << rejected << "/" << attempts << " mutations rejected";
}

// ----------------------------------------------------- Timeline ----

TEST(Timeline, SeriesAreConsistent) {
  Instance inst = ArtifactWorkload(11);
  auto inner = MakePolicy("dlru-edf");
  analysis::TimelinePolicy timeline(*inner);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(inst, timeline, options);

  Table table = timeline.ToTable();
  ASSERT_GT(table.num_rows(), 0u);

  // Sum of per-round series must match the run totals.
  uint64_t arrivals = 0, drops = 0, reconfigs = 0, executed = 0;
  const auto& samples = timeline.samples();
  // Recompute from the finalized table (samples() holds raw backlog data).
  for (size_t row = 0; row < table.num_rows(); ++row) {
    arrivals += std::stoull(table.At(row, 1));
    drops += std::stoull(table.At(row, 2));
    reconfigs += std::stoull(table.At(row, 3));
    executed += std::stoull(table.At(row, 4));
  }
  EXPECT_EQ(arrivals, r.arrived);
  EXPECT_EQ(drops, r.cost.drops);
  EXPECT_EQ(reconfigs, r.cost.reconfigurations);
  EXPECT_EQ(executed, r.executed);
  EXPECT_EQ(samples.size(), table.num_rows());
}

TEST(Timeline, SparklinesRender) {
  Instance inst = ArtifactWorkload(13);
  auto inner = MakePolicy("greedy-edf");
  analysis::TimelinePolicy timeline(*inner);
  EngineOptions options;
  options.num_resources = 4;
  RunPolicy(inst, timeline, options);
  for (const char* series : {"arrivals", "drops", "reconfigs", "executed",
                             "backlog", "utilization"}) {
    std::string line = timeline.Sparkline(series, 32);
    EXPECT_EQ(line.size(), 32u) << series;
  }
  EXPECT_DEATH(timeline.Sparkline("bogus"), "unknown timeline series");
}

TEST(Gantt, RendersSmallSchedule) {
  InstanceBuilder b;
  ColorId red = b.AddColor(4);
  ColorId blue = b.AddColor(4);
  b.AddJobs(red, 0, 2);
  b.AddJobs(blue, 0, 2);
  Instance inst = b.Build();

  Schedule s(2);
  s.AddReconfig(0, 0, 0, red);
  s.AddReconfig(0, 0, 1, blue);
  s.AddExecution(0, 0, 0, 0);
  s.AddExecution(1, 0, 0, 1);
  s.AddExecution(0, 0, 1, 2);
  ASSERT_TRUE(s.Validate(inst).ok);

  std::string gantt = analysis::RenderGantt(s, inst, 0, 3);
  // Resource 0: red ('a'), executing in rounds 0 and 1 -> "AAaa".
  EXPECT_NE(gantt.find("AAaa"), std::string::npos) << gantt;
  // Resource 1: blue ('b'), executing in round 0 only -> "Bbbb".
  EXPECT_NE(gantt.find("Bbbb"), std::string::npos) << gantt;
}

// ---------------------------------------------------------- Mix ----

TEST(Mix, MergeRenumbersColors) {
  Instance a = ArtifactWorkload(17);
  Instance b = ArtifactWorkload(19);
  Instance merged = workload::MergeInstances({&a, &b});
  EXPECT_EQ(merged.num_colors(), a.num_colors() + b.num_colors());
  EXPECT_EQ(merged.num_jobs(), a.num_jobs() + b.num_jobs());
  // Delay bounds preserved across the renumbering.
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    EXPECT_EQ(merged.delay_bound(c), a.delay_bound(c));
  }
  for (ColorId c = 0; c < b.num_colors(); ++c) {
    EXPECT_EQ(merged.delay_bound(static_cast<ColorId>(a.num_colors()) + c),
              b.delay_bound(c));
  }
}

TEST(Mix, TimeShiftMovesArrivals) {
  Instance a = ArtifactWorkload(23);
  Instance shifted = workload::TimeShift(a, 100);
  EXPECT_EQ(shifted.num_jobs(), a.num_jobs());
  EXPECT_EQ(shifted.job(0).arrival, a.job(0).arrival + 100);
  EXPECT_EQ(shifted.horizon(), a.horizon() + 100);
}

TEST(Mix, ThinIsDeterministicAndProportional) {
  Instance a = ArtifactWorkload(29);
  Instance t1 = workload::Thin(a, 0.5, 99);
  Instance t2 = workload::Thin(a, 0.5, 99);
  EXPECT_EQ(t1.num_jobs(), t2.num_jobs());
  EXPECT_LT(t1.num_jobs(), a.num_jobs());
  EXPECT_GT(t1.num_jobs(), 0u);
  EXPECT_EQ(workload::Thin(a, 1.0, 1).num_jobs(), a.num_jobs());
  EXPECT_EQ(workload::Thin(a, 0.0, 1).num_jobs(), 0u);
}

TEST(Mix, ConcatPlaysPhasesInOrder) {
  Instance a = ArtifactWorkload(31);
  Instance b = ArtifactWorkload(37);
  Instance combined = workload::Concat(a, b, 10);
  EXPECT_EQ(combined.num_jobs(), a.num_jobs() + b.num_jobs());
  // The second phase starts after the first one's request rounds plus gap.
  Round boundary = a.num_request_rounds() + 10;
  uint64_t before = 0;
  for (const Job& j : combined.jobs()) {
    if (j.arrival < boundary) ++before;
  }
  EXPECT_EQ(before, a.num_jobs());
}

TEST(Mix, MergedTenantsRunThroughPipeline) {
  workload::RouterOptions router;
  router.rounds = 128;
  router.seed = 41;
  Instance tenant1 =
      MakeRouterScenario(workload::DefaultRouterServices(), router);
  workload::DatacenterOptions dc;
  dc.rounds = 128;
  dc.seed = 43;
  Instance tenant2 = workload::MakeDatacenterScenario(dc);
  Instance merged = workload::MergeInstances({&tenant1, &tenant2});

  EngineOptions options;
  options.num_resources = 16;
  options.cost_model.delta = 4;
  auto result = reduce::SolveOnline(merged, options);
  ASSERT_TRUE(result.validation.ok) << result.validation.error;
}

}  // namespace
}  // namespace rrs
