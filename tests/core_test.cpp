// Tests for src/core: Instance construction and predicates, trace
// serialization, the schedule validator, and the four-phase engine semantics.
#include <sstream>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "sched/greedy.h"

namespace rrs {
namespace {

Instance TwoColorInstance() {
  InstanceBuilder b;
  ColorId red = b.AddColor(2, "red");
  ColorId blue = b.AddColor(4, "blue");
  b.AddJobs(red, 0, 2);
  b.AddJob(blue, 0);
  b.AddJob(red, 2);
  b.AddJob(blue, 4);
  return b.Build();
}

// ------------------------------------------------------------ Instance ----

TEST(Instance, BuilderSortsByArrivalAndBuildsCsr) {
  InstanceBuilder b;
  ColorId c = b.AddColor(3);
  b.AddJob(c, 5);
  b.AddJob(c, 1);
  b.AddJob(c, 5);
  Instance inst = b.Build();
  EXPECT_EQ(inst.num_jobs(), 3u);
  EXPECT_EQ(inst.job(0).arrival, 1);
  EXPECT_EQ(inst.jobs_in_round(5).size(), 2u);
  EXPECT_EQ(inst.jobs_in_round(3).size(), 0u);
  EXPECT_EQ(inst.jobs_in_round(99).size(), 0u);
  EXPECT_EQ(inst.first_job_in_round(5), 1u);
  EXPECT_EQ(inst.num_request_rounds(), 6);
  EXPECT_EQ(inst.horizon(), 8);  // 5 + 3
}

TEST(Instance, DeadlineIsArrivalPlusDelayBound) {
  Instance inst = TwoColorInstance();
  EXPECT_EQ(inst.deadline(0), 2);  // red @0, D=2
  EXPECT_EQ(inst.delay_bound(1), 4);
}

TEST(Instance, JobsPerColor) {
  Instance inst = TwoColorInstance();
  EXPECT_EQ(inst.jobs_per_color()[0], 3u);
  EXPECT_EQ(inst.jobs_per_color()[1], 2u);
}

TEST(Instance, BatchedPredicate) {
  EXPECT_TRUE(TwoColorInstance().IsBatched());
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 2);  // 2 is not a multiple of 4
  EXPECT_FALSE(b.Build().IsBatched());
}

TEST(Instance, RateLimitedPredicate) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 2);
  EXPECT_TRUE(b.Build().IsRateLimited());

  InstanceBuilder b2;
  ColorId c2 = b2.AddColor(2);
  b2.AddJobs(c2, 0, 3);  // 3 > D = 2
  Instance inst2 = b2.Build();
  EXPECT_TRUE(inst2.IsBatched());
  EXPECT_FALSE(inst2.IsRateLimited());
}

TEST(Instance, PowerOfTwoPredicate) {
  EXPECT_TRUE(TwoColorInstance().DelayBoundsArePowersOfTwo());
  InstanceBuilder b;
  b.AddColor(3);
  EXPECT_FALSE(b.Build().DelayBoundsArePowersOfTwo());
}

TEST(Instance, EmptyInstance) {
  InstanceBuilder b;
  Instance inst = b.Build();
  EXPECT_EQ(inst.num_jobs(), 0u);
  EXPECT_EQ(inst.horizon(), 0);
  EXPECT_TRUE(inst.IsBatched());
  EXPECT_TRUE(inst.IsRateLimited());
}

TEST(Instance, SerializationRoundTrip) {
  Instance inst = TwoColorInstance();
  std::stringstream ss;
  inst.Serialize(ss);
  Instance back = Instance::Deserialize(ss);
  EXPECT_EQ(back.num_colors(), inst.num_colors());
  EXPECT_EQ(back.num_jobs(), inst.num_jobs());
  for (JobId id = 0; id < inst.num_jobs(); ++id) {
    EXPECT_EQ(back.job(id), inst.job(id));
  }
  for (ColorId c = 0; c < inst.num_colors(); ++c) {
    EXPECT_EQ(back.delay_bound(c), inst.delay_bound(c));
    EXPECT_EQ(back.color_name(c), inst.color_name(c));
  }
}

TEST(Instance, SerializationRunLengthEncodesBulkJobs) {
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJobs(c, 0, 1000);
  std::stringstream ss;
  b.Build().Serialize(ss);
  // One color line + one job line + header, not 1000 job lines.
  std::string text = ss.str();
  EXPECT_LT(text.size(), 100u);
  EXPECT_NE(text.find("job 0 0 1000"), std::string::npos);
}

TEST(Instance, SummaryMentionsCounts) {
  std::string s = TwoColorInstance().Summary();
  EXPECT_NE(s.find("2 colors"), std::string::npos);
  EXPECT_NE(s.find("5 jobs"), std::string::npos);
}

TEST(FloorPowerOfTwoFn, Values) {
  EXPECT_EQ(FloorPowerOfTwo(1), 1);
  EXPECT_EQ(FloorPowerOfTwo(2), 2);
  EXPECT_EQ(FloorPowerOfTwo(3), 2);
  EXPECT_EQ(FloorPowerOfTwo(4), 4);
  EXPECT_EQ(FloorPowerOfTwo(1023), 512);
}

// ------------------------------------------------------------ Schedule ----

TEST(Schedule, ValidAcceptedAndCostComputed) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 0);     // red
  s.AddExecution(0, 0, 0, 0);    // red job @0
  s.AddExecution(1, 0, 0, 1);    // second red job @0 (deadline 2)
  auto v = s.Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, 2u);
  EXPECT_EQ(v.cost.reconfigurations, 1u);
  EXPECT_EQ(v.cost.drops, 3u);  // 5 jobs - 2 executed
}

TEST(Schedule, RejectsWrongColorResource) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 1);   // blue
  s.AddExecution(0, 0, 0, 0);  // red job on blue resource
  auto v = s.Validate(inst);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("color"), std::string::npos);
}

TEST(Schedule, RejectsExecutionOnBlackResource) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddExecution(0, 0, 0, 0);
  EXPECT_FALSE(s.Validate(inst).ok);
}

TEST(Schedule, RejectsExecutionBeforeArrival) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 4);
  Instance inst = b.Build();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, c);
  s.AddExecution(2, 0, 0, 0);
  auto v = s.Validate(inst);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("before arrival"), std::string::npos);
}

TEST(Schedule, RejectsExecutionAtDeadline) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 0);
  s.AddExecution(2, 0, 0, 0);  // red @0 has deadline 2; round 2 is too late
  auto v = s.Validate(inst);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("deadline"), std::string::npos);
}

TEST(Schedule, AllowsExecutionAtDeadlineMinusOne) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 0);
  s.AddExecution(1, 0, 0, 0);  // round 1 < deadline 2
  EXPECT_TRUE(s.Validate(inst).ok);
}

TEST(Schedule, RejectsDoubleExecution) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 0);
  s.AddExecution(0, 0, 0, 0);
  s.AddExecution(1, 0, 0, 0);
  auto v = s.Validate(inst);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("twice"), std::string::npos);
}

TEST(Schedule, RejectsTwoJobsInOneSlot) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 0, 0);
  s.AddExecution(0, 0, 0, 0);
  s.AddExecution(0, 0, 0, 1);
  auto v = s.Validate(inst);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("one slot"), std::string::npos);
}

TEST(Schedule, RejectsUnknownResourceAndJob) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddReconfig(0, 0, 5, 0);
  EXPECT_FALSE(s.Validate(inst).ok);

  Schedule s2(1);
  s2.AddReconfig(0, 0, 0, 0);
  s2.AddExecution(0, 0, 0, 99);
  EXPECT_FALSE(s2.Validate(inst).ok);
}

TEST(Schedule, RejectsBadMiniRound) {
  Instance inst = TwoColorInstance();
  Schedule s(1, 1);
  s.AddReconfig(0, 1, 0, 0);  // mini 1 with only 1 mini-round per round
  EXPECT_FALSE(s.Validate(inst).ok);
}

TEST(Schedule, MiniRoundsDoubleCapacity) {
  InstanceBuilder b;
  ColorId c = b.AddColor(1);
  b.AddJobs(c, 0, 2);
  Instance inst = b.Build();
  Schedule s(1, 2);
  s.AddReconfig(0, 0, 0, c);
  s.AddExecution(0, 0, 0, 0);
  s.AddExecution(0, 1, 0, 1);  // second mini-round, same round
  auto v = s.Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.cost.drops, 0u);
}

TEST(Schedule, ReconfigAppliesBeforeExecutionInSameMini) {
  Instance inst = TwoColorInstance();
  Schedule s(1);
  s.AddExecution(0, 0, 0, 0);
  s.AddReconfig(0, 0, 0, 0);  // added later but same (round, mini): applies first
  EXPECT_TRUE(s.Validate(inst).ok);
}

// -------------------------------------------------------------- Engine ----

TEST(Engine, NeverPolicyDropsEverything) {
  Instance inst = TwoColorInstance();
  NeverReconfigurePolicy never;
  EngineOptions options;
  options.num_resources = 2;
  options.cost_model.delta = 3;
  RunResult r = RunPolicy(inst, never, options);
  EXPECT_EQ(r.cost.drops, inst.num_jobs());
  EXPECT_EQ(r.cost.reconfigurations, 0u);
  EXPECT_EQ(r.executed, 0u);
  EXPECT_EQ(r.total_cost(options.cost_model), inst.num_jobs());
}

TEST(Engine, DropsPerColorTracked) {
  Instance inst = TwoColorInstance();
  NeverReconfigurePolicy never;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, never, options);
  EXPECT_EQ(r.drops_per_color[0], 3u);
  EXPECT_EQ(r.drops_per_color[1], 2u);
}

TEST(Engine, StaticPolicyExecutesItsColors) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  b.AddColor(4);
  b.AddJobs(c0, 0, 3);
  Instance inst = b.Build();
  StaticPartitionPolicy policy;
  EngineOptions options;
  options.num_resources = 2;  // resource 0 -> color 0, resource 1 -> color 1
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.cost.reconfigurations, 2u);
  EXPECT_EQ(r.executed, 3u);  // 1 job/round on resource 0, rounds 0..2
  EXPECT_EQ(r.cost.drops, 0u);
}

TEST(Engine, JobExecutableUntilDeadlineMinusOne) {
  // One job with D=2 arriving at 0 and a policy that only configures in
  // round 1: the job must still execute (round 1 < deadline 2).
  class LateConfig : public SchedulerPolicy {
   public:
    std::string name() const override { return "late"; }
    void Reset(const Instance&, const EngineOptions&) override {}
    void Reconfigure(Round k, int, ResourceView& view) override {
      if (k == 1) view.SetColor(0, 0);
    }
  };
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJob(c, 0);
  Instance inst = b.Build();
  LateConfig policy;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed, 1u);
  EXPECT_EQ(r.cost.drops, 0u);
}

TEST(Engine, JobDroppedAtDeadlineBeforeExecution) {
  // Configuring in round 2 is too late for a D=2 job arriving at 0: the drop
  // phase of round 2 removes it before the execution phase.
  class TooLate : public SchedulerPolicy {
   public:
    std::string name() const override { return "too-late"; }
    void Reset(const Instance&, const EngineOptions&) override {}
    void Reconfigure(Round k, int, ResourceView& view) override {
      if (k == 2) view.SetColor(0, 0);
    }
  };
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJob(c, 0);
  Instance inst = b.Build();
  TooLate policy;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed, 0u);
  EXPECT_EQ(r.cost.drops, 1u);
}

TEST(Engine, SetColorToSameColorIsFree) {
  class Redundant : public SchedulerPolicy {
   public:
    std::string name() const override { return "redundant"; }
    void Reset(const Instance&, const EngineOptions&) override {}
    void Reconfigure(Round, int, ResourceView& view) override {
      view.SetColor(0, 0);  // same color every round: only first one costs
    }
  };
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 0);
  Instance inst = b.Build();
  Redundant policy;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.cost.reconfigurations, 1u);
}

TEST(Engine, RecordedScheduleValidates) {
  Instance inst = TwoColorInstance();
  GreedyEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 2;
  options.record_schedule = true;
  RunResult r = RunPolicy(inst, policy, options);
  ASSERT_TRUE(r.schedule.has_value());
  auto v = r.schedule->Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.cost, r.cost);
  EXPECT_EQ(v.executed, r.executed);
}

TEST(Engine, DoubleSpeedExecutesTwicePerRound) {
  InstanceBuilder b;
  ColorId c = b.AddColor(1);
  b.AddJobs(c, 0, 2);
  Instance inst = b.Build();
  StaticPartitionPolicy policy;
  EngineOptions options;
  options.num_resources = 1;
  options.mini_rounds_per_round = 2;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed, 2u);  // both D=1 jobs in round 0's two mini-rounds
}

TEST(Engine, EmptyInstanceRuns) {
  InstanceBuilder b;
  b.AddColor(2);
  Instance inst = b.Build();
  NeverReconfigurePolicy never;
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, never, options);
  EXPECT_EQ(r.arrived, 0u);
  EXPECT_EQ(r.total_cost(options.cost_model), 0u);
}

TEST(Engine, AccountingIdentityHolds) {
  Instance inst = TwoColorInstance();
  LazyGreedyPolicy policy(1);
  EngineOptions options;
  options.num_resources = 1;
  RunResult r = RunPolicy(inst, policy, options);
  EXPECT_EQ(r.executed + r.cost.drops, r.arrived);
}

TEST(CostBreakdown, Arithmetic) {
  CostModel model{5};
  CostBreakdown c = UnitCosts(3, 7);
  EXPECT_EQ(c.reconfig_cost(model), 15u);
  EXPECT_EQ(c.drop_cost(), 7u);
  EXPECT_EQ(c.total(model), 22u);
  CostBreakdown d = UnitCosts(1, 1);
  d += c;
  EXPECT_EQ(d.reconfigurations, 4u);
  EXPECT_EQ(d.drops, 8u);
  EXPECT_EQ(d.weighted_drops, 8u);
}

// ---------------------------------------- Variable drop costs (extension) ----

TEST(WeightedDrops, EngineAccountsPerColorWeights) {
  InstanceBuilder b;
  ColorId cheap = b.AddColor(2, "cheap", 1);
  ColorId dear = b.AddColor(2, "dear", 5);
  b.AddJobs(cheap, 0, 3);
  b.AddJobs(dear, 0, 2);
  Instance inst = b.Build();
  EXPECT_FALSE(inst.HasUnitDropCosts());
  EXPECT_EQ(inst.drop_cost(dear), 5u);

  NeverReconfigurePolicy never;
  EngineOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(inst, never, options);
  EXPECT_EQ(r.cost.drops, 5u);             // 5 jobs dropped
  EXPECT_EQ(r.cost.weighted_drops, 13u);   // 3*1 + 2*5
  EXPECT_EQ(r.total_cost(options.cost_model), 13u);
}

TEST(WeightedDrops, ValidatorMatchesEngine) {
  InstanceBuilder b;
  ColorId cheap = b.AddColor(4, "cheap", 1);
  ColorId dear = b.AddColor(4, "dear", 3);
  b.AddJobs(cheap, 0, 4);
  b.AddJobs(dear, 0, 4);
  Instance inst = b.Build();

  LazyGreedyPolicy policy(1);
  EngineOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 2;
  options.record_schedule = true;
  RunResult r = RunPolicy(inst, policy, options);
  ASSERT_TRUE(r.schedule.has_value());
  auto v = r.schedule->Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.cost, r.cost);  // includes weighted_drops
}

TEST(WeightedDrops, TraceRoundTripKeepsWeights) {
  InstanceBuilder b;
  b.AddColor(2, "a", 1);
  b.AddColor(4, "b", 7);
  b.AddJobs(1, 0, 2);
  std::stringstream ss;
  b.Build().Serialize(ss);
  Instance back = Instance::Deserialize(ss);
  EXPECT_EQ(back.drop_cost(0), 1u);
  EXPECT_EQ(back.drop_cost(1), 7u);
}

TEST(WeightedDrops, WeightAwareLazyGreedyProtectsExpensiveColor) {
  // One resource, two equally-loaded colors, one 10x more expensive to drop:
  // the weight-aware heuristic must favor it.
  InstanceBuilder b;
  ColorId cheap = b.AddColor(4, "cheap", 1);
  ColorId dear = b.AddColor(4, "dear", 10);
  b.AddJobs(cheap, 0, 4);
  b.AddJobs(dear, 0, 4);
  Instance inst = b.Build();

  EngineOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 1;

  LazyGreedyPolicy naive(1, false);
  RunResult naive_run = RunPolicy(inst, naive, options);
  LazyGreedyPolicy aware(1, true);
  RunResult aware_run = RunPolicy(inst, aware, options);

  EXPECT_EQ(aware_run.drops_per_color[dear], 0u);
  EXPECT_LE(aware_run.total_cost(options.cost_model),
            naive_run.total_cost(options.cost_model));
  (void)cheap;
}

}  // namespace
}  // namespace rrs
