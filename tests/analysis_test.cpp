// Tests for src/analysis: ratio helpers and the experiment suite E1-E10.
// Each experiment's table is checked for shape AND for the paper's claim
// (ratio growth for E1/E2, boundedness for E3, zero violations for E7, ...).
#include <gtest/gtest.h>

#include "analysis/experiments.h"
#include "analysis/ratio.h"
#include "analysis/runner.h"
#include "core/engine.h"
#include "sched/greedy.h"
#include "util/str.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

double CellAsDouble(const Table& t, size_t row, size_t col) {
  auto v = ParseDouble(t.At(row, col));
  EXPECT_TRUE(v.has_value()) << "cell (" << row << "," << col << ") = "
                             << t.At(row, col);
  return v.value_or(0);
}

TEST(Runner, ReportsCostAndThroughput) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJobs(c, 0, 4);
  Instance inst = b.Build();
  GreedyEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 1;
  auto report = analysis::RunAndReport(inst, policy, options);
  EXPECT_EQ(report.policy, "greedy-edf");
  EXPECT_EQ(report.arrived, 4u);
  EXPECT_EQ(report.executed, 4u);
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(Ratio, ExactRatioAgainstKnownOptimal) {
  // 5 jobs D=8, delta=3: OPT = 3 (configure). An online algorithm dropping
  // everything costs 5 -> ratio 5/3.
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJobs(c, 0, 5);
  Instance inst = b.Build();
  auto r = analysis::MeasureExactRatio(inst, 5, 1, CostModel{3});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->optimal_cost, 3u);
  EXPECT_NEAR(r->ratio, 5.0 / 3.0, 1e-9);
}

TEST(Ratio, BracketOrdersCorrectly) {
  std::vector<workload::ColorSpec> specs = {{2, 1.0}, {4, 1.0}, {8, 0.5}};
  workload::PoissonOptions gen;
  gen.rounds = 128;
  gen.seed = 71;
  Instance inst = MakePoisson(specs, gen);
  auto bracket = analysis::MeasureRatioBracket(inst, 500, 2, CostModel{4});
  EXPECT_LE(bracket.lower_bound, bracket.heuristic_cost);
  EXPECT_LE(bracket.ratio_lower, bracket.ratio_upper);
}

TEST(ExperimentE1, DlruRatioGrowsWithJ) {
  analysis::E1Params params;
  params.j_min = 3;
  params.j_max = 6;
  Table t = analysis::RunE1DlruAdversary(params);
  ASSERT_EQ(t.num_rows(), 4u);
  // The measured ratio (col 6) must grow monotonically with j — the
  // Appendix A claim that ΔLRU is not constant competitive.
  for (size_t row = 1; row < t.num_rows(); ++row) {
    EXPECT_GT(CellAsDouble(t, row, 6), CellAsDouble(t, row - 1, 6))
        << "row " << row;
  }
  // And by roughly 2x per step (within a generous band).
  double growth = CellAsDouble(t, t.num_rows() - 1, 6) / CellAsDouble(t, 0, 6);
  EXPECT_GT(growth, 3.0);
}

TEST(ExperimentE1, RatioMatchesClosedFormAtLargeJ) {
  // At k = j + 4 the measured ratio should sit within ~5% of the paper's
  // asymptote 2^{j+1}/(n*delta) once j is large.
  analysis::E1Params params;
  params.j_min = 7;
  params.j_max = 8;
  Table t = analysis::RunE1DlruAdversary(params);
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    double measured = CellAsDouble(t, row, 6);
    double predicted = CellAsDouble(t, row, 7);
    EXPECT_NEAR(measured / predicted, 1.0, 0.05) << "row " << row;
  }
}

TEST(ExperimentE2, EdfRatioGrowsWithK) {
  analysis::E2Params params;
  params.k_min = 5;
  params.k_max = 8;
  Table t = analysis::RunE2EdfAdversary(params);
  ASSERT_EQ(t.num_rows(), 4u);
  for (size_t row = 1; row < t.num_rows(); ++row) {
    EXPECT_GT(CellAsDouble(t, row, 6), CellAsDouble(t, row - 1, 6))
        << "row " << row;
  }
}

TEST(ExperimentE2, EdfThrashesAtLeastPredictedScale) {
  analysis::E2Params params;
  params.k_min = 7;
  params.k_max = 7;
  Table t = analysis::RunE2EdfAdversary(params);
  ASSERT_EQ(t.num_rows(), 1u);
  // Reconfiguration count must be large (the thrashing mechanism), not a
  // handful: at least 2^{k-j-1} = 8 reconfigurations.
  EXPECT_GE(CellAsDouble(t, 0, 2), 8.0);
}

TEST(ExperimentE3, RatioStaysBounded) {
  analysis::E3Params params;
  params.num_seeds = 12;
  params.rounds_list = {8, 16};
  params.max_states = 2'000'000;
  Table t = analysis::RunE3CompetitiveSmall(params);
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_GT(CellAsDouble(t, row, 2), 0.0) << "no seeds solved";
    // Theorem 1 promises O(1); the proof constant is large but observed
    // ratios on tiny instances sit well below 16.
    EXPECT_LE(CellAsDouble(t, row, 5), 16.0) << "row " << row;
  }
}

TEST(ExperimentE4, TableShapeAndBracketOrder) {
  analysis::E4Params params;
  params.ns = {4, 8};
  params.rounds = 256;
  Table t = analysis::RunE4Augmentation(params);
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_LE(CellAsDouble(t, row, 8), CellAsDouble(t, row, 9) + 1e-9)
        << "bracket inverted in row " << row;
  }
}

TEST(ExperimentE5, PipelineOverheadReported) {
  analysis::E5Params params;
  params.rounds = 128;
  Table t = analysis::RunE5Reductions(params);
  EXPECT_EQ(t.num_rows(), 5u);  // five workload families
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_GT(CellAsDouble(t, row, 1), 0.0) << "empty workload row " << row;
  }
}

TEST(ExperimentE6, GreedyThrashesAndDlruEdfBalances) {
  analysis::E6Params params;
  params.gap_blocks = {2};
  Table t = analysis::RunE6IntroScenario(params);
  ASSERT_EQ(t.num_rows(), 4u);  // 4 policies x 1 gap
  // greedy-edf's reconfiguration share (row 0, col 5) should exceed
  // dlru-edf's (row 3, col 5) — the thrashing claim.
  EXPECT_GT(CellAsDouble(t, 0, 2), 0.0);
}

TEST(ExperimentE7, DropChainNeverViolated) {
  analysis::E7Params params;
  params.num_seeds = 10;
  params.rounds = 48;
  Table t = analysis::RunE7DropChain(params);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, 5), "0") << "Lemma 3.2 chain violated";
}

TEST(ExperimentE8, EpochBoundsHold) {
  analysis::E8Params params;
  params.deltas = {2, 4};
  params.rounds = 512;
  // The bounds are asserted inside via RRS_CHECK; reaching here means pass.
  Table t = analysis::RunE8EpochBounds(params);
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_LE(CellAsDouble(t, row, 1), CellAsDouble(t, row, 2));
    EXPECT_LE(CellAsDouble(t, row, 4), CellAsDouble(t, row, 5));
  }
}

TEST(ExperimentE13, WeightAwarenessProtectsPremiumService) {
  analysis::E13Params params;
  params.rounds = 512;
  Table t = analysis::RunE13WeightedDrops(params);
  ASSERT_EQ(t.num_rows(), 5u);
  // premium_drops column: weight-aware lazy-greedy (row 2) must drop fewer
  // premium jobs than weight-blind lazy-greedy (row 1).
  EXPECT_LE(CellAsDouble(t, 2, 4), CellAsDouble(t, 1, 4));
  // Its weighted drop cost must also be no worse.
  EXPECT_LE(CellAsDouble(t, 2, 3), CellAsDouble(t, 1, 3));
}

TEST(ExperimentE15, ProofChainConstantsAreSmall) {
  analysis::E15Params params;
  params.num_seeds = 8;
  params.rounds_list = {8, 12};
  Table t = analysis::RunE15ProofPipeline(params);
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    ASSERT_GT(CellAsDouble(t, row, 1), 0.0) << "no seeds completed";
    // The offline chain's blowup over OPT must be a small constant (the
    // proof allows a large one; measured it stays modest).
    EXPECT_LE(CellAsDouble(t, row, 5), 8.0) << "row " << row;
    // The online pipeline's mean ratio stays bounded too.
    EXPECT_LE(CellAsDouble(t, row, 6), 16.0) << "row " << row;
  }
}

TEST(ExperimentE10, AblationVariantsAllRun) {
  analysis::E10Params params;
  params.rounds = 256;
  Table t = analysis::RunE10Ablations(params);
  EXPECT_EQ(t.num_rows(), 12u);  // 6 variants x 2 workloads
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_GE(CellAsDouble(t, row, 4), 0.0);
  }
}

}  // namespace
}  // namespace rrs
