// Tests for src/offline: the exact optimal solver (against hand-computed
// optima and as a floor under every policy), the certified lower bounds, and
// the clairvoyant portfolio bracket.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "offline/bruteforce.h"
#include "offline/clairvoyant.h"
#include "offline/lower_bound.h"
#include "offline/nice_schedule.h"
#include "offline/optimal.h"
#include "sched/registry.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

offline::OptimalResult Solve(const Instance& inst, uint32_t m,
                             uint64_t delta) {
  offline::OptimalOptions options;
  options.num_resources = m;
  options.cost_model.delta = delta;
  return offline::SolveOptimal(inst, options);
}

// -------------------------------------------------------------- Optimal ----

TEST(Optimal, EmptyInstanceIsFree) {
  InstanceBuilder b;
  b.AddColor(2);
  auto r = Solve(b.Build(), 1, 5);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 0u);
}

TEST(Optimal, SingleJobConfigureOrDrop) {
  // One job, delta = 3: dropping (cost 1) beats configuring (cost 3).
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJob(c, 0);
  auto r = Solve(b.Build(), 1, 3);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 1u);
}

TEST(Optimal, ManyJobsJustifyConfiguring) {
  // 5 jobs with D = 8, delta = 3: configure once (3) beats dropping (5).
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJobs(c, 0, 5);
  auto r = Solve(b.Build(), 1, 3);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 3u);
}

TEST(Optimal, CapacityForcesDropsEvenWhenConfigured) {
  // 6 jobs, D = 4, one resource: at most 4 executions fit; cost = Δ + 2.
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJobs(c, 0, 6);
  auto r = Solve(b.Build(), 1, 2);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 2u + 2u);
}

TEST(Optimal, TwoColorsOneResourceConflict) {
  // Two colors, each 4 jobs with D = 4 at round 0, one resource, delta = 1:
  // serve one color fully (1 reconfig + 4 drops of the other) or split
  // 2/2 with 2 reconfigs + 4 drops... serving one color = 1 + 4 = 5;
  // splitting 2+2: cost 2 + 4 = 6. Optimal = 5.
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  auto r = Solve(b.Build(), 1, 1);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 5u);
}

TEST(Optimal, TwoResourcesResolveTheConflict) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  auto r = Solve(b.Build(), 2, 1);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 2u);  // two reconfigs, zero drops
}

TEST(Optimal, ReconfigurationMidStreamWhenWorthIt) {
  // Color A: 3 jobs at round 0 (D=4); color B: 3 jobs at round 4 (D=4).
  // delta = 2: serve A (2), reconfigure to B (2): total 4 < dropping either.
  InstanceBuilder b;
  ColorId a = b.AddColor(4);
  ColorId c = b.AddColor(4);
  b.AddJobs(a, 0, 3);
  b.AddJobs(c, 4, 3);
  auto r = Solve(b.Build(), 1, 2);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 4u);
}

TEST(Optimal, InterleavedUrgencyRequiresChoosing) {
  // An urgent D=1 stream alongside a D=8 backlog, one resource, delta = 1.
  // 4 urgent jobs (rounds 0..3) + 4 backlog jobs at round 0 (deadline 8).
  // One resource can do urgent rounds 0-3 then backlog rounds 4-7:
  // cost = 2 reconfigs = 2.
  InstanceBuilder b;
  ColorId urgent = b.AddColor(1);
  ColorId backlog = b.AddColor(8);
  for (Round t = 0; t < 4; ++t) b.AddJob(urgent, t);
  b.AddJobs(backlog, 0, 4);
  auto r = Solve(b.Build(), 1, 1);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 2u);
}

TEST(Optimal, StateBudgetRespected) {
  // A deliberately wide instance with a 1-state budget must bail out.
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  b.AddJobs(c0, 4, 4);
  offline::OptimalOptions options;
  options.num_resources = 2;
  options.max_states = 1;
  Instance inst = b.Build();
  auto r = offline::SolveOptimal(inst, options);
  EXPECT_FALSE(r.exact);
  // Exhaustion still certifies a bracket: LB <= OPT <= incumbent, with the
  // reported total_cost the (achievable) upper end.
  EXPECT_GT(r.upper_bound, 0u);
  EXPECT_LE(r.lower_bound, r.upper_bound);
  EXPECT_EQ(r.total_cost, r.upper_bound);
  EXPECT_LE(r.states_expanded, 1u);
  CostModel model;
  EXPECT_GE(r.lower_bound, offline::LowerBound(inst, 2, model));
}

TEST(Optimal, IsAFloorUnderEveryPolicy) {
  Rng rng(307);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.4}, {2, 0.4}, {4, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 12;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint64_t delta = 2;
    auto opt = Solve(inst, 1, delta);
    ASSERT_TRUE(opt.exact) << "trial " << trial;
    CostModel model{delta};
    for (const char* name : {"greedy-edf", "lazy-greedy", "static", "never"}) {
      auto policy = MakePolicy(name);
      EngineOptions options;
      options.num_resources = 1;
      options.cost_model = model;
      RunResult r = RunPolicy(inst, *policy, options);
      EXPECT_GE(r.total_cost(model), opt.total_cost)
          << name << " trial " << trial;
    }
  }
}

TEST(Optimal, MoreResourcesNeverHurt) {
  Rng rng(311);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {{2, 0.5}, {4, 0.4}};
    workload::PoissonOptions gen;
    gen.rounds = 10;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    auto m1 = Solve(inst, 1, 2);
    auto m2 = Solve(inst, 2, 2);
    ASSERT_TRUE(m1.exact && m2.exact);
    EXPECT_LE(m2.total_cost, m1.total_cost) << "trial " << trial;
  }
}

// ------------------------------------------- Cross-check & reconstruction ----

TEST(Optimal, AgreesWithIndependentBruteForce) {
  // The DP (canonical states, WLOG prunings) and the brute-force solver
  // (plain exhaustive recursion over ALL configurations, including
  // reconfigurations to idle colors) share no code or representation;
  // agreement over random instances certifies both — and in particular the
  // DP's "reconfigure only to nonidle colors" exchange argument.
  Rng rng(401);
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.5}, {2, 0.4}, {4, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 6;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint64_t delta = 1 + trial % 3;

    auto dp = Solve(inst, 1, delta);
    offline::BruteForceOptions bf_options;
    bf_options.num_resources = 1;
    bf_options.cost_model.delta = delta;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    ASSERT_TRUE(dp.exact);
    if (!bf.has_value()) continue;  // node budget; skip
    EXPECT_EQ(dp.total_cost, *bf) << "trial " << trial;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(Optimal, AgreesWithBruteForceTwoResources) {
  Rng rng(403);
  int checked = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.6}, {2, 0.5}};
    workload::PoissonOptions gen;
    gen.rounds = 5;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    auto dp = Solve(inst, 2, 2);
    offline::BruteForceOptions bf_options;
    bf_options.num_resources = 2;
    bf_options.cost_model.delta = 2;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    ASSERT_TRUE(dp.exact);
    if (!bf.has_value()) continue;
    EXPECT_EQ(dp.total_cost, *bf) << "trial " << trial;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(Optimal, AgreesWithBruteForceUnderVariableDropCosts) {
  // The variable-drop-cost extension: both exact solvers must agree when
  // colors have different drop weights.
  Rng rng(419);
  int checked = 0;
  for (int trial = 0; trial < 15; ++trial) {
    InstanceBuilder b;
    ColorId c0 = b.AddColor(2, "a", 1);
    ColorId c1 = b.AddColor(2, "b", 4);
    for (Round t = 0; t < 6; t += 2) {
      b.AddJobs(c0, t, rng.NextBounded(3));
      b.AddJobs(c1, t, rng.NextBounded(3));
    }
    Instance inst = b.Build();
    if (inst.num_jobs() == 0) continue;
    auto dp = Solve(inst, 1, 2);
    offline::BruteForceOptions bf_options;
    bf_options.num_resources = 1;
    bf_options.cost_model.delta = 2;
    auto bf = offline::SolveBruteForce(inst, bf_options);
    ASSERT_TRUE(dp.exact);
    if (!bf.has_value()) continue;
    EXPECT_EQ(dp.total_cost, *bf) << "trial " << trial;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(Optimal, PrefersProtectingExpensiveColor) {
  // One resource, delta = 10; two colors with 3 jobs each (D = 4) but drop
  // weights 1 vs 5. Serving one color fully costs 10 (reconfig) + 3w of the
  // other; OPT must sacrifice the cheap color: 10 + 3*1 = 13 vs 10 + 15.
  InstanceBuilder b;
  ColorId cheap = b.AddColor(4, "cheap", 1);
  ColorId dear = b.AddColor(4, "dear", 5);
  b.AddJobs(cheap, 0, 3);
  b.AddJobs(dear, 0, 3);
  (void)cheap;
  (void)dear;
  auto r = Solve(b.Build(), 1, 10);
  ASSERT_TRUE(r.exact);
  EXPECT_EQ(r.total_cost, 13u);
}

TEST(Optimal, ReconstructedScheduleValidatesAtOptimalCost) {
  Rng rng(407);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.5}, {2, 0.5}, {4, 0.4}};
    workload::PoissonOptions gen;
    gen.rounds = 10;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint64_t delta = 2;

    offline::OptimalOptions options;
    options.num_resources = 2;
    options.cost_model.delta = delta;
    options.reconstruct_schedule = true;
    auto result = offline::SolveOptimal(inst, options);
    ASSERT_TRUE(result.exact);
    ASSERT_TRUE(result.schedule.has_value());

    auto v = result.schedule->Validate(inst);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    // The independently recomputed cost of the reconstructed schedule must
    // equal the search's optimum exactly.
    EXPECT_EQ(v.cost.total(CostModel{delta}), result.total_cost)
        << "trial " << trial;
  }
}

TEST(Optimal, ReconstructionOnKnownInstance) {
  // 5 jobs D=8, delta=3: OPT configures once and executes everything.
  InstanceBuilder b;
  ColorId c = b.AddColor(8);
  b.AddJobs(c, 0, 5);
  Instance inst = b.Build();
  offline::OptimalOptions options;
  options.num_resources = 1;
  options.cost_model.delta = 3;
  options.reconstruct_schedule = true;
  auto result = offline::SolveOptimal(inst, options);
  ASSERT_TRUE(result.exact && result.schedule.has_value());
  auto v = result.schedule->Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.executed, 5u);
  EXPECT_EQ(v.cost.reconfigurations, 1u);
}

TEST(BruteForce, EmptyInstanceIsFree) {
  InstanceBuilder b;
  b.AddColor(2);
  offline::BruteForceOptions options;
  EXPECT_EQ(offline::SolveBruteForce(b.Build(), options), 0u);
}

TEST(BruteForce, NodeBudgetRespected) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(4);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 4);
  b.AddJobs(c1, 0, 4);
  b.AddJobs(c0, 4, 4);
  b.AddJobs(c1, 4, 4);
  offline::BruteForceOptions options;
  options.num_resources = 2;
  options.max_nodes = 10;
  EXPECT_FALSE(offline::SolveBruteForce(b.Build(), options).has_value());
}

// ------------------------------------------------- Lemma 3.8 construction ----

TEST(NiceSchedule, ExecutesEveryJobOnNiceInputs) {
  // Lemma 3.8, constructively: for rate-limited batched inputs that Par-EDF
  // clears, the block-by-block double-speed construction places every job,
  // and the result passes the independent validator.
  Rng rng(431);
  int built = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<workload::ColorSpec> specs = {
        {1, 0.3}, {2, 0.4}, {4, 0.4}, {8, 0.3}, {16, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 64;
    gen.rate_limited = true;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint32_t m = 2;
    auto result = offline::BuildNiceDoubleSpeedSchedule(inst, m);
    if (!result) continue;  // not nice at this load/seed
    ++built;
    EXPECT_EQ(result->executed, inst.num_jobs());
    auto v = result->schedule.Validate(inst);
    ASSERT_TRUE(v.ok) << "trial " << trial << ": " << v.error;
    EXPECT_EQ(v.cost.drops, 0u);
    EXPECT_EQ(v.executed, inst.num_jobs());
  }
  EXPECT_GE(built, 5) << "too few nice draws; lower the load";
}

TEST(NiceSchedule, RejectsNonNiceInput) {
  // Overload: 10 jobs with D=2 on m=1 cannot be nice.
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 2);
  b.AddJobs(c, 2, 2);
  Instance light = b.Build();
  EXPECT_TRUE(offline::BuildNiceDoubleSpeedSchedule(light, 1).has_value());

  InstanceBuilder b2;
  ColorId c2 = b2.AddColor(4);
  ColorId c3 = b2.AddColor(4);
  b2.AddJobs(c2, 0, 4);
  b2.AddJobs(c3, 0, 4);
  Instance heavy = b2.Build();
  // 8 jobs, 4 executable rounds, m=1 single-speed Par-EDF: drops -> not nice.
  EXPECT_FALSE(offline::BuildNiceDoubleSpeedSchedule(heavy, 1).has_value());
}

TEST(NiceSchedule, RejectsUnbatchedOrNonPow2) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 1);  // unbatched
  EXPECT_FALSE(offline::BuildNiceDoubleSpeedSchedule(b.Build(), 2).has_value());

  InstanceBuilder b2;
  ColorId c2 = b2.AddColor(3);  // not a power of two
  b2.AddJob(c2, 0);
  EXPECT_FALSE(
      offline::BuildNiceDoubleSpeedSchedule(b2.Build(), 2).has_value());
}

TEST(NiceSchedule, EmptyInstance) {
  InstanceBuilder b;
  b.AddColor(2);
  auto result = offline::BuildNiceDoubleSpeedSchedule(b.Build(), 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->executed, 0u);
}

TEST(NiceSchedule, MixedDelayBoundsInterleave) {
  // A dense but nice mix across 4 delay bounds on m = 2; every job placed.
  InstanceBuilder b;
  ColorId c1 = b.AddColor(1);
  ColorId c2 = b.AddColor(2);
  ColorId c4 = b.AddColor(4);
  ColorId c8 = b.AddColor(8);
  for (Round t = 0; t < 16; ++t) b.AddJob(c1, t);
  for (Round t = 0; t < 16; t += 2) b.AddJob(c2, t);
  for (Round t = 0; t < 16; t += 4) b.AddJobs(c4, t, 2);
  b.AddJobs(c8, 0, 4);
  b.AddJobs(c8, 8, 4);
  Instance inst = b.Build();
  ASSERT_TRUE(inst.IsRateLimited());
  // Offered load is 2.5 jobs/round; m = 3 keeps Par-EDF drop-free.
  auto result = offline::BuildNiceDoubleSpeedSchedule(inst, 3);
  ASSERT_TRUE(result.has_value()) << "input unexpectedly not nice";
  auto v = result->schedule.Validate(inst);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.cost.drops, 0u);
}

// ---------------------------------------------------------- LowerBound ----

TEST(LowerBound, ColorLegCountsMinPerColor) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(8);
  ColorId c1 = b.AddColor(8);
  b.AddJobs(c0, 0, 2);   // min(2, 5) = 2
  b.AddJobs(c1, 0, 9);   // min(9, 5) = 5
  Instance inst = b.Build();
  CostModel model{5};
  EXPECT_EQ(offline::ColorLowerBound(inst, model), 7u);
}

TEST(LowerBound, DropLegMatchesParEdf) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 10);
  Instance inst = b.Build();
  EXPECT_EQ(offline::DropLowerBound(inst, 1), 8u);
}

TEST(LowerBound, NeverExceedsExactOptimal) {
  Rng rng(313);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.5}, {2, 0.5}, {4, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 12;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint64_t delta = 3;
    auto opt = Solve(inst, 1, delta);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(offline::LowerBound(inst, 1, CostModel{delta}), opt.total_cost)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------- Clairvoyant ----

TEST(Clairvoyant, NeverBelowExactOptimal) {
  Rng rng(317);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<workload::ColorSpec> specs = {{1, 0.5}, {2, 0.5}, {4, 0.3}};
    workload::PoissonOptions gen;
    gen.rounds = 12;
    gen.seed = rng.Next();
    Instance inst = MakePoisson(specs, gen);
    const uint64_t delta = 2;
    CostModel model{delta};
    auto opt = Solve(inst, 1, delta);
    ASSERT_TRUE(opt.exact);
    auto heuristic = offline::ClairvoyantCost(inst, 1, model);
    EXPECT_GE(heuristic.total_cost, opt.total_cost) << "trial " << trial;
    EXPECT_GE(heuristic.total_cost,
              offline::LowerBound(inst, 1, model))
        << "trial " << trial;
    EXPECT_FALSE(heuristic.best_policy.empty());
  }
}

TEST(Clairvoyant, BracketOrdering) {
  // LB <= Clairvoyant on larger instances too (no exact solve needed).
  std::vector<workload::ColorSpec> specs = {
      {2, 1.0}, {4, 1.0}, {8, 0.5}, {16, 0.5}};
  workload::PoissonOptions gen;
  gen.rounds = 256;
  gen.seed = 331;
  Instance inst = MakePoisson(specs, gen);
  CostModel model{4};
  for (uint32_t m : {1u, 2u, 4u}) {
    EXPECT_LE(offline::LowerBound(inst, m, model),
              offline::ClairvoyantCost(inst, m, model).total_cost)
        << "m=" << m;
  }
}

}  // namespace
}  // namespace rrs
