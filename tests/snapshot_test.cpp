// Checkpoint/restore suite for the snapshot codec and every session core:
// the codec must round-trip values and reject corrupted/truncated/misordered
// streams loudly, and Snapshot → Restore into a *different* session object
// must continue bit-identically to the uninterrupted run — the property the
// chaos fleet's migration paths stand on.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "reduce/distribute.h"
#include "reduce/online.h"
#include "reduce/pipeline.h"
#include "reduce/varbatch.h"
#include "sched/registry.h"
#include "snapshot/codec.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance SnapshotTenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

EngineOptions SnapshotOptions() {
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  return options;
}

void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  EXPECT_EQ(got.cost.drops, want.cost.drops) << label;
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  EXPECT_EQ(got.drops_per_color, want.drops_per_color) << label;
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

// ---- Codec ---------------------------------------------------------------

TEST(SnapshotCodec, RoundTripsScalarsAndVectors) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagRng);
  w.PutU64(~0ULL);
  w.PutU32(0xdeadbeefu);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);
  std::vector<uint32_t> v32 = {1, 2, 3};
  std::vector<int64_t> v64 = {-1, 0, 7};
  w.PutVec(v32);
  w.PutVec(v64);
  w.EndSection();

  snapshot::Reader r(w.words());
  r.BeginSection(snapshot::kTagRng);
  EXPECT_EQ(r.GetU64(), ~0ULL);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  std::vector<uint32_t> got32;
  std::vector<int64_t> got64;
  r.GetVec(got32);
  r.GetVec(got64);
  EXPECT_EQ(got32, v32);
  EXPECT_EQ(got64, v64);
  r.EndSection();
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodec, MultipleSectionsReadBackInOrder) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(1);
  w.EndSection();
  w.BeginSection(snapshot::kTagLruTracker);
  w.PutU64(2);
  w.EndSection();

  snapshot::Reader r(w.words());
  r.BeginSection(snapshot::kTagEngine);
  EXPECT_EQ(r.GetU64(), 1u);
  r.EndSection();
  r.BeginSection(snapshot::kTagLruTracker);
  EXPECT_EQ(r.GetU64(), 2u);
  r.EndSection();
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodec, ClearKeepsHeaderAndDropsSections) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(99);
  w.EndSection();
  w.Clear();
  EXPECT_EQ(w.words().size(), 2u);  // magic + version only
  snapshot::Reader r(w.words());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodecDeath, RejectsBadMagic) {
  std::vector<uint64_t> words = {0x1234, snapshot::kVersion};
  EXPECT_DEATH(snapshot::Reader r(words), "magic");
}

TEST(SnapshotCodecDeath, RejectsBadVersion) {
  std::vector<uint64_t> words = {snapshot::kMagic, snapshot::kVersion + 1};
  EXPECT_DEATH(snapshot::Reader r(words), "version");
}

// Version skew is directional: a snapshot stamped *newer* than this reader
// comes from a future writer (mixed-version worker pool shipping
// checkpoints backwards) and must be named as such, not as a generic
// mismatch — the operator needs to know which side to upgrade.
TEST(SnapshotCodecDeath, FutureVersionGetsDirectionalDiagnostic) {
  std::vector<uint64_t> words = {snapshot::kMagic, snapshot::kVersion + 1};
  EXPECT_DEATH(snapshot::Reader r(words), "future codec version");
  std::vector<uint64_t> far_future = {snapshot::kMagic,
                                      snapshot::kVersion + 1000};
  EXPECT_DEATH(snapshot::Reader r(far_future),
               "refusing to guess at a newer format");
}

// Corruption of the *first* payload word of a section: the checksum must
// catch damage at word 0, not just in the tail (an off-by-one in the
// checksum span would skip exactly this word).
TEST(SnapshotCodecDeath, RejectsCorruptionAtPayloadWordZero) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(7);
  w.PutU64(8);
  w.EndSection();
  std::vector<uint64_t> words = w.words();
  // Layout: magic, version, tag, count, checksum, payload[0], payload[1].
  words[5] ^= 1;  // payload word 0
  EXPECT_DEATH(
      {
        snapshot::Reader r(words);
        r.BeginSection(snapshot::kTagEngine);
      },
      "checksum");
}

// A section truncated so hard that not even payload word 0 survives: the
// declared count overruns the stream and the reader must say "truncated",
// never index past the end.
TEST(SnapshotCodecDeath, RejectsSectionTruncatedAtWordZero) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(7);
  w.PutU64(8);
  w.EndSection();
  std::vector<uint64_t> words = w.words();
  words.resize(5);  // keep tag/count/checksum, drop the whole payload
  EXPECT_DEATH(
      {
        snapshot::Reader r(words);
        r.BeginSection(snapshot::kTagEngine);
      },
      "truncated inside section");
}

TEST(SnapshotCodecDeath, RejectsCorruptedPayload) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(7);
  w.PutU64(8);
  w.EndSection();
  std::vector<uint64_t> words = w.words();
  words.back() ^= 1;  // flip a payload bit
  EXPECT_DEATH(
      {
        snapshot::Reader r(words);
        r.BeginSection(snapshot::kTagEngine);
      },
      "checksum");
}

TEST(SnapshotCodecDeath, RejectsTruncatedStream) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(7);
  w.PutU64(8);
  w.EndSection();
  std::vector<uint64_t> words = w.words();
  words.pop_back();
  EXPECT_DEATH(
      {
        snapshot::Reader r(words);
        r.BeginSection(snapshot::kTagEngine);
      },
      "truncated");
}

TEST(SnapshotCodecDeath, RejectsSectionOrderDrift) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.EndSection();
  EXPECT_DEATH(
      {
        snapshot::Reader r(w.words());
        r.BeginSection(snapshot::kTagStreamEngine);
      },
      "order mismatch");
}

TEST(SnapshotCodecDeath, RejectsUnderconsumedSection) {
  snapshot::Writer w;
  w.BeginSection(snapshot::kTagEngine);
  w.PutU64(7);
  w.EndSection();
  EXPECT_DEATH(
      {
        snapshot::Reader r(w.words());
        r.BeginSection(snapshot::kTagEngine);
        r.EndSection();
      },
      "not fully consumed");
}

// ---- Rng -----------------------------------------------------------------

TEST(SnapshotRng, RestoredRngContinuesTheExactStream) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) rng.Next();
  const auto state = rng.SaveState();

  Rng restored(999);  // different seed, fully overwritten by LoadState
  restored.LoadState(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.Next(), rng.Next()) << "draw " << i;
  }
}

// ---- Engine: snapshot mid-run, restore on another session ----------------

class EngineSnapshotEveryPolicy
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineSnapshotEveryPolicy, RestoredRunFinishesBitIdentically) {
  const std::string name = GetParam();
  Instance instance = SnapshotTenant(7);
  EngineOptions options = SnapshotOptions();

  // Uninterrupted oracle.
  auto oracle_policy = MakePolicy(name);
  ASSERT_NE(oracle_policy, nullptr) << name;
  RunResult oracle = RunPolicy(instance, *oracle_policy, options);

  for (Round cut : {Round{1}, Round{17}, Round{64}}) {
    // Run to the cut, snapshot, keep stepping the original to the end.
    Engine engine;
    engine.Reset(instance, options);
    auto policy = MakePolicy(name);
    engine.BeginRun(*policy);
    engine.StepRounds(cut);
    snapshot::Writer w;
    engine.SnapshotRun(w);
    while (engine.StepRounds(64)) {
    }
    RunResult original;
    engine.FinishRun(original);
    ExpectSameRunResult(original, oracle, name + " original");

    // Restore into a *different* engine + policy object (worker migration)
    // and finish from the cut.
    Engine migrated;
    migrated.Reset(instance, options);
    auto policy2 = MakePolicy(name);
    snapshot::Reader r(w.words());
    migrated.RestoreRun(*policy2, r);
    EXPECT_TRUE(r.AtEnd()) << name;
    EXPECT_EQ(migrated.next_round(), cut) << name;
    while (migrated.StepRounds(64)) {
    }
    RunResult resumed;
    migrated.FinishRun(resumed);
    ExpectSameRunResult(resumed, oracle,
                        name + " restored at " + std::to_string(cut));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EngineSnapshotEveryPolicy,
                         ::testing::ValuesIn(PolicyNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EngineSnapshot, SnapshotOfRestoredSessionIsIdentical) {
  // Snapshot determinism: re-snapshotting a restored session at the same
  // round produces the same words — checkpoints of checkpoints are stable.
  Instance instance = SnapshotTenant(11);
  EngineOptions options = SnapshotOptions();

  Engine engine;
  engine.Reset(instance, options);
  auto policy = MakePolicy("dlru-edf");
  engine.BeginRun(*policy);
  engine.StepRounds(23);
  snapshot::Writer first;
  engine.SnapshotRun(first);

  Engine restored;
  restored.Reset(instance, options);
  auto policy2 = MakePolicy("dlru-edf");
  snapshot::Reader r(first.words());
  restored.RestoreRun(*policy2, r);
  snapshot::Writer second;
  restored.SnapshotRun(second);
  EXPECT_EQ(first.words(), second.words());
}

TEST(EngineSnapshot, RestoreWorksAcrossPriorSessionShapes) {
  // Restoring onto an engine whose arena grew for a *larger* earlier tenant
  // must still be exact (oversized buffers, wheel resized down).
  Instance big = SnapshotTenant(3, 512);
  Instance small = SnapshotTenant(5, 64);
  EngineOptions options = SnapshotOptions();

  auto oracle_policy = MakePolicy("dlru-edf");
  RunResult oracle = RunPolicy(small, *oracle_policy, options);

  Engine donor;
  donor.Reset(small, options);
  auto policy = MakePolicy("dlru-edf");
  donor.BeginRun(*policy);
  donor.StepRounds(9);
  snapshot::Writer w;
  donor.SnapshotRun(w);
  donor.AbortRun();

  Engine grown;
  grown.Reset(big, options);
  auto big_policy = MakePolicy("dlru-edf");
  RunResult ignored = grown.Run(*big_policy);
  (void)ignored;

  grown.Reset(small, options);
  auto policy2 = MakePolicy("dlru-edf");
  snapshot::Reader r(w.words());
  grown.RestoreRun(*policy2, r);
  while (grown.StepRounds(64)) {
  }
  RunResult resumed;
  grown.FinishRun(resumed);
  ExpectSameRunResult(resumed, oracle, "restore into grown arena");
}

// ---- StreamEngine --------------------------------------------------------

std::vector<std::pair<ColorId, uint64_t>> RoundArrivals(
    const Instance& instance, Round k) {
  std::vector<std::pair<ColorId, uint64_t>> arrivals;
  auto jobs = instance.jobs_in_round(k);
  size_t i = 0;
  while (i < jobs.size()) {
    ColorId c = jobs[i].color;
    uint64_t count = 0;
    while (i < jobs.size() && jobs[i].color == c) {
      ++count;
      ++i;
    }
    arrivals.emplace_back(c, count);
  }
  return arrivals;
}

TEST(StreamEngineSnapshot, RestoredStreamContinuesBitIdentically) {
  Instance instance = SnapshotTenant(21);
  std::vector<Round> bounds;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    bounds.push_back(instance.delay_bound(c));
  }
  EngineOptions options = SnapshotOptions();

  auto policy = MakePolicy("dlru-edf");
  StreamEngine original(bounds, *policy, options);
  const Round cut = 31;
  for (Round k = 0; k < cut; ++k) original.Step(RoundArrivals(instance, k));

  snapshot::Writer w;
  original.SaveState(w);

  auto policy2 = MakePolicy("dlru-edf");
  StreamEngine restored(bounds, *policy2, options);
  snapshot::Reader r(w.words());
  restored.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.current_round(), cut);

  // Every subsequent round's outcome must match element for element.
  for (Round k = cut; k < instance.num_request_rounds(); ++k) {
    auto arrivals = RoundArrivals(instance, k);
    const RoundOutcome& a = original.Step(arrivals);
    const RoundOutcome& b = restored.Step(arrivals);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.reconfigs, b.reconfigs) << "round " << k;
    EXPECT_EQ(a.executions, b.executions) << "round " << k;
    EXPECT_EQ(a.drops, b.drops) << "round " << k;
  }
  original.Finish();
  restored.Finish();
  EXPECT_EQ(original.cost().reconfigurations,
            restored.cost().reconfigurations);
  EXPECT_EQ(original.cost().drops, restored.cost().drops);
  EXPECT_EQ(original.executed(), restored.executed());
  EXPECT_EQ(original.arrived(), restored.arrived());
}

// ---- OnlineSolver --------------------------------------------------------

TEST(OnlineSolverSnapshot, RestoredSolverContinuesBitIdentically) {
  Instance instance = SnapshotTenant(33, 80);
  if (instance.num_jobs() == 0) GTEST_SKIP();
  EngineOptions options = SnapshotOptions();

  auto varbatch = reduce::VarBatchInstance(instance);
  auto distribute = reduce::DistributeInstance(varbatch.transformed);
  std::vector<reduce::OnlineSolver::ColorSpec> colors;
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    colors.push_back(
        {instance.delay_bound(c), distribute.subcolors_per_color[c]});
  }

  reduce::OnlineSolver original(colors, options);
  const Round cut = 29;
  for (Round k = 0; k < cut; ++k) original.Step(RoundArrivals(instance, k));

  snapshot::Writer w;
  original.SaveState(w);

  reduce::OnlineSolver restored(colors, options);
  snapshot::Reader r(w.words());
  restored.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.current_round(), cut);

  for (Round k = cut; k < instance.num_request_rounds(); ++k) {
    auto arrivals = RoundArrivals(instance, k);
    original.Step(arrivals);
    restored.Step(arrivals);
  }
  original.Finish();
  restored.Finish();
  EXPECT_EQ(original.cost().reconfigurations,
            restored.cost().reconfigurations);
  EXPECT_EQ(original.cost().drops, restored.cost().drops);
  EXPECT_EQ(original.arrived(), restored.arrived());
  EXPECT_EQ(original.executed(), restored.executed());
}

// ---- PipelineSession -----------------------------------------------------

TEST(PipelineSessionSnapshot, RestoredSessionMatchesAndKeepsCounting) {
  Instance a = SnapshotTenant(41, 64);
  Instance b = SnapshotTenant(43, 64);
  EngineOptions options = SnapshotOptions();

  reduce::PipelineSession original;
  original.SolveOnline(a, options);
  original.SolveOnline(b, options);

  snapshot::Writer w;
  original.SaveState(w);

  reduce::PipelineSession restored;
  snapshot::Reader r(w.words());
  restored.LoadState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.tenants_served(), original.tenants_served());

  // Both sessions solve the next tenant identically (the arena is capacity,
  // not state).
  const reduce::PipelineResult& x = original.SolveOnline(a, options);
  const CostBreakdown cx = x.cost();
  const reduce::PipelineResult& y = restored.SolveOnline(a, options);
  const CostBreakdown cy = y.cost();
  EXPECT_EQ(cx.reconfigurations, cy.reconfigurations);
  EXPECT_EQ(cx.drops, cy.drops);
  EXPECT_EQ(original.tenants_served(), restored.tenants_served());
}

}  // namespace
}  // namespace rrs
