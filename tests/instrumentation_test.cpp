// Tests for the instrumentation layer: the ΔLRU-EDF invariant checker, the
// Section 3.4 super-epoch tracker (Corollary 3.2), the sweep harness, and
// trace statistics.
#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "core/engine.h"
#include "sched/dlru.h"
#include "sched/dlru_edf.h"
#include "sched/edf.h"
#include "sched/invariant_checker.h"
#include "sched/super_epoch.h"
#include "util/rng.h"
#include "workload/adversary.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"
#include "workload/trace_stats.h"

namespace rrs {
namespace {

Instance InstrumentationWorkload(uint64_t seed) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.6}, {4, 0.6}, {8, 0.4}, {8, 0.4}, {16, 0.3}, {32, 0.2}};
  workload::BurstyOptions gen;
  gen.rounds = 512;
  gen.rate_limited = true;
  gen.p_off_to_on = 0.05;
  gen.p_on_to_off = 0.12;
  gen.seed = seed;
  return MakeBursty(specs, gen);
}

// ------------------------------------------------- InvariantChecking ----

class InvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantSweep, DlruEdfInvariantsHoldEveryRound) {
  Instance instance = InstrumentationWorkload(GetParam());
  DlruEdfPolicy inner;
  InvariantCheckingPolicy checked(inner, /*lru_slots_den=*/4);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  RunResult r = RunPolicy(instance, checked, options);
  EXPECT_GT(checked.checks_performed(), 0u);
  EXPECT_EQ(r.executed + r.cost.drops, r.arrived);
  // The wrapper's counter is registered via ExportMetrics and lands in the
  // structured telemetry at every obs level.
  EXPECT_EQ(r.telemetry.counters["invariant_checks"],
            static_cast<double>(checked.checks_performed()));
}

TEST_P(InvariantSweep, DlruInvariantsHold) {
  Instance instance = InstrumentationWorkload(GetParam() + 100);
  DlruPolicy inner;
  InvariantCheckingPolicy checked(inner, /*lru_slots_den=*/2);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  RunPolicy(instance, checked, options);
  EXPECT_GT(checked.checks_performed(), 0u);
}

TEST_P(InvariantSweep, EdfInvariantsHold) {
  Instance instance = InstrumentationWorkload(GetParam() + 200);
  EdfPolicy inner(true);
  InvariantCheckingPolicy checked(inner);  // no LRU invariant for pure EDF
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  RunPolicy(instance, checked, options);
  EXPECT_GT(checked.checks_performed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(InvariantChecking, HoldsOnAdversarialInputs) {
  auto adv_a = workload::MakeDlruAdversary(4, 2, 3, 8);
  auto adv_b = workload::MakeEdfAdversary(4, 5, 3, 8);
  for (const Instance* inst : {&adv_a.instance, &adv_b.instance}) {
    DlruEdfPolicy inner;
    InvariantCheckingPolicy checked(inner, 4);
    EngineOptions options;
    options.num_resources = 4;
    options.cost_model.delta = 3;
    RunPolicy(*inst, checked, options);
    EXPECT_GT(checked.checks_performed(), 0u);
  }
}

TEST(InvariantChecking, EvictFirstVariantAlsoHolds) {
  Instance instance = InstrumentationWorkload(42);
  DlruEdfPolicy::Params params;
  params.exit_policy = LruExitPolicy::kEvictFirst;
  DlruEdfPolicy inner(params);
  InvariantCheckingPolicy checked(inner, 4);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  RunPolicy(instance, checked, options);
  EXPECT_GT(checked.checks_performed(), 0u);
}

// ----------------------------------------------------- Super-epochs ----

class SuperEpochSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuperEpochSweep, Corollary32OverlapBound) {
  Instance instance = InstrumentationWorkload(GetParam() + 300);
  // n = 8 with the paper's n = 4m coupling -> m = 2.
  InstrumentedDlruEdfPolicy policy(/*m=*/2);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  RunResult r = RunPolicy(instance, policy, options);
  (void)r;
  // Corollary 3.2: at most three epochs of any color overlap any
  // (complete) super-epoch.
  if (policy.super_epochs_completed() > 0) {
    EXPECT_LE(policy.max_epochs_overlapping_super_epoch(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperEpochSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(SuperEpoch, CompletesSuperEpochsUnderChurn) {
  // Many colors wrapping repeatedly must close super-epochs.
  std::vector<workload::ColorSpec> specs;
  for (int i = 0; i < 12; ++i) specs.push_back({4, 1.5});
  workload::PoissonOptions gen;
  gen.rounds = 512;
  gen.rate_limited = true;
  gen.seed = 9;
  Instance instance = MakePoisson(specs, gen);

  InstrumentedDlruEdfPolicy policy(/*m=*/2);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  RunResult r = RunPolicy(instance, policy, options);
  EXPECT_GT(policy.super_epochs_completed(), 0u);
  EXPECT_EQ(r.telemetry.counters["super_epochs_completed"],
            static_cast<double>(policy.super_epochs_completed()));
  EXPECT_EQ(r.telemetry.counters["max_epochs_per_super_epoch"],
            static_cast<double>(policy.max_epochs_overlapping_super_epoch()));
}

TEST(SuperEpoch, NoSuperEpochWithoutTimestampChurn) {
  // A single color can never complete a super-epoch with m >= 1 (needs 2m
  // distinct colors).
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  for (Round t = 0; t < 64; t += 4) b.AddJobs(c, t, 4);
  Instance instance = b.Build();
  InstrumentedDlruEdfPolicy policy(/*m=*/1);
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 2;
  RunPolicy(instance, policy, options);
  EXPECT_EQ(policy.super_epochs_completed(), 0u);
}

// ------------------------------------------------------------ Sweep ----

TEST(Sweep, GridShapeAndMonotonicity) {
  analysis::SweepConfig config;
  config.ns = {4, 8, 16};
  config.deltas = {4};
  config.seeds = {1, 2, 3};
  auto factory = [](uint64_t seed) {
    workload::RouterOptions gen;
    gen.rounds = 256;
    gen.seed = seed;
    return MakeRouterScenario(workload::DefaultRouterServices(), gen);
  };
  auto cells = analysis::RunCostSweep(factory, config);
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.seeds, 3u);
    EXPECT_GE(cell.mean_total, 0.0);
    EXPECT_LE(cell.mean_drop_rate, 1.0);
  }
  // More resources must not increase the drop rate on this loaded workload.
  EXPECT_GE(cells[0].mean_drops, cells[2].mean_drops);
}

TEST(Sweep, TableRendering) {
  analysis::SweepConfig config;
  config.ns = {8};
  config.deltas = {2, 8};
  config.seeds = {1};
  auto factory = [](uint64_t seed) {
    std::vector<workload::ColorSpec> specs = {{2, 1.0}, {8, 0.5}};
    workload::PoissonOptions gen;
    gen.rounds = 64;
    gen.seed = seed;
    return MakePoisson(specs, gen);
  };
  Table table = analysis::CostSweepTable(factory, config);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_cols(), 8u);
}

// ------------------------------------------------------ TraceStats ----

TEST(TraceStats, HandComputedValues) {
  InstanceBuilder b;
  ColorId c0 = b.AddColor(2);
  ColorId c1 = b.AddColor(4);
  b.AddJobs(c0, 0, 2);
  b.AddJobs(c0, 2, 4);
  b.AddJob(c1, 0);
  Instance inst = b.Build();

  auto stats = workload::ComputeTraceStats(inst);
  EXPECT_EQ(stats.total_jobs, 7u);
  EXPECT_EQ(stats.request_rounds, 3);
  ASSERT_EQ(stats.colors.size(), 2u);
  EXPECT_EQ(stats.colors[0].jobs, 6u);
  EXPECT_EQ(stats.colors[0].peak_round, 4u);
  EXPECT_EQ(stats.colors[0].peak_window, 4u);  // windows [0,2), [2,4)
  EXPECT_EQ(stats.colors[1].peak_window, 1u);
  EXPECT_GT(stats.colors[0].burstiness, 0.0);
  EXPECT_GE(stats.min_feasible_resources, 3u);  // 7 jobs / 3 rounds
}

TEST(TraceStats, SmoothTrafficHasLowBurstiness) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  for (Round t = 0; t < 64; ++t) b.AddJob(c, t);
  auto stats = workload::ComputeTraceStats(b.Build());
  EXPECT_NEAR(stats.colors[0].burstiness, 0.0, 1e-9);
  EXPECT_EQ(stats.colors[0].peak_round, 1u);
}

TEST(TraceStats, ToStringMentionsColors) {
  workload::RouterOptions gen;
  gen.rounds = 64;
  Instance inst =
      MakeRouterScenario(workload::DefaultRouterServices(), gen);
  std::string s = workload::ComputeTraceStats(inst).ToString();
  EXPECT_NE(s.find("color 0"), std::string::npos);
  EXPECT_NE(s.find("burstiness"), std::string::npos);
}

}  // namespace
}  // namespace rrs
