// Distributed fleet differential suite (fleet/dist/): the multi-process
// controller/worker fabric must be observationally identical to a
// single-engine run of the same tenants —
//
//   - per-tenant RunResults (cost, executions, drops, telemetry counters)
//     bit-identical to the fresh-engine oracle at 1/2/4 workers, any worker
//     thread count;
//   - live migration at any cut point, for every registry policy, leaves
//     results, SLO windows, and golden trace digests exactly as if the
//     tenant had never moved (quiesce → snapshot → ship → restore);
//   - killing a worker and failing its tenants over from the checkpoint
//     stream (or restarting them from scratch) is invisible in the results:
//     deterministic re-execution converges on the same bits.
//
// The protocol layer is round-tripped directly, and the controller/worker
// metrics endpoints are scraped over real HTTP.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "fleet/dist/controller.h"
#include "fleet/dist/protocol.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "obs/export_server.h"
#include "sched/registry.h"
#include "util/sha256.h"
#include "workload/arrival_source.h"
#include "workload/generator_spec.h"
#include "workload/memctrl.h"
#include "workload/synthetic.h"

namespace rrs {
namespace fleet {
namespace dist {
namespace {

Instance DistTenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

EngineOptions TestOptions() {
  EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 3;
  return options;
}

void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  EXPECT_EQ(got.cost.drops, want.cost.drops) << label;
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  EXPECT_EQ(got.drops_per_color, want.drops_per_color) << label;
  EXPECT_EQ(got.telemetry.drops, want.telemetry.drops) << label;
  EXPECT_EQ(got.telemetry.executed, want.telemetry.executed) << label;
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

// The golden-trace fold (tests/golden_trace_test.cpp TraceDigest), computed
// on a plain single-process engine — the oracle the controller's
// migration-proof digest fold must reproduce bit for bit.
std::string OracleDigest(const Instance& instance,
                         const std::string& policy) {
  auto p = MakePolicy(policy);
  Engine engine(instance, TestOptions());
  engine.BeginRun(*p);
  Sha256 hash;
  bool more = true;
  while (more) {
    more = engine.StepRounds(1);
    hash.UpdateU64(static_cast<uint64_t>(engine.next_round()));
    const CostBreakdown& cost = engine.run_cost();
    hash.UpdateU64(cost.reconfigurations);
    hash.UpdateU64(cost.drops);
    hash.UpdateU64(cost.weighted_drops);
    hash.UpdateU64(engine.run_executed());
  }
  RunResult result;
  engine.FinishRun(result);
  hash.UpdateU64(result.arrived);
  hash.UpdateU64(result.executed);
  for (uint64_t d : result.drops_per_color) hash.UpdateU64(d);
  return hash.FinishHex();
}

struct DistRun {
  std::vector<RunResult> results;
  std::vector<std::string> digests;
  SloTracker::Snapshot slo;
  DistStats stats;
};

DistRun RunDistFleet(
    const std::vector<Instance>& tenants, const std::string& policy,
    size_t workers, uint32_t threads = 0,
    const std::function<void(DistController&)>& plan = nullptr,
    uint32_t checkpoint_interval = 0) {
  DistOptions options;
  options.num_workers = workers;
  options.worker.policy = policy;
  options.worker.rounds_per_tick = 1;
  options.worker.threads = threads;
  options.worker.report_slo = true;
  options.worker.report_trace = true;
  options.worker.checkpoint_interval_ticks = checkpoint_interval;
  options.track_slo = true;
  options.trace_digests = true;
  options.slo.window_rounds = 16;
  options.slo.miss_budget = 2;
  DistController controller(std::move(options));
  std::string error;
  EXPECT_TRUE(controller.Start(&error)) << error;
  std::vector<FleetJob> jobs(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    jobs[t].instance = &tenants[t];
    jobs[t].options = TestOptions();
  }
  controller.AddJobs(jobs);
  if (plan) plan(controller);
  DistRun run;
  run.results = controller.Run();
  for (size_t t = 0; t < tenants.size(); ++t) {
    run.digests.push_back(controller.trace_digest(t));
  }
  run.slo = controller.slo()->SnapshotTotals();
  run.stats = controller.stats();
  controller.Shutdown();
  return run;
}

void ExpectSameSloTotals(const SloTracker::Snapshot& got,
                         const SloTracker::Snapshot& want,
                         const std::string& label) {
  EXPECT_EQ(got.observations, want.observations) << label;
  EXPECT_EQ(got.rounds, want.rounds) << label;
  EXPECT_EQ(got.misses, want.misses) << label;
  EXPECT_EQ(got.windows_closed, want.windows_closed) << label;
  EXPECT_EQ(got.windows_breached, want.windows_breached) << label;
  EXPECT_EQ(got.exhausted_events, want.exhausted_events) << label;
  EXPECT_EQ(got.tenants_seen, want.tenants_seen) << label;
  EXPECT_EQ(got.tenants_finished, want.tenants_finished) << label;
  EXPECT_EQ(got.tenants_out_of_budget, want.tenants_out_of_budget) << label;
}

// Streaming counterpart of DistTenant: the GeneratorSpec whose local
// instantiation materializes to DistTenant's byte-identical instance.
workload::GeneratorSpec DistTenantSpec(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return workload::PoissonSpec(specs, gen);
}

// Same shape as RunDistFleet, but over caller-built jobs (streaming tenants
// and mixed fleets).
DistRun RunDistFleetJobs(
    const std::vector<FleetJob>& jobs, const std::string& policy,
    size_t workers, uint32_t threads = 0,
    const std::function<void(DistController&)>& plan = nullptr,
    uint32_t checkpoint_interval = 0) {
  DistOptions options;
  options.num_workers = workers;
  options.worker.policy = policy;
  options.worker.rounds_per_tick = 1;
  options.worker.threads = threads;
  options.worker.report_slo = true;
  options.worker.report_trace = true;
  options.worker.checkpoint_interval_ticks = checkpoint_interval;
  options.track_slo = true;
  options.trace_digests = true;
  options.slo.window_rounds = 16;
  options.slo.miss_budget = 2;
  DistController controller(std::move(options));
  std::string error;
  EXPECT_TRUE(controller.Start(&error)) << error;
  controller.AddJobs(jobs);
  if (plan) plan(controller);
  DistRun run;
  run.results = controller.Run();
  for (size_t t = 0; t < jobs.size(); ++t) {
    run.digests.push_back(controller.trace_digest(t));
  }
  run.slo = controller.slo()->SnapshotTotals();
  run.stats = controller.stats();
  controller.Shutdown();
  return run;
}

// ---- Protocol round-trips ------------------------------------------------

TEST(DistProtocol, SourceTableRoundTripsAndRebuildsIdenticalSources) {
  const workload::GeneratorSpec poisson = DistTenantSpec(9);
  workload::MemctrlOptions mem;
  mem.rounds = 64;
  mem.refresh_period = 16;
  mem.refresh_length = 2;
  mem.seed = 5;
  const workload::GeneratorSpec memctrl = workload::MemctrlSpec(mem);
  snapshot::Writer w;
  PutSourceTable(w, {&poisson, &memctrl}, 7);
  snapshot::Reader r(w.words());
  std::vector<std::pair<uint32_t, workload::GeneratorSpec>> decoded;
  GetSourceTable(r, &decoded);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].first, 7u);
  EXPECT_EQ(decoded[1].first, 8u);
  EXPECT_EQ(decoded[0].second, poisson);
  EXPECT_EQ(decoded[1].second, memctrl);
  // A worker-side instantiation of the decoded spec drives the engine
  // identically to the controller's local one.
  auto local = workload::MakeSource(poisson);
  auto remote = workload::MakeSource(decoded[0].second);
  auto p1 = MakePolicy("dlru-edf");
  auto p2 = MakePolicy("dlru-edf");
  Engine e1;
  e1.Reset(*local, TestOptions());
  Engine e2;
  e2.Reset(*remote, TestOptions());
  ExpectSameRunResult(e2.Run(*p2), e1.Run(*p1), "decoded source");
}

TEST(DistProtocol, TenantSpecsCarrySourceIds) {
  std::vector<TenantSpec> specs(2);
  specs[0].tenant = 3;
  specs[0].instance_id = 1;
  specs[0].options = WireOptions::From(TestOptions());
  specs[1].tenant = 4;
  specs[1].source_id = 9;
  snapshot::Writer w;
  PutTenantSpecs(w, specs);
  snapshot::Reader r(w.words());
  std::vector<TenantSpec> got;
  GetTenantSpecs(r, &got);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].source_id, kNoSourceId);
  EXPECT_EQ(got[0].instance_id, 1u);
  EXPECT_EQ(got[1].source_id, 9u);
  EXPECT_EQ(got[1].tenant, 4u);
}

TEST(DistProtocol, ConfigRoundTrips) {
  WireConfig config;
  config.rounds_per_tick = 17;
  config.max_live_sessions = 5;
  config.threads = 3;
  config.collect_results = false;
  config.report_slo = true;
  config.report_trace = true;
  config.checkpoint_interval_ticks = 9;
  config.serve_metrics = true;
  config.policy = "greedy-edf";
  snapshot::Writer w;
  PutConfig(w, config);
  snapshot::Reader r(w.words());
  const WireConfig got = GetConfig(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(got.rounds_per_tick, 17);
  EXPECT_EQ(got.max_live_sessions, 5u);
  EXPECT_EQ(got.threads, 3u);
  EXPECT_FALSE(got.collect_results);
  EXPECT_TRUE(got.report_trace);
  EXPECT_EQ(got.checkpoint_interval_ticks, 9u);
  EXPECT_TRUE(got.serve_metrics);
  EXPECT_EQ(got.policy, "greedy-edf");
}

TEST(DistProtocol, InstanceTableRoundTripsIncludingNamesAndDropCosts) {
  InstanceBuilder builder;
  builder.AddColor(3, "alpha", 2);
  builder.AddColor(7, "beta-with-a-longer-name", 5);
  builder.AddJobs(0, 0, 4);
  builder.AddJobs(1, 2, 1);
  builder.AddJobs(0, 5, 3);
  const Instance original = builder.Build();
  snapshot::Writer w;
  PutInstanceTable(w, {&original}, 11);
  snapshot::Reader r(w.words());
  std::vector<std::pair<uint32_t, Instance>> decoded;
  GetInstanceTable(r, &decoded);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].first, 11u);
  const Instance& got = decoded[0].second;
  ASSERT_EQ(got.num_colors(), original.num_colors());
  for (ColorId c = 0; c < original.num_colors(); ++c) {
    EXPECT_EQ(got.delay_bound(c), original.delay_bound(c));
    EXPECT_EQ(got.drop_cost(c), original.drop_cost(c));
    EXPECT_EQ(got.color_name(c), original.color_name(c));
  }
  ASSERT_EQ(got.jobs().size(), original.jobs().size());
  for (size_t j = 0; j < original.jobs().size(); ++j) {
    EXPECT_EQ(got.jobs()[j], original.jobs()[j]);
  }
  // A decoded instance must drive the engine identically.
  auto p1 = MakePolicy("dlru-edf");
  auto p2 = MakePolicy("dlru-edf");
  const RunResult a = RunPolicy(original, *p1, TestOptions());
  const RunResult b = RunPolicy(got, *p2, TestOptions());
  ExpectSameRunResult(b, a, "decoded instance");
}

TEST(DistProtocol, TickReportRoundTripsAllSections) {
  TickReport report;
  report.tick = 3;
  report.rounds_stepped = 640;
  report.live = 7;
  report.waiting = 2;
  report.tick_wall_ns = 12345;
  TenantResult done;
  done.tenant = 4;
  done.result.cost = {10, 3, 9};
  done.result.executed = 55;
  done.result.arrived = 58;
  done.result.rounds_simulated = 97;
  done.result.drops_per_color = {1, 2, 0};
  done.result.telemetry.drops = 3;
  done.result.telemetry.counters["policy.recolor_scans"] = 42.0;
  report.completed.push_back(done);
  report.slo = {{1, 64, 2}, {2, 64, 0}};
  report.trace = {{1, 63, 4, 2, 6, 50}, {1, 64, 4, 2, 6, 51}};
  report.checkpoints.push_back({2, 64, {9, 8, 7}});
  snapshot::Writer w;
  PutTickReport(w, report);
  snapshot::Reader r(w.words());
  TickReport got;
  GetTickReport(r, &got);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(got.tick, 3u);
  EXPECT_EQ(got.rounds_stepped, 640u);
  EXPECT_EQ(got.live, 7u);
  EXPECT_EQ(got.waiting, 2u);
  ASSERT_EQ(got.completed.size(), 1u);
  EXPECT_EQ(got.completed[0].tenant, 4u);
  ExpectSameRunResult(got.completed[0].result, done.result, "tick report");
  ASSERT_EQ(got.slo.size(), 2u);
  EXPECT_EQ(got.slo[1].tenant, 2u);
  EXPECT_EQ(got.slo[0].misses, 2u);
  ASSERT_EQ(got.trace.size(), 2u);
  EXPECT_EQ(got.trace[1].round, 64u);
  EXPECT_EQ(got.trace[1].executed, 51u);
  ASSERT_EQ(got.checkpoints.size(), 1u);
  EXPECT_EQ(got.checkpoints[0].tenant, 2u);
  EXPECT_EQ(got.checkpoints[0].words, (std::vector<uint64_t>{9, 8, 7}));
}

TEST(DistProtocol, SmallBodiesRoundTrip) {
  {
    snapshot::Writer w;
    PutTickCmd(w, {77, true});
    snapshot::Reader r(w.words());
    const TickCmd cmd = GetTickCmd(r);
    EXPECT_EQ(cmd.tick, 77u);
    EXPECT_TRUE(cmd.checkpoint);
  }
  {
    snapshot::Writer w;
    PutTenantId(w, 123456789);
    snapshot::Reader r(w.words());
    EXPECT_EQ(GetTenantId(r), 123456789u);
  }
  {
    SnapshotReply reply;
    reply.state = kTenantLive;
    reply.checkpoint = {5, 40, {1, 2, 3}};
    snapshot::Writer w;
    PutSnapshotReply(w, reply);
    snapshot::Reader r(w.words());
    SnapshotReply got;
    GetSnapshotReply(r, &got);
    EXPECT_EQ(got.state, static_cast<uint64_t>(kTenantLive));
    EXPECT_EQ(got.checkpoint.round, 40u);
    EXPECT_EQ(got.checkpoint.words.size(), 3u);
  }
  {
    SnapshotReply waiting;
    waiting.state = kTenantWaiting;
    snapshot::Writer w;
    PutSnapshotReply(w, waiting);
    snapshot::Reader r(w.words());
    SnapshotReply got;
    GetSnapshotReply(r, &got);
    EXPECT_EQ(got.state, static_cast<uint64_t>(kTenantWaiting));
    EXPECT_TRUE(got.checkpoint.words.empty());
  }
  {
    snapshot::Writer w;
    PutShedInfo(w, {9, kTenantLive, 33, 4});
    snapshot::Reader r(w.words());
    const ShedInfo info = GetShedInfo(r);
    EXPECT_EQ(info.tenant, 9u);
    EXPECT_EQ(info.rounds, 33u);
    EXPECT_EQ(info.misses, 4u);
  }
  {
    snapshot::Writer w;
    PutWorkerStats(w, {10, 20, 30, 40, 50});
    snapshot::Reader r(w.words());
    const WorkerStats stats = GetWorkerStats(r);
    EXPECT_EQ(stats.ticks, 10u);
    EXPECT_EQ(stats.snapshots, 50u);
  }
}

// ---- End-to-end: multi-process fleet vs fresh-engine oracle --------------

TEST(DistFleet, MatchesSingleEngineOracleAcrossWorkerCounts) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    tenants.push_back(DistTenant(seed));
  }
  for (const std::string& policy : {std::string("dlru-edf"),
                                    std::string("edf")}) {
    std::vector<RunResult> oracle;
    std::vector<std::string> oracle_digests;
    for (const Instance& tenant : tenants) {
      auto p = MakePolicy(policy);
      oracle.push_back(RunPolicy(tenant, *p, TestOptions()));
      oracle_digests.push_back(OracleDigest(tenant, policy));
    }
    for (const size_t workers : {1u, 2u, 4u}) {
      const uint32_t threads = workers == 2 ? 2 : 0;  // one cell with a pool
      const DistRun run = RunDistFleet(tenants, policy, workers, threads);
      const std::string label =
          policy + " @" + std::to_string(workers) + "w";
      ASSERT_EQ(run.results.size(), tenants.size());
      for (size_t t = 0; t < tenants.size(); ++t) {
        ExpectSameRunResult(run.results[t], oracle[t],
                            label + " tenant " + std::to_string(t));
        EXPECT_EQ(run.digests[t], oracle_digests[t])
            << label << " tenant " << t;
      }
      EXPECT_EQ(run.stats.completed, tenants.size()) << label;
    }
  }
}

// ---- Live migration: every policy, every cut, 1/2/4 workers --------------
//
// At the cut tick every tenant is snapshotted off its worker and restored
// on another (on a 1-worker fleet: back onto the same worker — the full
// quiesce/snapshot/restore cycle still runs). Everything observable must
// match the never-migrated oracle.

TEST(DistMigration, EveryPolicyEveryCutMatchesNeverMigratedOracle) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    tenants.push_back(DistTenant(seed));
  }
  const std::vector<uint64_t> cuts = {1, 17, 64};
  for (const std::string& policy : PolicyNames()) {
    // Never-migrated oracle: fresh engines + the direct digest fold, plus
    // the SLO totals of an undisturbed 1-worker dist run (the tracker is
    // fed identically regardless of placement, which is the claim).
    std::vector<RunResult> oracle;
    std::vector<std::string> oracle_digests;
    for (const Instance& tenant : tenants) {
      auto p = MakePolicy(policy);
      oracle.push_back(RunPolicy(tenant, *p, TestOptions()));
      oracle_digests.push_back(OracleDigest(tenant, policy));
    }
    const DistRun undisturbed = RunDistFleet(tenants, policy, 1);
    for (const size_t workers : {1u, 2u, 4u}) {
      for (const uint64_t cut : cuts) {
        const DistRun run = RunDistFleet(
            tenants, policy, workers, /*threads=*/0,
            [&](DistController& controller) {
              for (uint64_t t = 0; t < tenants.size(); ++t) {
                controller.ScheduleMigration(
                    cut, t, (t + cut) % controller.num_workers());
              }
            });
        const std::string label = policy + " cut=" + std::to_string(cut) +
                                  " @" + std::to_string(workers) + "w";
        for (size_t t = 0; t < tenants.size(); ++t) {
          ExpectSameRunResult(run.results[t], oracle[t],
                              label + " tenant " + std::to_string(t));
          EXPECT_EQ(run.digests[t], oracle_digests[t])
              << label << " tenant " << t;
        }
        ExpectSameSloTotals(run.slo, undisturbed.slo, label);
      }
    }
  }
}

// ---- Failover: kill a worker, recover from the checkpoint stream ---------

TEST(DistFailover, KilledWorkerRecoversFromCheckpointsBitIdentically) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    tenants.push_back(DistTenant(seed));
  }
  const std::string policy = "dlru-edf";
  std::vector<RunResult> oracle;
  std::vector<std::string> oracle_digests;
  for (const Instance& tenant : tenants) {
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(tenant, *p, TestOptions()));
    oracle_digests.push_back(OracleDigest(tenant, policy));
  }
  const DistRun undisturbed = RunDistFleet(tenants, policy, 1);
  const DistRun run = RunDistFleet(
      tenants, policy, /*workers=*/3, /*threads=*/0,
      [](DistController& controller) {
        controller.ScheduleKill(10, 1);
        controller.ScheduleKill(30, 2);
      },
      /*checkpoint_interval=*/4);
  EXPECT_EQ(run.stats.kills, 2u);
  EXPECT_GT(run.stats.restored_from_checkpoint, 0u);
  for (size_t t = 0; t < tenants.size(); ++t) {
    ExpectSameRunResult(run.results[t], oracle[t],
                        "failover tenant " + std::to_string(t));
    EXPECT_EQ(run.digests[t], oracle_digests[t]) << "failover tenant " << t;
  }
  // SLO windows: the high-water guard must drop the rewound re-observations
  // so totals match the undisturbed fleet exactly.
  ExpectSameSloTotals(run.slo, undisturbed.slo, "failover slo");
}

TEST(DistFailover, UncheckpointedTenantsRestartFromScratch) {
  std::vector<Instance> tenants = {DistTenant(41), DistTenant(42),
                                   DistTenant(43)};
  const std::string policy = "greedy-edf";
  std::vector<RunResult> oracle;
  for (const Instance& tenant : tenants) {
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(tenant, *p, TestOptions()));
  }
  const DistRun undisturbed = RunDistFleet(tenants, policy, 1);
  // No checkpoint stream at all: the kill forces the from-scratch path.
  const DistRun run = RunDistFleet(
      tenants, policy, /*workers=*/2, /*threads=*/0,
      [](DistController& controller) { controller.ScheduleKill(5, 0); },
      /*checkpoint_interval=*/0);
  EXPECT_EQ(run.stats.kills, 1u);
  EXPECT_EQ(run.stats.restored_from_checkpoint, 0u);
  EXPECT_GT(run.stats.restarted_from_scratch, 0u);
  for (size_t t = 0; t < tenants.size(); ++t) {
    ExpectSameRunResult(run.results[t], oracle[t],
                        "restart tenant " + std::to_string(t));
  }
  ExpectSameSloTotals(run.slo, undisturbed.slo, "restart slo");
}

// ---- Shedding ------------------------------------------------------------

TEST(DistShed, ScriptedShedDropsOneTenantAndLeavesTheRestExact) {
  std::vector<Instance> tenants = {DistTenant(51), DistTenant(52),
                                   DistTenant(53), DistTenant(54)};
  const std::string policy = "dlru-edf";
  std::vector<RunResult> oracle;
  for (const Instance& tenant : tenants) {
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(tenant, *p, TestOptions()));
  }
  const DistRun run = RunDistFleet(
      tenants, policy, /*workers=*/2, /*threads=*/0,
      [](DistController& controller) { controller.ScheduleShed(3, 2); });
  EXPECT_EQ(run.stats.shed, 1u);
  EXPECT_EQ(run.stats.completed, tenants.size() - 1);
  for (size_t t = 0; t < tenants.size(); ++t) {
    if (t == 2) {
      EXPECT_EQ(run.results[t].rounds_simulated, 0);  // default result
      continue;
    }
    ExpectSameRunResult(run.results[t], oracle[t],
                        "shed-survivor " + std::to_string(t));
  }
}

TEST(DistShed, BurnDrivenSheddingActsAsOverloadValve) {
  // `never` never reconfigures, so most jobs miss their delay bounds: every
  // tenant burns its window budget immediately and the threshold sheds
  // them instead of letting them grind to completion.
  std::vector<Instance> tenants = {DistTenant(61), DistTenant(62)};
  DistOptions options;
  options.num_workers = 2;
  options.worker.policy = "never";
  options.worker.rounds_per_tick = 4;
  options.slo.window_rounds = 16;
  options.slo.miss_budget = 1;
  options.shed_burn_threshold = 2.0;
  DistController controller(std::move(options));
  std::string error;
  ASSERT_TRUE(controller.Start(&error)) << error;
  std::vector<FleetJob> jobs(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    jobs[t].instance = &tenants[t];
    jobs[t].options = TestOptions();
  }
  controller.AddJobs(jobs);
  const std::vector<RunResult> results = controller.Run();
  const DistStats& stats = controller.stats();
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.shed + stats.completed, tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    EXPECT_EQ(controller.tenant_shed(t), results[t].rounds_simulated == 0);
  }
  controller.Shutdown();
}

// ---- Observability plane over the process boundary -----------------------

TEST(DistMetrics, ControllerAndWorkerEndpointsServeAggregates) {
  std::vector<Instance> tenants = {DistTenant(71), DistTenant(72),
                                   DistTenant(73)};
  DistOptions options;
  options.num_workers = 2;
  options.worker.policy = "dlru-edf";
  options.worker.rounds_per_tick = 8;
  options.worker.serve_metrics = true;
  options.serve_metrics = true;
  DistController controller(std::move(options));
  std::string error;
  ASSERT_TRUE(controller.Start(&error)) << error;
  std::vector<FleetJob> jobs(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    jobs[t].instance = &tenants[t];
    jobs[t].options = TestOptions();
  }
  controller.AddJobs(jobs);
  controller.Run();

  // Controller plane: Prometheus text with the SLO section, the /workers
  // placement table, and /tenants.
  ASSERT_NE(controller.metrics_port(), 0);
  std::string metrics = obs::HttpGet("127.0.0.1", controller.metrics_port(),
                                     "/metrics", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_NE(metrics.find("rrs_dist_ticks"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("rrs_fleet_slo_observations"), std::string::npos);
  const std::string workers_json =
      obs::HttpGet("127.0.0.1", controller.metrics_port(), "/workers",
                   &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_NE(workers_json.find("\"worker\":0"), std::string::npos);
  EXPECT_NE(workers_json.find("\"worker\":1"), std::string::npos);
  EXPECT_NE(workers_json.find("\"alive\":true"), std::string::npos);

  // Worker plane: each worker process serves its own scrape endpoint; the
  // ports travel back through the ConfigAck handshake.
  const std::vector<uint64_t> ports = controller.worker_metrics_ports();
  ASSERT_EQ(ports.size(), 2u);
  for (size_t w = 0; w < ports.size(); ++w) {
    ASSERT_NE(ports[w], 0u) << "worker " << w;
    const std::string worker_metrics = obs::HttpGet(
        "127.0.0.1", static_cast<uint16_t>(ports[w]), "/metrics", &error);
    EXPECT_TRUE(error.empty()) << "worker " << w << ": " << error;
    EXPECT_NE(worker_metrics.find("rrs_worker_dist_worker_rounds_stepped"),
              std::string::npos)
        << worker_metrics;
  }
  controller.Shutdown();
}

// A worker-side cap exercises admission control: with max_live_sessions=1
// per worker, tenants queue and admit one at a time, and results must still
// match the oracle (admission order is deterministic).
TEST(DistFleet, LiveSessionCapQueuesDeterministically) {
  std::vector<Instance> tenants;
  for (uint64_t seed = 81; seed <= 86; ++seed) {
    tenants.push_back(DistTenant(seed));
  }
  const std::string policy = "dlru-edf";
  DistOptions options;
  options.num_workers = 2;
  options.worker.policy = policy;
  options.worker.rounds_per_tick = 16;
  options.worker.max_live_sessions = 1;
  DistController controller(std::move(options));
  std::string error;
  ASSERT_TRUE(controller.Start(&error)) << error;
  std::vector<FleetJob> jobs(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    jobs[t].instance = &tenants[t];
    jobs[t].options = TestOptions();
  }
  controller.AddJobs(jobs);
  const std::vector<RunResult> results = controller.Run();
  for (size_t t = 0; t < tenants.size(); ++t) {
    auto p = MakePolicy(policy);
    const RunResult oracle = RunPolicy(tenants[t], *p, TestOptions());
    ExpectSameRunResult(results[t], oracle,
                        "capped tenant " + std::to_string(t));
  }
  controller.Shutdown();
}

// ---- Streaming tenants over the wire -------------------------------------
//
// Streaming jobs ship as GeneratorSpecs (kMsgAddSources); every worker
// instantiates its own ArrivalSource, and migration checkpoints append the
// source's SaveState words to the engine's. All of it must be invisible in
// the results: bit-identical to the materialized oracle, moved or not.

TEST(DistStreaming, SourceTenantsMatchMaterializedOracleAcrossWorkerCounts) {
  std::vector<workload::GeneratorSpec> specs;
  for (uint64_t seed = 101; seed <= 105; ++seed) {
    specs.push_back(DistTenantSpec(seed));
  }
  workload::MemctrlOptions mem;
  mem.rounds = 96;
  mem.refresh_period = 24;
  mem.refresh_length = 4;
  mem.seed = 9;
  specs.push_back(workload::MemctrlSpec(mem));

  const std::string policy = "dlru-edf";
  std::vector<RunResult> oracle;
  std::vector<std::string> oracle_digests;
  std::vector<FleetJob> jobs(specs.size());
  for (size_t t = 0; t < specs.size(); ++t) {
    auto source = workload::MakeSource(specs[t]);
    const Instance materialized = workload::Materialize(*source);
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(materialized, *p, TestOptions()));
    oracle_digests.push_back(OracleDigest(materialized, policy));
    jobs[t].source_spec = &specs[t];
    jobs[t].options = TestOptions();
  }
  for (const size_t workers : {1u, 2u, 4u}) {
    const DistRun run = RunDistFleetJobs(jobs, policy, workers);
    const std::string label = "streaming @" + std::to_string(workers) + "w";
    ASSERT_EQ(run.results.size(), jobs.size());
    for (size_t t = 0; t < jobs.size(); ++t) {
      ExpectSameRunResult(run.results[t], oracle[t],
                          label + " tenant " + std::to_string(t));
      EXPECT_EQ(run.digests[t], oracle_digests[t]) << label << " tenant " << t;
    }
    EXPECT_EQ(run.stats.completed, jobs.size()) << label;
  }
}

TEST(DistStreaming, MigrationShipsSourceStateBitIdentically) {
  std::vector<workload::GeneratorSpec> specs;
  for (uint64_t seed = 111; seed <= 114; ++seed) {
    specs.push_back(DistTenantSpec(seed));
  }
  const std::string policy = "dlru-edf";
  std::vector<RunResult> oracle;
  std::vector<std::string> oracle_digests;
  std::vector<FleetJob> jobs(specs.size());
  for (size_t t = 0; t < specs.size(); ++t) {
    auto source = workload::MakeSource(specs[t]);
    const Instance materialized = workload::Materialize(*source);
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(materialized, *p, TestOptions()));
    oracle_digests.push_back(OracleDigest(materialized, policy));
    jobs[t].source_spec = &specs[t];
    jobs[t].options = TestOptions();
  }
  const DistRun undisturbed = RunDistFleetJobs(jobs, policy, 1);
  for (const size_t workers : {1u, 2u, 4u}) {
    for (const uint64_t cut : {1u, 17u, 64u}) {
      const DistRun run = RunDistFleetJobs(
          jobs, policy, workers, /*threads=*/0,
          [&](DistController& controller) {
            for (uint64_t t = 0; t < jobs.size(); ++t) {
              controller.ScheduleMigration(
                  cut, t, (t + cut) % controller.num_workers());
            }
          });
      const std::string label = "streaming cut=" + std::to_string(cut) +
                                " @" + std::to_string(workers) + "w";
      for (size_t t = 0; t < jobs.size(); ++t) {
        ExpectSameRunResult(run.results[t], oracle[t],
                            label + " tenant " + std::to_string(t));
        EXPECT_EQ(run.digests[t], oracle_digests[t])
            << label << " tenant " << t;
      }
      EXPECT_GE(run.stats.migrations, jobs.size()) << label;
      ExpectSameSloTotals(run.slo, undisturbed.slo, label);
    }
  }
}

TEST(DistStreaming, FailoverRestoresStreamingTenantsFromCheckpoints) {
  std::vector<workload::GeneratorSpec> specs;
  for (uint64_t seed = 121; seed <= 126; ++seed) {
    specs.push_back(DistTenantSpec(seed));
  }
  const std::string policy = "greedy-edf";
  std::vector<RunResult> oracle;
  std::vector<std::string> oracle_digests;
  std::vector<FleetJob> jobs(specs.size());
  for (size_t t = 0; t < specs.size(); ++t) {
    auto source = workload::MakeSource(specs[t]);
    const Instance materialized = workload::Materialize(*source);
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(materialized, *p, TestOptions()));
    oracle_digests.push_back(OracleDigest(materialized, policy));
    jobs[t].source_spec = &specs[t];
    jobs[t].options = TestOptions();
  }
  const DistRun undisturbed = RunDistFleetJobs(jobs, policy, 1);
  const DistRun run = RunDistFleetJobs(
      jobs, policy, /*workers=*/3, /*threads=*/0,
      [](DistController& controller) {
        controller.ScheduleKill(10, 1);
        controller.ScheduleKill(30, 0);
      },
      /*checkpoint_interval=*/4);
  EXPECT_EQ(run.stats.kills, 2u);
  EXPECT_GT(run.stats.restored_from_checkpoint, 0u);
  for (size_t t = 0; t < jobs.size(); ++t) {
    ExpectSameRunResult(run.results[t], oracle[t],
                        "streaming failover tenant " + std::to_string(t));
    EXPECT_EQ(run.digests[t], oracle_digests[t])
        << "streaming failover tenant " << t;
  }
  ExpectSameSloTotals(run.slo, undisturbed.slo, "streaming failover slo");
}

TEST(DistStreaming, MixedInstanceAndSourceFleetsCoexist) {
  std::vector<Instance> instances = {DistTenant(131), DistTenant(132)};
  std::vector<workload::GeneratorSpec> specs = {DistTenantSpec(133),
                                                DistTenantSpec(134)};
  const std::string policy = "dlru-edf";
  std::vector<FleetJob> jobs(4);
  std::vector<RunResult> oracle;
  for (size_t t = 0; t < 2; ++t) {
    jobs[t].instance = &instances[t];
    jobs[t].options = TestOptions();
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(instances[t], *p, TestOptions()));
  }
  for (size_t t = 0; t < 2; ++t) {
    jobs[2 + t].source_spec = &specs[t];
    jobs[2 + t].options = TestOptions();
    auto source = workload::MakeSource(specs[t]);
    const Instance materialized = workload::Materialize(*source);
    auto p = MakePolicy(policy);
    oracle.push_back(RunPolicy(materialized, *p, TestOptions()));
  }
  const DistRun run = RunDistFleetJobs(jobs, policy, 2);
  for (size_t t = 0; t < jobs.size(); ++t) {
    ExpectSameRunResult(run.results[t], oracle[t],
                        "mixed tenant " + std::to_string(t));
  }
  EXPECT_EQ(run.stats.completed, jobs.size());
}

}  // namespace
}  // namespace dist
}  // namespace fleet
}  // namespace rrs
