// ChaosFleetRunner differential suite: a fleet run under kill/evict/delay/
// rebalance churn must produce per-tenant RunResults bit-identical to a
// fault-free FleetRunner run of the same jobs — at every thread count,
// because the fault plan is a pure function of (jobs, seed) and checkpoint/
// restore is exact.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "fleet/chaos_fleet.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "obs/flight_recorder.h"
#include "obs/scope.h"
#include "parallel/thread_pool.h"
#include "sched/registry.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance ChaosTenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

void ExpectSameRunResult(const RunResult& got, const RunResult& want,
                         const std::string& label) {
  EXPECT_EQ(got.cost.reconfigurations, want.cost.reconfigurations) << label;
  EXPECT_EQ(got.cost.drops, want.cost.drops) << label;
  EXPECT_EQ(got.cost.weighted_drops, want.cost.weighted_drops) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds_simulated, want.rounds_simulated) << label;
  EXPECT_EQ(got.drops_per_color, want.drops_per_color) << label;
  EXPECT_EQ(got.telemetry.counters, want.telemetry.counters) << label;
}

struct Workload {
  std::vector<Instance> tenants;
  std::vector<fleet::FleetJob> jobs;
};

Workload MakeWorkload(size_t num_tenants) {
  Workload w;
  for (size_t i = 0; i < num_tenants; ++i) {
    // Varied lengths so tenants finish on different ticks and the fault
    // injector sees fleets of changing size.
    w.tenants.push_back(ChaosTenant(500 + i, 48 + 16 * (i % 5)));
  }
  for (size_t i = 0; i < num_tenants; ++i) {
    fleet::FleetJob job;
    job.instance = &w.tenants[i];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 2 + static_cast<uint64_t>(i % 3);
    w.jobs.push_back(job);
  }
  return w;
}

// Fault-free oracle through the plain FleetRunner (itself pinned against
// fresh engines by fleet_test.cpp).
std::vector<RunResult> FaultFreeOracle(const Workload& w) {
  fleet::FleetOptions options;
  options.num_shards = 1;
  return fleet::FleetRunner(options).RunAll(w.jobs);
}

fleet::ChaosOptions AggressiveChaos(ThreadPool* pool) {
  fleet::ChaosOptions options;
  options.pool = pool;
  options.num_workers = 4;
  options.rounds_per_tick = 8;  // many tick barriers => many fault points
  options.seed = 0xfeed;
  options.kill_worker_prob = 0.4;
  options.evict_prob = 0.7;
  options.rebalance_prob = 0.4;
  options.delayed_restore_prob = 0.6;
  options.max_restore_delay_ticks = 3;
  return options;
}

// ---- Differential vs fault-free, 0/1/2/8 threads -------------------------

class ChaosDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(ChaosDifferential, ResultsMatchFaultFreeRun) {
  const size_t threads = GetParam();
  Workload w = MakeWorkload(24);
  std::vector<RunResult> oracle = FaultFreeOracle(w);

  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  fleet::ChaosFleetRunner runner(AggressiveChaos(pool.get()));
  std::vector<RunResult> chaotic = runner.RunAll(w.jobs);

  ASSERT_EQ(chaotic.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    ExpectSameRunResult(chaotic[i], oracle[i],
                        "tenant " + std::to_string(i) + " threads=" +
                            std::to_string(threads));
  }

  // The plan must actually have fired: at least three distinct fault kinds.
  const fleet::ChaosStats stats = runner.stats();
  EXPECT_GT(stats.kills, 0u) << "threads=" << threads;
  EXPECT_GT(stats.evictions, 0u) << "threads=" << threads;
  EXPECT_GT(stats.delayed_restores, 0u) << "threads=" << threads;
  EXPECT_GT(stats.restores, 0u) << "threads=" << threads;
  EXPECT_EQ(stats.sessions_completed, w.jobs.size());
}

// Same differential with the full observability plane attached: SLO tracking
// and the flight recorder are pure observation, so per-tenant results must
// stay bit-identical — and the SLO totals themselves are checked against the
// oracle's (thread-count-invariant) drop counts.
TEST_P(ChaosDifferential, ResultsMatchWithSloAndFlightRecorderEnabled) {
  const size_t threads = GetParam();
  Workload w = MakeWorkload(24);
  std::vector<RunResult> oracle = FaultFreeOracle(w);

  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  obs::Scope scope;
  fleet::SloTracker slo;
  obs::FlightRecorder recorder;
  fleet::ChaosOptions options = AggressiveChaos(pool.get());
  options.scope = &scope;
  options.slo = &slo;
  options.recorder = &recorder;
  fleet::ChaosFleetRunner runner(options);
  std::vector<RunResult> chaotic = runner.RunAll(w.jobs);

  ASSERT_EQ(chaotic.size(), oracle.size());
  uint64_t oracle_misses = 0;
  for (size_t i = 0; i < oracle.size(); ++i) {
    ExpectSameRunResult(chaotic[i], oracle[i],
                        "tenant " + std::to_string(i) + " threads=" +
                            std::to_string(threads));
    oracle_misses += oracle[i].cost.drops;
  }

  const fleet::SloTracker::Snapshot totals = slo.SnapshotTotals();
  EXPECT_EQ(totals.tenants_seen, w.jobs.size());
  EXPECT_EQ(totals.tenants_finished, w.jobs.size());
  EXPECT_EQ(totals.misses, oracle_misses);
  EXPECT_EQ(totals.miss_delay.count(), oracle_misses);
  EXPECT_EQ(totals.tenants_out_of_budget, 0);  // every window closed by Finish
  EXPECT_GT(recorder.num_rings(), 0u);  // coordinator + worker rings exist

  const auto values = scope.registry().Values();
  EXPECT_EQ(values.at("fleet.slo.tenants_finished"),
            static_cast<double>(w.jobs.size()));
  EXPECT_EQ(values.at("fleet.slo.misses"),
            static_cast<double>(oracle_misses));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ChaosDifferential,
                         ::testing::Values(0, 1, 2, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// ---- Fault plan determinism ----------------------------------------------

TEST(ChaosFleet, FaultPlanIsIdenticalAcrossThreadCounts) {
  Workload w = MakeWorkload(16);

  fleet::ChaosFleetRunner serial(AggressiveChaos(nullptr));
  serial.RunAll(w.jobs);
  const fleet::ChaosStats a = serial.stats();

  ThreadPool pool(8);
  fleet::ChaosFleetRunner threaded(AggressiveChaos(&pool));
  threaded.RunAll(w.jobs);
  const fleet::ChaosStats b = threaded.stats();

  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.delayed_restores, b.delayed_restores);
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.noop_faults, b.noop_faults);
  EXPECT_EQ(a.snapshot_words, b.snapshot_words);
  EXPECT_EQ(a.rounds_stepped, b.rounds_stepped);
}

// Per-shard SLO state — including which window each miss landed in and the
// worst-burn rankings — is a pure function of (jobs, seed), so two runs at
// different thread counts must agree field for field, shard by shard.
TEST(ChaosFleet, SloStateIsIdenticalAcrossThreadCounts) {
  Workload w = MakeWorkload(16);

  fleet::SloTracker slo_serial;
  fleet::ChaosOptions serial_options = AggressiveChaos(nullptr);
  serial_options.slo = &slo_serial;
  fleet::ChaosFleetRunner(serial_options).RunAll(w.jobs);

  ThreadPool pool(8);
  fleet::SloTracker slo_threaded;
  fleet::ChaosOptions threaded_options = AggressiveChaos(&pool);
  threaded_options.slo = &slo_threaded;
  fleet::ChaosFleetRunner(threaded_options).RunAll(w.jobs);

  ASSERT_EQ(slo_serial.num_shards(), slo_threaded.num_shards());
  for (size_t s = 0; s < slo_serial.num_shards(); ++s) {
    const fleet::SloTracker::Snapshot a = slo_serial.SnapshotShard(s);
    const fleet::SloTracker::Snapshot b = slo_threaded.SnapshotShard(s);
    EXPECT_EQ(a.observations, b.observations) << "shard " << s;
    EXPECT_EQ(a.rounds, b.rounds) << "shard " << s;
    EXPECT_EQ(a.misses, b.misses) << "shard " << s;
    EXPECT_EQ(a.windows_closed, b.windows_closed) << "shard " << s;
    EXPECT_EQ(a.windows_breached, b.windows_breached) << "shard " << s;
    EXPECT_EQ(a.exhausted_events, b.exhausted_events) << "shard " << s;
    EXPECT_EQ(a.tenants_seen, b.tenants_seen) << "shard " << s;
    EXPECT_EQ(a.tenants_finished, b.tenants_finished) << "shard " << s;
    EXPECT_EQ(a.tenants_out_of_budget, b.tenants_out_of_budget)
        << "shard " << s;
    EXPECT_EQ(a.miss_delay.count(), b.miss_delay.count()) << "shard " << s;
    EXPECT_EQ(a.miss_delay.sum(), b.miss_delay.sum()) << "shard " << s;
    ASSERT_EQ(a.top.size(), b.top.size()) << "shard " << s;
    for (size_t i = 0; i < a.top.size(); ++i) {
      EXPECT_EQ(a.top[i].tenant, b.top[i].tenant) << "shard " << s;
      EXPECT_EQ(a.top[i].window_misses, b.top[i].window_misses)
          << "shard " << s;
    }
  }
}

// ---- Alternate policies through the chaos path ---------------------------

class ChaosEveryPolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(ChaosEveryPolicy, RestoredTenantsMatchFaultFreeRun) {
  const std::string name = GetParam();
  Workload w = MakeWorkload(12);

  fleet::FleetOptions oracle_options;
  oracle_options.num_shards = 1;
  oracle_options.policy_factory = [&name] { return MakePolicy(name); };
  std::vector<RunResult> oracle =
      fleet::FleetRunner(oracle_options).RunAll(w.jobs);

  fleet::ChaosOptions chaos = AggressiveChaos(nullptr);
  chaos.policy_factory = [&name] { return MakePolicy(name); };
  fleet::ChaosFleetRunner runner(chaos);
  std::vector<RunResult> chaotic = runner.RunAll(w.jobs);

  for (size_t i = 0; i < oracle.size(); ++i) {
    ExpectSameRunResult(chaotic[i], oracle[i],
                        name + " tenant " + std::to_string(i));
  }
  EXPECT_GT(runner.stats().restores, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChaosEveryPolicy,
                         ::testing::ValuesIn(PolicyNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- Counters surface through obs ----------------------------------------

TEST(ChaosFleet, CountersAbsorbIntoScope) {
  Workload w = MakeWorkload(8);
  obs::Scope scope;

  fleet::ChaosOptions options = AggressiveChaos(nullptr);
  options.scope = &scope;
  fleet::ChaosFleetRunner runner(options);
  runner.RunAll(w.jobs);

  const auto values = scope.registry().Values();
  EXPECT_GT(values.at("fleet.chaos.ticks"), 0.0);
  EXPECT_GT(values.at("fleet.chaos.restores"), 0.0);
  EXPECT_EQ(values.at("fleet.chaos.sessions_completed"),
            static_cast<double>(w.jobs.size()));
}

}  // namespace
}  // namespace rrs
