// Observability-plane suite (ISSUE 7): the export server's routes, the
// per-tenant SLO tracker's window/budget accounting, the flight recorder's
// record → dump → decode round trip (including the crash-handler path, via
// fork), and the headline live-scrape consistency claim — a scrape taken
// while a chaos fleet is running must have per-shard SLO series that sum
// exactly to its fleet totals.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "fleet/chaos_fleet.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "obs/export_server.h"
#include "obs/flight_recorder.h"
#include "obs/scope.h"
#include "parallel/thread_pool.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

Instance Tenant(uint64_t seed, Round rounds = 96) {
  std::vector<workload::ColorSpec> specs = {
      {1, 0.4}, {2, 0.5}, {4, 0.5}, {8, 0.4}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

struct Workload {
  std::vector<Instance> tenants;
  std::vector<fleet::FleetJob> jobs;
};

Workload MakeWorkload(size_t num_tenants, Round rounds = 96) {
  Workload w;
  w.tenants.reserve(num_tenants);
  for (size_t i = 0; i < num_tenants; ++i) {
    w.tenants.push_back(Tenant(900 + i, rounds));
  }
  for (size_t i = 0; i < num_tenants; ++i) {
    fleet::FleetJob job;
    job.instance = &w.tenants[i];
    job.options.num_resources = 8;
    w.jobs.push_back(job);
  }
  return w;
}

// Parses a Prometheus text body into series name (with label block) -> value.
std::map<std::string, double> ParseProm(const std::string& body) {
  std::map<std::string, double> series;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    series[line.substr(0, space)] = std::strtod(line.c_str() + space + 1,
                                                nullptr);
  }
  return series;
}

// ---- Export server routes -------------------------------------------------

TEST(ExportServer, ServesDefaultAndCustomRoutes) {
  obs::Scope scope;
  const std::pair<std::string_view, uint64_t> counters[] = {
      {"plane.requests", 41}};
  scope.AbsorbCounters(counters);

  obs::ExportServer::Options options;
  options.scope = &scope;
  obs::ExportServer server(options);
  server.Handle("/tenants", "application/json", [] { return "[]\n"; });
  server.AddMetricsSection([] { return "extra_section 7\n"; });

  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  EXPECT_EQ(obs::HttpGet("127.0.0.1", server.port(), "/healthz"), "ok\n");
  EXPECT_EQ(obs::HttpGet("127.0.0.1", server.port(), "/tenants"), "[]\n");

  const std::string metrics =
      obs::HttpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(metrics.find("rrs_plane_requests 41"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE rrs_plane_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("extra_section 7"), std::string::npos);

  const std::string json =
      obs::HttpGet("127.0.0.1", server.port(), "/metrics.json");
  EXPECT_NE(json.find("plane.requests"), std::string::npos) << json;

  std::string get_error;
  EXPECT_EQ(obs::HttpGet("127.0.0.1", server.port(), "/nope", &get_error),
            "");
  EXPECT_FALSE(get_error.empty());

  server.Stop();
  EXPECT_FALSE(server.running());
}

// ---- SLO tracker unit behavior --------------------------------------------

TEST(SloTracker, WindowRollAndBudgetExhaustion) {
  fleet::SloOptions options;
  options.window_rounds = 10;
  options.miss_budget = 2;
  options.top_k = 4;
  fleet::SloTracker slo(options);
  slo.Bind(/*num_tenants=*/2, /*num_shards=*/1);

  EXPECT_EQ(slo.Observe(0, 0, /*rounds=*/5, /*misses=*/1), 0u);
  // 3 misses in the window > budget 2: one exhaustion transition.
  EXPECT_EQ(slo.Observe(0, 0, /*rounds=*/9, /*misses=*/3), 1u);
  // Still exhausted: no second event...
  EXPECT_EQ(slo.Observe(0, 0, /*rounds=*/9, /*misses=*/4), 0u);
  // ...until the window rolls at rounds >= 10, which resets the budget.
  EXPECT_EQ(slo.Observe(0, 0, /*rounds=*/12, /*misses=*/4), 0u);

  slo.Publish(0);
  fleet::SloTracker::Snapshot snap = slo.SnapshotShard(0);
  EXPECT_EQ(snap.observations, 4u);
  EXPECT_EQ(snap.rounds, 12u);
  EXPECT_EQ(snap.misses, 4u);
  EXPECT_EQ(snap.windows_closed, 1u);
  EXPECT_EQ(snap.windows_breached, 1u);
  EXPECT_EQ(snap.exhausted_events, 1u);
  EXPECT_EQ(snap.tenants_seen, 1u);
  EXPECT_EQ(snap.tenants_out_of_budget, 0);  // roll un-exhausted it

  // A second tenant blows its budget in one observation.
  EXPECT_EQ(slo.Observe(0, 1, /*rounds=*/4, /*misses=*/5), 1u);
  slo.Publish(0);
  snap = slo.SnapshotShard(0);
  EXPECT_EQ(snap.tenants_seen, 2u);
  EXPECT_EQ(snap.tenants_out_of_budget, 1);
  ASSERT_FALSE(snap.top.empty());
  EXPECT_EQ(snap.top.front().tenant, 1u);
  EXPECT_EQ(snap.top.front().window_misses, 5u);
  EXPECT_DOUBLE_EQ(snap.top.front().burn, 2.5);

  // Totals over one shard == that shard.
  const fleet::SloTracker::Snapshot totals = slo.SnapshotTotals();
  EXPECT_EQ(totals.misses, snap.misses);
  EXPECT_EQ(totals.tenants_out_of_budget, snap.tenants_out_of_budget);
}

TEST(SloTracker, RenderPrometheusShardSeriesSumToTotals) {
  fleet::SloOptions options;
  options.window_rounds = 16;
  options.miss_budget = 1;
  fleet::SloTracker slo(options);
  slo.Bind(/*num_tenants=*/4, /*num_shards=*/2);
  slo.Observe(0, 0, 8, 3);
  slo.Observe(0, 1, 8, 1);
  slo.Observe(1, 2, 8, 4);
  slo.Publish(0);
  slo.Publish(1);

  const auto series = ParseProm(slo.RenderPrometheus());
  for (const char* name :
       {"rrs_fleet_slo_observations", "rrs_fleet_slo_rounds",
        "rrs_fleet_slo_misses", "rrs_fleet_slo_tenants_seen",
        "rrs_fleet_slo_tenants_out_of_budget"}) {
    const double total = series.at(name);
    const double by_shard = series.at(std::string(name) + "{shard=\"0\"}") +
                            series.at(std::string(name) + "{shard=\"1\"}");
    EXPECT_EQ(total, by_shard) << name;
  }
  EXPECT_EQ(series.at("rrs_fleet_slo_misses"), 8.0);

  // /tenants JSON carries the worst-burn tenants across shards.
  const std::string json = slo.TenantsJson();
  EXPECT_NE(json.find("\"tenant\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\": 1"), std::string::npos) << json;
}

// ---- Fleet runner integration ---------------------------------------------

TEST(FleetSlo, TotalsMatchRunResultsAndAbsorbIntoScope) {
  Workload w = MakeWorkload(32);
  obs::Scope scope;
  fleet::SloTracker slo;
  obs::FlightRecorder recorder;

  fleet::FleetOptions options;
  options.num_shards = 4;
  options.rounds_per_tick = 16;
  options.scope = &scope;
  options.slo = &slo;
  options.recorder = &recorder;
  fleet::FleetRunner runner(options);
  std::vector<RunResult> results = runner.RunAll(w.jobs);

  uint64_t total_drops = 0;
  for (const RunResult& result : results) total_drops += result.cost.drops;

  const fleet::SloTracker::Snapshot totals = slo.SnapshotTotals();
  EXPECT_EQ(totals.tenants_seen, w.jobs.size());
  EXPECT_EQ(totals.tenants_finished, w.jobs.size());
  EXPECT_EQ(totals.misses, total_drops);
  EXPECT_EQ(totals.miss_delay.count(), total_drops);
  EXPECT_EQ(totals.tenants_out_of_budget, 0);

  const auto values = scope.registry().Values();
  EXPECT_EQ(values.at("fleet.slo.tenants_finished"),
            static_cast<double>(w.jobs.size()));
  EXPECT_EQ(values.at("fleet.slo.misses"), static_cast<double>(total_drops));
  EXPECT_EQ(values.at("fleet.slo.tenants_out_of_budget"), 0.0);

  // The recorder saw the run: per-shard rings with admit/finish/tick events.
  EXPECT_EQ(recorder.num_rings(), 4u);
  obs::DecodedFlight decoded;
  std::string error;
  const char* path = "obs_plane_fleet_dump.bin";
  ASSERT_TRUE(recorder.DumpToFile(path));
  {
    std::FILE* f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    std::remove(path);
    ASSERT_TRUE(obs::DecodeFlightDump(bytes, &decoded, &error)) << error;
  }
  uint64_t admits = 0, finishes = 0, ticks = 0;
  for (const obs::DecodedFlightRing& ring : decoded.rings) {
    EXPECT_EQ(ring.name.rfind("fleet.shard", 0), 0u) << ring.name;
    for (const obs::FlightEvent& event : ring.events) {
      if (event.type == obs::kFlightAdmit) ++admits;
      if (event.type == obs::kFlightFinish) ++finishes;
      if (event.type == obs::kFlightTick) ++ticks;
    }
  }
  EXPECT_EQ(admits, w.jobs.size());
  EXPECT_EQ(finishes, w.jobs.size());
  EXPECT_GT(ticks, 0u);
}

// ---- Flight recorder ------------------------------------------------------

TEST(FlightRecorder, RecordDumpDecodeRoundTrip) {
  obs::FlightRecorder::Options options;
  options.ring_capacity = 8;
  obs::FlightRecorder recorder(options);

  obs::FlightRing* a = recorder.Ring("alpha");
  obs::FlightRing* b = recorder.Ring("beta");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(recorder.Ring("alpha"), a);  // get-or-register
  EXPECT_EQ(recorder.num_rings(), 2u);

  a->Record(obs::kFlightMark, 1, 10, 100);
  a->Record(obs::kFlightTick, 2, 20, 200);
  // Overflow beta so the ring wraps: only the newest `capacity` survive.
  for (uint64_t i = 0; i < 20; ++i) {
    b->Record(obs::kFlightAdmit, 0, i);
  }

  const char* path = "obs_plane_roundtrip_dump.bin";
  ASSERT_TRUE(recorder.DumpToFile(path));
  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  std::remove(path);

  obs::DecodedFlight decoded;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightDump(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.version, 1u);
  EXPECT_EQ(decoded.ring_capacity, 8u);
  ASSERT_EQ(decoded.rings.size(), 2u);

  const obs::DecodedFlightRing& alpha = decoded.rings[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.recorded, 2u);
  ASSERT_EQ(alpha.events.size(), 2u);
  EXPECT_EQ(alpha.events[0].type, obs::kFlightMark);
  EXPECT_EQ(alpha.events[0].arg0, 1u);
  EXPECT_EQ(alpha.events[0].arg1, 10u);
  EXPECT_EQ(alpha.events[0].arg2, 100u);
  EXPECT_LE(alpha.events[0].ts_ns, alpha.events[1].ts_ns);

  const obs::DecodedFlightRing& beta = decoded.rings[1];
  EXPECT_EQ(beta.recorded, 20u);
  ASSERT_EQ(beta.events.size(), 8u);  // wrapped: newest 8 of 20
  EXPECT_EQ(beta.events.front().arg1, 12u);
  EXPECT_EQ(beta.events.back().arg1, 19u);

  const std::string line =
      obs::FormatFlightEvent(alpha.events[0], alpha.events[0].ts_ns);
  EXPECT_NE(line.find("mark"), std::string::npos) << line;
}

TEST(FlightRecorder, RingDirectoryFillsGracefully) {
  obs::FlightRecorder::Options options;
  options.ring_capacity = 4;
  options.max_rings = 2;
  obs::FlightRecorder recorder(options);
  EXPECT_NE(recorder.Ring("one"), nullptr);
  EXPECT_NE(recorder.Ring("two"), nullptr);
  EXPECT_EQ(recorder.Ring("three"), nullptr);  // full: callers keep the null
  EXPECT_EQ(recorder.num_rings(), 2u);
}

// SIGABRT mid-run must leave a decodable dump containing the events recorded
// before the crash — checked in a forked child so the abort doesn't take the
// test runner with it.
TEST(FlightRecorder, AbortProducesDecodableDumpWithInjectedFaults) {
  const char* path = "obs_plane_crash_dump.bin";
  std::remove(path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: record a fault-injection history, install the handler, crash.
    static obs::FlightRecorder recorder;
    obs::FlightRing* ring = recorder.Ring("chaos.coord");
    if (ring == nullptr) _exit(3);
    ring->Record(obs::kFlightTick, 0, 1);
    ring->Record(obs::kFlightKillWorker, 2, 7);
    ring->Record(obs::kFlightEvict, 1, 42, 3);
    obs::InstallFlightCrashHandler(&recorder, path);
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr) << "crash handler did not write the dump";
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  std::remove(path);

  obs::DecodedFlight decoded;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightDump(bytes, &decoded, &error)) << error;
  ASSERT_EQ(decoded.rings.size(), 1u);
  EXPECT_EQ(decoded.rings[0].name, "chaos.coord");
  ASSERT_EQ(decoded.rings[0].events.size(), 3u);
  EXPECT_EQ(decoded.rings[0].events[1].type, obs::kFlightKillWorker);
  EXPECT_EQ(decoded.rings[0].events[1].arg0, 2u);
  EXPECT_EQ(decoded.rings[0].events[2].type, obs::kFlightEvict);
  EXPECT_EQ(decoded.rings[0].events[2].arg1, 42u);
}

// ---- Live scrape during a running chaos fleet -----------------------------

// The acceptance claim: scraping /metrics while a 10k-tenant chaos fleet is
// running returns internally consistent per-shard counters — the sum over
// shard-labeled series equals the fleet total in the same scrape, because
// both are rendered from one set of published per-shard snapshots.
TEST(ObsPlane, LiveScrapeIsConsistentDuringChaosFleet) {
  constexpr size_t kTenants = 10000;
  Workload w;
  w.tenants.reserve(kTenants);
  // One shared instance per shape class keeps setup fast; tenants still
  // finish on different ticks via varied engine deltas.
  for (size_t i = 0; i < 8; ++i) {
    w.tenants.push_back(Tenant(700 + i, 64 + 16 * (i % 4)));
  }
  for (size_t i = 0; i < kTenants; ++i) {
    fleet::FleetJob job;
    job.instance = &w.tenants[i % w.tenants.size()];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 2 + static_cast<uint64_t>(i % 3);
    w.jobs.push_back(job);
  }

  obs::Scope scope;
  fleet::SloOptions slo_options;
  slo_options.window_rounds = 32;
  slo_options.miss_budget = 4;
  fleet::SloTracker slo(slo_options);
  obs::FlightRecorder recorder;

  obs::ExportServer::Options server_options;
  server_options.scope = &scope;
  obs::ExportServer server(server_options);
  server.AddMetricsSection([&slo] { return slo.RenderPrometheus(); });
  server.Handle("/tenants", "application/json",
                [&slo] { return slo.TenantsJson(); });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const char* kSummed[] = {"rrs_fleet_slo_observations", "rrs_fleet_slo_rounds",
                           "rrs_fleet_slo_misses",
                           "rrs_fleet_slo_tenants_finished",
                           "rrs_fleet_slo_tenants_out_of_budget"};

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes_with_data{0};
  std::atomic<uint64_t> inconsistencies{0};
  const uint16_t port = server.port();
  auto scrape_once = [&](size_t num_workers) {
    const std::string body = obs::HttpGet("127.0.0.1", port, "/metrics");
    if (body.empty()) return;
    const auto series = ParseProm(body);
    auto it = series.find("rrs_fleet_slo_observations");
    if (it == series.end() || it->second <= 0) return;
    scrapes_with_data.fetch_add(1);
    for (const char* name : kSummed) {
      double by_shard = 0;
      for (size_t s = 0; s < num_workers; ++s) {
        auto shard_it =
            series.find(std::string(name) + "{shard=\"" + std::to_string(s) +
                        "\"}");
        if (shard_it != series.end()) by_shard += shard_it->second;
      }
      if (by_shard != series.at(name)) inconsistencies.fetch_add(1);
    }
    // /tenants must be parseable JSON at any moment.
    const std::string json = obs::HttpGet("127.0.0.1", port, "/tenants");
    EXPECT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
  };

  fleet::ChaosOptions chaos;
  chaos.num_workers = 4;
  chaos.rounds_per_tick = 16;
  chaos.scope = &scope;
  chaos.slo = &slo;
  chaos.recorder = &recorder;
  ThreadPool pool(2);
  chaos.pool = &pool;
  fleet::ChaosFleetRunner runner(chaos);

  std::thread scraper([&] {
    while (!done.load()) scrape_once(chaos.num_workers);
  });
  std::vector<RunResult> results = runner.RunAll(w.jobs);
  done.store(true);
  scraper.join();
  scrape_once(chaos.num_workers);  // final state is also consistent

  EXPECT_GE(scrapes_with_data.load(), 1u);
  EXPECT_EQ(inconsistencies.load(), 0u);

  // Post-run, the scraped totals equal ground truth from the results.
  uint64_t total_drops = 0;
  for (const RunResult& result : results) total_drops += result.cost.drops;
  const auto series =
      ParseProm(obs::HttpGet("127.0.0.1", port, "/metrics"));
  EXPECT_EQ(series.at("rrs_fleet_slo_tenants_finished"),
            static_cast<double>(kTenants));
  EXPECT_EQ(series.at("rrs_fleet_slo_misses"),
            static_cast<double>(total_drops));
  server.Stop();
}

}  // namespace
}  // namespace rrs
