// RRS_OBS_LEVEL=0 erasure suite. This binary links rrsched_obs0, the library
// rebuilt with instrumentation compiled out; the assertions pin the level-0
// contract: the observability plane costs nothing (no rings, no SLO state,
// the wired call sites fold away behind constexpr obs::kEnabled), results
// are unchanged, and the passive halves — export server, dump decoder —
// still work so operators keep their tooling on lean builds.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "fleet/chaos_fleet.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "obs/export_server.h"
#include "obs/flight_recorder.h"
#include "obs/level.h"
#include "obs/scope.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

static_assert(!obs::kEnabled, "obs0 suite must be compiled at RRS_OBS_LEVEL=0");

Instance Tenant(uint64_t seed) {
  std::vector<workload::ColorSpec> specs = {{1, 0.4}, {4, 0.5}, {16, 0.3}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

TEST(Obs0, FlightRecorderIsErasedButDumpsStayValid) {
  obs::FlightRecorder recorder;
  EXPECT_EQ(recorder.Ring("anything"), nullptr);
  EXPECT_EQ(recorder.num_rings(), 0u);

  const char* path = "obs0_dump.bin";
  ASSERT_TRUE(recorder.DumpToFile(path));
  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  std::remove(path);

  obs::DecodedFlight decoded;
  std::string error;
  ASSERT_TRUE(obs::DecodeFlightDump(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.version, 1u);
  EXPECT_TRUE(decoded.rings.empty());
}

TEST(Obs0, FleetRunnerIgnoresSloAndRecorder) {
  std::vector<Instance> tenants;
  for (size_t i = 0; i < 8; ++i) tenants.push_back(Tenant(40 + i));
  std::vector<fleet::FleetJob> jobs;
  for (const Instance& tenant : tenants) {
    fleet::FleetJob job;
    job.instance = &tenant;
    job.options.num_resources = 4;
    jobs.push_back(job);
  }

  fleet::SloTracker slo;
  obs::FlightRecorder recorder;
  fleet::FleetOptions options;
  options.num_shards = 2;
  options.slo = &slo;
  options.recorder = &recorder;
  std::vector<RunResult> results = fleet::FleetRunner(options).RunAll(jobs);

  ASSERT_EQ(results.size(), jobs.size());
  for (const RunResult& result : results) {
    EXPECT_GT(result.rounds_simulated, 0);
    EXPECT_GT(result.arrived, 0u);
  }
  // Never bound, never observed: the call sites are compiled out.
  EXPECT_EQ(slo.num_shards(), 0u);
  EXPECT_EQ(recorder.num_rings(), 0u);

  fleet::ChaosOptions chaos;
  chaos.num_workers = 2;
  chaos.slo = &slo;
  chaos.recorder = &recorder;
  std::vector<RunResult> chaotic =
      fleet::ChaosFleetRunner(chaos).RunAll(jobs);
  ASSERT_EQ(chaotic.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(chaotic[i].cost.drops, results[i].cost.drops) << i;
    EXPECT_EQ(chaotic[i].executed, results[i].executed) << i;
  }
  EXPECT_EQ(slo.num_shards(), 0u);
  EXPECT_EQ(recorder.num_rings(), 0u);
}

TEST(Obs0, ExportServerStillServes) {
  obs::Scope scope;
  const std::pair<std::string_view, uint64_t> counters[] = {{"lean.runs", 3}};
  scope.AbsorbCounters(counters);

  obs::ExportServer::Options options;
  options.scope = &scope;
  obs::ExportServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_EQ(obs::HttpGet("127.0.0.1", server.port(), "/healthz"), "ok\n");
  const std::string metrics =
      obs::HttpGet("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(metrics.find("rrs_lean_runs 3"), std::string::npos) << metrics;
  server.Stop();
}

}  // namespace
}  // namespace rrs
