// Tests for src/workload: synthetic generators, the Appendix A/B adversary
// constructions and their hand-built OFF schedules (validated and checked
// against the paper's closed-form costs), and the scenario generators.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "util/rng.h"
#include "workload/adversary.h"
#include "workload/scenarios.h"
#include "workload/synthetic.h"

namespace rrs {
namespace {

using workload::ColorSpec;

// ------------------------------------------------------------ Synthetic ----

TEST(Synthetic, PoissonDeterministicInSeed) {
  std::vector<ColorSpec> specs = {{2, 1.0}, {4, 0.5}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.seed = 9;
  Instance a = MakePoisson(specs, gen);
  Instance b = MakePoisson(specs, gen);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (JobId id = 0; id < a.num_jobs(); ++id) EXPECT_EQ(a.job(id), b.job(id));
}

TEST(Synthetic, PoissonRateControlsVolume) {
  std::vector<ColorSpec> low = {{2, 0.1}};
  std::vector<ColorSpec> high = {{2, 5.0}};
  workload::PoissonOptions gen;
  gen.rounds = 256;
  gen.seed = 13;
  EXPECT_LT(MakePoisson(low, gen).num_jobs(),
            MakePoisson(high, gen).num_jobs());
}

TEST(Synthetic, PoissonBatchedIsBatched) {
  std::vector<ColorSpec> specs = {{4, 1.0}, {8, 1.0}};
  workload::PoissonOptions gen;
  gen.rounds = 64;
  gen.batched = true;
  gen.seed = 17;
  Instance inst = MakePoisson(specs, gen);
  EXPECT_TRUE(inst.IsBatched());
}

TEST(Synthetic, PoissonRateLimitedIsRateLimited) {
  std::vector<ColorSpec> specs = {{2, 10.0}};  // heavy overload, must clamp
  workload::PoissonOptions gen;
  gen.rounds = 32;
  gen.rate_limited = true;
  gen.seed = 19;
  Instance inst = MakePoisson(specs, gen);
  EXPECT_TRUE(inst.IsRateLimited());
  EXPECT_GT(inst.num_jobs(), 0u);
}

TEST(Synthetic, BurstyHasQuietAndBusyStretches) {
  std::vector<ColorSpec> specs = {{4, 4.0}};
  workload::BurstyOptions gen;
  gen.rounds = 512;
  gen.p_off_to_on = 0.02;
  gen.p_on_to_off = 0.1;
  gen.seed = 23;
  Instance inst = MakeBursty(specs, gen);
  ASSERT_GT(inst.num_jobs(), 0u);
  // At least one empty round and one busy round.
  bool saw_empty = false, saw_busy = false;
  for (Round r = 0; r < 512; ++r) {
    auto jobs = inst.jobs_in_round(r);
    saw_empty |= jobs.empty();
    saw_busy |= jobs.size() >= 2;
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_busy);
}

TEST(Synthetic, ZipfSkewsPopularColors) {
  workload::ZipfOptions gen;
  gen.num_colors = 8;
  gen.zipf_exponent = 1.5;
  gen.jobs_per_round = 8.0;
  gen.rounds = 256;
  gen.seed = 29;
  Instance inst = MakeZipf(gen);
  const auto& per_color = inst.jobs_per_color();
  // Rank-0 color should dominate rank-7 heavily at exponent 1.5.
  EXPECT_GT(per_color[0], per_color[7] * 4);
}

TEST(Synthetic, ZipfDelayChoicesCycle) {
  workload::ZipfOptions gen;
  gen.num_colors = 5;
  gen.delay_choices = {2, 8};
  gen.rounds = 8;
  gen.seed = 31;
  Instance inst = MakeZipf(gen);
  EXPECT_EQ(inst.delay_bound(0), 2);
  EXPECT_EQ(inst.delay_bound(1), 8);
  EXPECT_EQ(inst.delay_bound(2), 2);
}

TEST(Synthetic, BatchArrivalsProducesBatchedInstance) {
  InstanceBuilder b;
  ColorId c = b.AddColor(4);
  b.AddJob(c, 1);
  b.AddJob(c, 5);
  b.AddJob(c, 8);
  Instance raw = b.Build();
  EXPECT_FALSE(raw.IsBatched());
  Instance batched = workload::BatchArrivals(raw, false);
  EXPECT_TRUE(batched.IsBatched());
  EXPECT_EQ(batched.num_jobs(), 3u);
  EXPECT_EQ(batched.job(0).arrival, 4);  // 1 -> 4
  EXPECT_EQ(batched.job(1).arrival, 8);  // 5 -> 8
  EXPECT_EQ(batched.job(2).arrival, 8);  // 8 stays
}

TEST(Synthetic, BatchArrivalsRateLimitClampsOverfullBatches) {
  InstanceBuilder b;
  ColorId c = b.AddColor(2);
  b.AddJobs(c, 0, 7);
  Instance raw = b.Build();
  Instance clamped = workload::BatchArrivals(raw, true);
  EXPECT_TRUE(clamped.IsRateLimited());
  EXPECT_EQ(clamped.num_jobs(), 2u);  // clamped to D = 2
}

// ------------------------------------------------------------ Adversary ----

TEST(DlruAdversary, StructureMatchesAppendixA) {
  const uint32_t n = 4;
  const uint64_t delta = 2;
  const int j = 3, k = 8;
  auto adv = workload::MakeDlruAdversary(n, delta, j, k);
  EXPECT_EQ(adv.instance.num_colors(), n / 2 + 1);
  EXPECT_TRUE(adv.instance.IsRateLimited());
  EXPECT_TRUE(adv.instance.DelayBoundsArePowersOfTwo());
  // Job counts: 2^k long + (n/2) * delta * 2^{k-j} short.
  const uint64_t expected =
      (uint64_t{1} << k) + (n / 2) * delta * (uint64_t{1} << (k - j));
  EXPECT_EQ(adv.instance.num_jobs(), expected);
}

TEST(DlruAdversary, OffScheduleValidatesWithClosedFormCost) {
  const uint32_t n = 4;
  const uint64_t delta = 2;
  const int j = 3, k = 8;
  auto adv = workload::MakeDlruAdversary(n, delta, j, k);
  Schedule off = workload::MakeDlruAdversaryOffSchedule(adv);
  auto v = off.Validate(adv.instance);
  ASSERT_TRUE(v.ok) << v.error;
  // Paper: OFF pays Δ (one reconfiguration) + 2^{k-j-1} n Δ (all short-term
  // jobs dropped).
  CostModel model{delta};
  EXPECT_EQ(v.cost.reconfigurations, 1u);
  EXPECT_EQ(v.cost.drops, (uint64_t{1} << (k - j - 1)) * n * delta);
  EXPECT_EQ(v.cost.total(model),
            delta + (uint64_t{1} << (k - j - 1)) * n * delta);
}

TEST(DlruAdversary, RejectsBadParameters) {
  // 2^{j+1} > n*delta violated: j=1, n=4, delta=2 -> 4 !> 8.
  EXPECT_DEATH(workload::MakeDlruAdversary(4, 2, 1, 8), "2\\^");
}

TEST(EdfAdversary, StructureMatchesAppendixB) {
  const uint32_t n = 4;
  const uint64_t delta = 5;
  const int j = 3, k = 7;
  auto adv = workload::MakeEdfAdversary(n, delta, j, k);
  EXPECT_EQ(adv.instance.num_colors(), n / 2 + 1);
  EXPECT_TRUE(adv.instance.IsRateLimited());
  // Long color p has 2^{k+p-1} jobs at round 0.
  for (uint32_t p = 0; p < n / 2; ++p) {
    EXPECT_EQ(adv.instance.jobs_per_color()[adv.long_colors[p]],
              uint64_t{1} << (k + static_cast<int>(p) - 1));
  }
}

TEST(EdfAdversary, OffScheduleValidatesWithClosedFormCost) {
  const uint32_t n = 4;
  const uint64_t delta = 5;
  const int j = 3, k = 7;
  auto adv = workload::MakeEdfAdversary(n, delta, j, k);
  Schedule off = workload::MakeEdfAdversaryOffSchedule(adv);
  auto v = off.Validate(adv.instance);
  ASSERT_TRUE(v.ok) << v.error;
  // Paper: OFF executes everything at reconfiguration cost (n/2 + 1) Δ.
  CostModel model{delta};
  EXPECT_EQ(v.cost.drops, 0u);
  EXPECT_EQ(v.cost.reconfigurations, n / 2 + 1);
  EXPECT_EQ(v.cost.total(model), (n / 2 + 1) * delta);
}

TEST(EdfAdversary, RejectsBadParameters) {
  EXPECT_DEATH(workload::MakeEdfAdversary(4, 3, 3, 7), "delta > n");
}

// ------------------------------------------------------------ Scenarios ----

TEST(IntroScenario, BackgroundAndShortJobsPresent) {
  workload::IntroScenarioOptions options;
  Instance inst = workload::MakeIntroScenario(options);
  ASSERT_EQ(inst.num_colors(),
            static_cast<size_t>(options.num_short_colors) + 1);
  const auto& per_color = inst.jobs_per_color();
  EXPECT_GT(per_color.back(), 0u);  // background jobs exist
  uint64_t short_total = 0;
  for (int s = 0; s < options.num_short_colors; ++s) short_total += per_color[s];
  EXPECT_GT(short_total, 0u);
  EXPECT_TRUE(inst.DelayBoundsArePowersOfTwo());
}

TEST(IntroScenario, LargerGapsMeanFewerShortJobs) {
  workload::IntroScenarioOptions sparse;
  sparse.gap_blocks = 8;
  workload::IntroScenarioOptions dense;
  dense.gap_blocks = 1;
  uint64_t sparse_jobs = workload::MakeIntroScenario(sparse).num_jobs();
  uint64_t dense_jobs = workload::MakeIntroScenario(dense).num_jobs();
  EXPECT_LT(sparse_jobs, dense_jobs);
}

TEST(RouterScenario, DefaultServicesProduceTraffic) {
  workload::RouterOptions options;
  options.rounds = 256;
  Instance inst = workload::MakeRouterScenario(
      workload::DefaultRouterServices(), options);
  EXPECT_EQ(inst.num_colors(), 4u);
  for (uint64_t count : inst.jobs_per_color()) EXPECT_GT(count, 0u);
  EXPECT_EQ(inst.color_name(0), "voice");
  EXPECT_EQ(inst.delay_bound(0), 2);
}

TEST(RouterScenario, LoadOscillates) {
  workload::RouterOptions options;
  options.rounds = 512;
  options.period = 128;
  options.seed = 37;
  std::vector<workload::RouterService> services = {{"web", 16, 0.2, 8.0}};
  Instance inst = workload::MakeRouterScenario(services, options);
  // Count arrivals in first vs third quarter-period windows; sinusoidal load
  // must make them differ substantially.
  uint64_t w1 = 0, w2 = 0;
  for (Round r = 0; r < 32; ++r) w1 += inst.jobs_in_round(r).size();
  for (Round r = 64; r < 96; ++r) w2 += inst.jobs_in_round(r).size();
  EXPECT_NE(w1, w2);
}

TEST(DatacenterScenario, PhaseShiftsChangeDominantService) {
  workload::DatacenterOptions options;
  options.rounds = 512;
  options.phase_length = 128;
  options.num_services = 6;
  options.seed = 41;
  Instance inst = workload::MakeDatacenterScenario(options);
  EXPECT_EQ(inst.num_colors(), 6u);
  EXPECT_GT(inst.num_jobs(), 0u);
  // Per-phase dominant service should differ between at least two phases:
  // find the busiest color in phase 0 and phase 1 windows.
  auto busiest_in = [&](Round lo, Round hi) {
    std::vector<uint64_t> counts(inst.num_colors(), 0);
    for (Round r = lo; r < hi; ++r) {
      for (const Job& j : inst.jobs_in_round(r)) ++counts[j.color];
    }
    return static_cast<ColorId>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  };
  // Not guaranteed for every seed, but stable for this fixed seed.
  EXPECT_NE(busiest_in(0, 128), busiest_in(256, 384));
}

TEST(Scenarios, RateLimitedVariantsAreRateLimited) {
  workload::RouterOptions router;
  router.rounds = 128;
  router.rate_limited = true;
  EXPECT_TRUE(workload::MakeRouterScenario(workload::DefaultRouterServices(),
                                           router)
                  .IsRateLimited());

  workload::DatacenterOptions dc;
  dc.rounds = 128;
  dc.rate_limited = true;
  EXPECT_TRUE(workload::MakeDatacenterScenario(dc).IsRateLimited());
}

}  // namespace
}  // namespace rrs
