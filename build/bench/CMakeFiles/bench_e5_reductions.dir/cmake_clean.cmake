file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_reductions.dir/bench_e5_reductions.cpp.o"
  "CMakeFiles/bench_e5_reductions.dir/bench_e5_reductions.cpp.o.d"
  "bench_e5_reductions"
  "bench_e5_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
