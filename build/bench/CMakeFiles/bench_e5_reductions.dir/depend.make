# Empty dependencies file for bench_e5_reductions.
# This may be replaced when dependencies are built.
