# Empty dependencies file for bench_e4_augmentation.
# This may be replaced when dependencies are built.
