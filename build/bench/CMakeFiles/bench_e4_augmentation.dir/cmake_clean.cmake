file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_augmentation.dir/bench_e4_augmentation.cpp.o"
  "CMakeFiles/bench_e4_augmentation.dir/bench_e4_augmentation.cpp.o.d"
  "bench_e4_augmentation"
  "bench_e4_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
