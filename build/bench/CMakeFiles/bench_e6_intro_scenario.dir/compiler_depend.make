# Empty compiler generated dependencies file for bench_e6_intro_scenario.
# This may be replaced when dependencies are built.
