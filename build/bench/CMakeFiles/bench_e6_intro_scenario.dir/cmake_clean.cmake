file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_intro_scenario.dir/bench_e6_intro_scenario.cpp.o"
  "CMakeFiles/bench_e6_intro_scenario.dir/bench_e6_intro_scenario.cpp.o.d"
  "bench_e6_intro_scenario"
  "bench_e6_intro_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_intro_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
