# Empty compiler generated dependencies file for bench_e2_edf_adversary.
# This may be replaced when dependencies are built.
