file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_edf_adversary.dir/bench_e2_edf_adversary.cpp.o"
  "CMakeFiles/bench_e2_edf_adversary.dir/bench_e2_edf_adversary.cpp.o.d"
  "bench_e2_edf_adversary"
  "bench_e2_edf_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_edf_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
