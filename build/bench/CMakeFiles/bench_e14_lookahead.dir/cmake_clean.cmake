file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_lookahead.dir/bench_e14_lookahead.cpp.o"
  "CMakeFiles/bench_e14_lookahead.dir/bench_e14_lookahead.cpp.o.d"
  "bench_e14_lookahead"
  "bench_e14_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
