file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_proof_pipeline.dir/bench_e15_proof_pipeline.cpp.o"
  "CMakeFiles/bench_e15_proof_pipeline.dir/bench_e15_proof_pipeline.cpp.o.d"
  "bench_e15_proof_pipeline"
  "bench_e15_proof_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_proof_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
