# Empty dependencies file for bench_e15_proof_pipeline.
# This may be replaced when dependencies are built.
