# Empty dependencies file for bench_e11_substrates.
# This may be replaced when dependencies are built.
