file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_substrates.dir/bench_e11_substrates.cpp.o"
  "CMakeFiles/bench_e11_substrates.dir/bench_e11_substrates.cpp.o.d"
  "bench_e11_substrates"
  "bench_e11_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
