# Empty compiler generated dependencies file for bench_e13_weighted_drops.
# This may be replaced when dependencies are built.
