file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_weighted_drops.dir/bench_e13_weighted_drops.cpp.o"
  "CMakeFiles/bench_e13_weighted_drops.dir/bench_e13_weighted_drops.cpp.o.d"
  "bench_e13_weighted_drops"
  "bench_e13_weighted_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_weighted_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
