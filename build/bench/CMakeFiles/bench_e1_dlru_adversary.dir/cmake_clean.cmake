file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_dlru_adversary.dir/bench_e1_dlru_adversary.cpp.o"
  "CMakeFiles/bench_e1_dlru_adversary.dir/bench_e1_dlru_adversary.cpp.o.d"
  "bench_e1_dlru_adversary"
  "bench_e1_dlru_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dlru_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
