# Empty dependencies file for bench_e1_dlru_adversary.
# This may be replaced when dependencies are built.
