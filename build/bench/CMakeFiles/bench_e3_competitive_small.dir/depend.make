# Empty dependencies file for bench_e3_competitive_small.
# This may be replaced when dependencies are built.
