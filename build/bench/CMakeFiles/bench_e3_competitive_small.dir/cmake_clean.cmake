file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_competitive_small.dir/bench_e3_competitive_small.cpp.o"
  "CMakeFiles/bench_e3_competitive_small.dir/bench_e3_competitive_small.cpp.o.d"
  "bench_e3_competitive_small"
  "bench_e3_competitive_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_competitive_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
