# Empty compiler generated dependencies file for bench_e8_epoch_bounds.
# This may be replaced when dependencies are built.
