# Empty dependencies file for bench_e7_drop_chain.
# This may be replaced when dependencies are built.
