file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_drop_chain.dir/bench_e7_drop_chain.cpp.o"
  "CMakeFiles/bench_e7_drop_chain.dir/bench_e7_drop_chain.cpp.o.d"
  "bench_e7_drop_chain"
  "bench_e7_drop_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_drop_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
