file(REMOVE_RECURSE
  "librrsched.a"
)
