# Empty dependencies file for rrsched.
# This may be replaced when dependencies are built.
