
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiments_adversary.cpp" "src/CMakeFiles/rrsched.dir/analysis/experiments_adversary.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/experiments_adversary.cpp.o.d"
  "/root/repo/src/analysis/experiments_ratio.cpp" "src/CMakeFiles/rrsched.dir/analysis/experiments_ratio.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/experiments_ratio.cpp.o.d"
  "/root/repo/src/analysis/experiments_reduction.cpp" "src/CMakeFiles/rrsched.dir/analysis/experiments_reduction.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/experiments_reduction.cpp.o.d"
  "/root/repo/src/analysis/ratio.cpp" "src/CMakeFiles/rrsched.dir/analysis/ratio.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/ratio.cpp.o.d"
  "/root/repo/src/analysis/runner.cpp" "src/CMakeFiles/rrsched.dir/analysis/runner.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/runner.cpp.o.d"
  "/root/repo/src/analysis/suite.cpp" "src/CMakeFiles/rrsched.dir/analysis/suite.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/suite.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/CMakeFiles/rrsched.dir/analysis/sweep.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/sweep.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/CMakeFiles/rrsched.dir/analysis/timeline.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/analysis/timeline.cpp.o.d"
  "/root/repo/src/container/lru_tracker.cpp" "src/CMakeFiles/rrsched.dir/container/lru_tracker.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/container/lru_tracker.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/rrsched.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/rrsched.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/rrsched.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/stream_engine.cpp" "src/CMakeFiles/rrsched.dir/core/stream_engine.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/core/stream_engine.cpp.o.d"
  "/root/repo/src/offline/bruteforce.cpp" "src/CMakeFiles/rrsched.dir/offline/bruteforce.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/offline/bruteforce.cpp.o.d"
  "/root/repo/src/offline/clairvoyant.cpp" "src/CMakeFiles/rrsched.dir/offline/clairvoyant.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/offline/clairvoyant.cpp.o.d"
  "/root/repo/src/offline/lower_bound.cpp" "src/CMakeFiles/rrsched.dir/offline/lower_bound.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/offline/lower_bound.cpp.o.d"
  "/root/repo/src/offline/nice_schedule.cpp" "src/CMakeFiles/rrsched.dir/offline/nice_schedule.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/offline/nice_schedule.cpp.o.d"
  "/root/repo/src/offline/optimal.cpp" "src/CMakeFiles/rrsched.dir/offline/optimal.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/offline/optimal.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/rrsched.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/reduce/aggregate.cpp" "src/CMakeFiles/rrsched.dir/reduce/aggregate.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/aggregate.cpp.o.d"
  "/root/repo/src/reduce/distribute.cpp" "src/CMakeFiles/rrsched.dir/reduce/distribute.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/distribute.cpp.o.d"
  "/root/repo/src/reduce/online.cpp" "src/CMakeFiles/rrsched.dir/reduce/online.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/online.cpp.o.d"
  "/root/repo/src/reduce/pipeline.cpp" "src/CMakeFiles/rrsched.dir/reduce/pipeline.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/pipeline.cpp.o.d"
  "/root/repo/src/reduce/punctualize.cpp" "src/CMakeFiles/rrsched.dir/reduce/punctualize.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/punctualize.cpp.o.d"
  "/root/repo/src/reduce/varbatch.cpp" "src/CMakeFiles/rrsched.dir/reduce/varbatch.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/reduce/varbatch.cpp.o.d"
  "/root/repo/src/sched/batched_base.cpp" "src/CMakeFiles/rrsched.dir/sched/batched_base.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/batched_base.cpp.o.d"
  "/root/repo/src/sched/cache_slots.cpp" "src/CMakeFiles/rrsched.dir/sched/cache_slots.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/cache_slots.cpp.o.d"
  "/root/repo/src/sched/color_state.cpp" "src/CMakeFiles/rrsched.dir/sched/color_state.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/color_state.cpp.o.d"
  "/root/repo/src/sched/dlru.cpp" "src/CMakeFiles/rrsched.dir/sched/dlru.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/dlru.cpp.o.d"
  "/root/repo/src/sched/dlru_edf.cpp" "src/CMakeFiles/rrsched.dir/sched/dlru_edf.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/dlru_edf.cpp.o.d"
  "/root/repo/src/sched/edf.cpp" "src/CMakeFiles/rrsched.dir/sched/edf.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/edf.cpp.o.d"
  "/root/repo/src/sched/greedy.cpp" "src/CMakeFiles/rrsched.dir/sched/greedy.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/greedy.cpp.o.d"
  "/root/repo/src/sched/invariant_checker.cpp" "src/CMakeFiles/rrsched.dir/sched/invariant_checker.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/invariant_checker.cpp.o.d"
  "/root/repo/src/sched/lookahead.cpp" "src/CMakeFiles/rrsched.dir/sched/lookahead.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/lookahead.cpp.o.d"
  "/root/repo/src/sched/par_edf.cpp" "src/CMakeFiles/rrsched.dir/sched/par_edf.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/par_edf.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/CMakeFiles/rrsched.dir/sched/registry.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/registry.cpp.o.d"
  "/root/repo/src/sched/super_epoch.cpp" "src/CMakeFiles/rrsched.dir/sched/super_epoch.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/sched/super_epoch.cpp.o.d"
  "/root/repo/src/util/check.cpp" "src/CMakeFiles/rrsched.dir/util/check.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/check.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/rrsched.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rrsched.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rrsched.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/str.cpp" "src/CMakeFiles/rrsched.dir/util/str.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/str.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rrsched.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/adversary.cpp" "src/CMakeFiles/rrsched.dir/workload/adversary.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/workload/adversary.cpp.o.d"
  "/root/repo/src/workload/mix.cpp" "src/CMakeFiles/rrsched.dir/workload/mix.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/workload/mix.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/CMakeFiles/rrsched.dir/workload/scenarios.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/workload/scenarios.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/rrsched.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/CMakeFiles/rrsched.dir/workload/trace_stats.cpp.o" "gcc" "src/CMakeFiles/rrsched.dir/workload/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
