# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rrs_util_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_container_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_core_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_sched_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_workload_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_reduce_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_offline_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_property_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_integration_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_stream_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_instrumentation_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_artifacts_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_differential_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_suite_test[1]_include.cmake")
