# Empty dependencies file for rrs_parallel_test.
# This may be replaced when dependencies are built.
