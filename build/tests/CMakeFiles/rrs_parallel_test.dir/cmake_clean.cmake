file(REMOVE_RECURSE
  "CMakeFiles/rrs_parallel_test.dir/parallel_test.cpp.o"
  "CMakeFiles/rrs_parallel_test.dir/parallel_test.cpp.o.d"
  "rrs_parallel_test"
  "rrs_parallel_test.pdb"
  "rrs_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
