# Empty dependencies file for rrs_integration_test.
# This may be replaced when dependencies are built.
