file(REMOVE_RECURSE
  "CMakeFiles/rrs_integration_test.dir/integration_test.cpp.o"
  "CMakeFiles/rrs_integration_test.dir/integration_test.cpp.o.d"
  "rrs_integration_test"
  "rrs_integration_test.pdb"
  "rrs_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
