# Empty dependencies file for rrs_property_test.
# This may be replaced when dependencies are built.
