file(REMOVE_RECURSE
  "CMakeFiles/rrs_property_test.dir/property_test.cpp.o"
  "CMakeFiles/rrs_property_test.dir/property_test.cpp.o.d"
  "rrs_property_test"
  "rrs_property_test.pdb"
  "rrs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
