file(REMOVE_RECURSE
  "CMakeFiles/rrs_core_test.dir/core_test.cpp.o"
  "CMakeFiles/rrs_core_test.dir/core_test.cpp.o.d"
  "rrs_core_test"
  "rrs_core_test.pdb"
  "rrs_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
