# Empty compiler generated dependencies file for rrs_core_test.
# This may be replaced when dependencies are built.
