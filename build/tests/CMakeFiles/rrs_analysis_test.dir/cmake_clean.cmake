file(REMOVE_RECURSE
  "CMakeFiles/rrs_analysis_test.dir/analysis_test.cpp.o"
  "CMakeFiles/rrs_analysis_test.dir/analysis_test.cpp.o.d"
  "rrs_analysis_test"
  "rrs_analysis_test.pdb"
  "rrs_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
