# Empty dependencies file for rrs_analysis_test.
# This may be replaced when dependencies are built.
