file(REMOVE_RECURSE
  "CMakeFiles/rrs_container_test.dir/container_test.cpp.o"
  "CMakeFiles/rrs_container_test.dir/container_test.cpp.o.d"
  "rrs_container_test"
  "rrs_container_test.pdb"
  "rrs_container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
