# Empty compiler generated dependencies file for rrs_container_test.
# This may be replaced when dependencies are built.
