# Empty compiler generated dependencies file for rrs_reduce_test.
# This may be replaced when dependencies are built.
