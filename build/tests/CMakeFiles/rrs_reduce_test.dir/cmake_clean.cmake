file(REMOVE_RECURSE
  "CMakeFiles/rrs_reduce_test.dir/reduce_test.cpp.o"
  "CMakeFiles/rrs_reduce_test.dir/reduce_test.cpp.o.d"
  "rrs_reduce_test"
  "rrs_reduce_test.pdb"
  "rrs_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
