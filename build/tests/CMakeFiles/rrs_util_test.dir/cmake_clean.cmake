file(REMOVE_RECURSE
  "CMakeFiles/rrs_util_test.dir/util_test.cpp.o"
  "CMakeFiles/rrs_util_test.dir/util_test.cpp.o.d"
  "rrs_util_test"
  "rrs_util_test.pdb"
  "rrs_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
