# Empty dependencies file for rrs_util_test.
# This may be replaced when dependencies are built.
