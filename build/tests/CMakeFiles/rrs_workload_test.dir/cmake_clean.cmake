file(REMOVE_RECURSE
  "CMakeFiles/rrs_workload_test.dir/workload_test.cpp.o"
  "CMakeFiles/rrs_workload_test.dir/workload_test.cpp.o.d"
  "rrs_workload_test"
  "rrs_workload_test.pdb"
  "rrs_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
