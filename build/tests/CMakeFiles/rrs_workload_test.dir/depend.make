# Empty dependencies file for rrs_workload_test.
# This may be replaced when dependencies are built.
