# Empty dependencies file for rrs_offline_test.
# This may be replaced when dependencies are built.
