file(REMOVE_RECURSE
  "CMakeFiles/rrs_offline_test.dir/offline_test.cpp.o"
  "CMakeFiles/rrs_offline_test.dir/offline_test.cpp.o.d"
  "rrs_offline_test"
  "rrs_offline_test.pdb"
  "rrs_offline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
