# Empty dependencies file for rrs_artifacts_test.
# This may be replaced when dependencies are built.
