file(REMOVE_RECURSE
  "CMakeFiles/rrs_artifacts_test.dir/artifacts_test.cpp.o"
  "CMakeFiles/rrs_artifacts_test.dir/artifacts_test.cpp.o.d"
  "rrs_artifacts_test"
  "rrs_artifacts_test.pdb"
  "rrs_artifacts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_artifacts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
