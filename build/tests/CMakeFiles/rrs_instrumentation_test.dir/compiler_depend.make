# Empty compiler generated dependencies file for rrs_instrumentation_test.
# This may be replaced when dependencies are built.
