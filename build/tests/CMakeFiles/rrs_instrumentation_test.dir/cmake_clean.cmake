file(REMOVE_RECURSE
  "CMakeFiles/rrs_instrumentation_test.dir/instrumentation_test.cpp.o"
  "CMakeFiles/rrs_instrumentation_test.dir/instrumentation_test.cpp.o.d"
  "rrs_instrumentation_test"
  "rrs_instrumentation_test.pdb"
  "rrs_instrumentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_instrumentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
