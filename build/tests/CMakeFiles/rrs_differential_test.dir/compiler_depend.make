# Empty compiler generated dependencies file for rrs_differential_test.
# This may be replaced when dependencies are built.
