file(REMOVE_RECURSE
  "CMakeFiles/rrs_differential_test.dir/differential_test.cpp.o"
  "CMakeFiles/rrs_differential_test.dir/differential_test.cpp.o.d"
  "rrs_differential_test"
  "rrs_differential_test.pdb"
  "rrs_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
