# Empty compiler generated dependencies file for rrs_sched_test.
# This may be replaced when dependencies are built.
