file(REMOVE_RECURSE
  "CMakeFiles/rrs_sched_test.dir/sched_test.cpp.o"
  "CMakeFiles/rrs_sched_test.dir/sched_test.cpp.o.d"
  "rrs_sched_test"
  "rrs_sched_test.pdb"
  "rrs_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
