file(REMOVE_RECURSE
  "CMakeFiles/rrs_suite_test.dir/suite_test.cpp.o"
  "CMakeFiles/rrs_suite_test.dir/suite_test.cpp.o.d"
  "rrs_suite_test"
  "rrs_suite_test.pdb"
  "rrs_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
