# Empty compiler generated dependencies file for rrs_suite_test.
# This may be replaced when dependencies are built.
