# Empty compiler generated dependencies file for rrs_stream_test.
# This may be replaced when dependencies are built.
