file(REMOVE_RECURSE
  "CMakeFiles/rrs_stream_test.dir/stream_test.cpp.o"
  "CMakeFiles/rrs_stream_test.dir/stream_test.cpp.o.d"
  "rrs_stream_test"
  "rrs_stream_test.pdb"
  "rrs_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
