file(REMOVE_RECURSE
  "CMakeFiles/run_experiments.dir/run_experiments.cpp.o"
  "CMakeFiles/run_experiments.dir/run_experiments.cpp.o.d"
  "run_experiments"
  "run_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
