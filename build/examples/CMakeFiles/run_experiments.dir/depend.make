# Empty dependencies file for run_experiments.
# This may be replaced when dependencies are built.
