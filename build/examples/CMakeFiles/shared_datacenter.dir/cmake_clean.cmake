file(REMOVE_RECURSE
  "CMakeFiles/shared_datacenter.dir/shared_datacenter.cpp.o"
  "CMakeFiles/shared_datacenter.dir/shared_datacenter.cpp.o.d"
  "shared_datacenter"
  "shared_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
