# Empty compiler generated dependencies file for shared_datacenter.
# This may be replaced when dependencies are built.
