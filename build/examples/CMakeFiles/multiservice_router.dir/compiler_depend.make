# Empty compiler generated dependencies file for multiservice_router.
# This may be replaced when dependencies are built.
