file(REMOVE_RECURSE
  "CMakeFiles/multiservice_router.dir/multiservice_router.cpp.o"
  "CMakeFiles/multiservice_router.dir/multiservice_router.cpp.o.d"
  "multiservice_router"
  "multiservice_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiservice_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
