file(REMOVE_RECURSE
  "CMakeFiles/adversary_explorer.dir/adversary_explorer.cpp.o"
  "CMakeFiles/adversary_explorer.dir/adversary_explorer.cpp.o.d"
  "adversary_explorer"
  "adversary_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
