// E4 — resource augmentation sweep: the full Theorem-3 pipeline's cost ratio
// against the certified OPT bracket [LowerBound, Clairvoyant] as n/m grows.
// Also probes where the paper's n = 8m (Theorem 1) vs n = 4m (Lemma 3.10)
// bookkeeping actually bites: the curve should flatten well before n/m = 8.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E4Params params;
  rrs::Table table = rrs::analysis::RunE4Augmentation(params);
  rrs::bench::PrintExperiment(
      "E4: augmentation sweep, Zipf workload, m=" + std::to_string(params.m),
      "the ratio falls steeply over the first doublings of n and flattens to "
      "a constant (resource competitiveness); ratio_vs_heuristic "
      "under-reports and ratio_vs_lb over-reports the true ratio.",
      table);
  return 0;
}
