// E15 — the proof pipeline's constants, measured: execute Theorem 3's
// offline direction (exact OPT -> Lemma 5.3 Punctualize -> Lemma 4.1
// Aggregate) on random instances and report the actual blowup constants next
// to the online pipeline's end-to-end ratio.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E15Params params;
  rrs::Table table = rrs::analysis::RunE15ProofPipeline(params);
  rrs::bench::PrintExperiment(
      "E15: Theorem 3's proof chain, executed (n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) + ")",
      "the offline chain OPT -> Punctualize -> Aggregate stays within a "
      "small constant of OPT (the reductions' real blowup, far below the "
      "proof's worst-case constants), and the online pipeline's ratio is "
      "constant alongside it.",
      table);
  return 0;
}
