// E9 — engine and scheduler throughput (google-benchmark): rounds/s and
// jobs/s of the simulation engine under each policy as colors and resources
// scale, plus the full pipeline. Establishes the repro-band claim that the
// whole system runs comfortably on a laptop.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "workload/synthetic.h"

namespace {

rrs::Instance MakeBenchInstance(size_t colors, rrs::Round rounds,
                                uint64_t seed) {
  std::vector<rrs::workload::ColorSpec> specs;
  const rrs::Round delays[] = {1, 2, 4, 8, 16, 32};
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % 6], 0.5});
  }
  rrs::workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.rate_limited = true;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

void RunPolicyBench(benchmark::State& state, const char* policy_name) {
  const size_t colors = static_cast<size_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  rrs::Instance inst = MakeBenchInstance(colors, /*rounds=*/4096, /*seed=*/7);
  auto policy = rrs::MakePolicy(policy_name);
  rrs::EngineOptions options;
  options.num_resources = n;
  options.cost_model.delta = 4;

  uint64_t jobs = 0;
  for (auto _ : state) {
    rrs::RunResult r = rrs::RunPolicy(inst, *policy, options);
    benchmark::DoNotOptimize(r.cost.drops);
    jobs += r.arrived;
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 4096,
      benchmark::Counter::kIsRate);
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

void BM_DlruEdf(benchmark::State& state) { RunPolicyBench(state, "dlru-edf"); }
void BM_Dlru(benchmark::State& state) { RunPolicyBench(state, "dlru"); }
void BM_Edf(benchmark::State& state) { RunPolicyBench(state, "edf"); }
void BM_GreedyEdf(benchmark::State& state) {
  RunPolicyBench(state, "greedy-edf");
}

void BM_Pipeline(benchmark::State& state) {
  const size_t colors = static_cast<size_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  rrs::Instance inst = MakeBenchInstance(colors, 4096, 7);
  rrs::EngineOptions options;
  options.num_resources = n;
  options.cost_model.delta = 4;
  for (auto _ : state) {
    auto result = rrs::reduce::SolveOnline(inst, options);
    benchmark::DoNotOptimize(result.validation.executed);
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 4096,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_DlruEdf)->Args({8, 8})->Args({32, 8})->Args({128, 8})
    ->Args({32, 16})->Args({32, 64});
BENCHMARK(BM_Dlru)->Args({32, 8})->Args({128, 8});
BENCHMARK(BM_Edf)->Args({32, 8})->Args({128, 8});
BENCHMARK(BM_GreedyEdf)->Args({32, 8})->Args({128, 8});
BENCHMARK(BM_Pipeline)->Args({8, 8})->Args({32, 8})->Args({32, 16});

BENCHMARK_MAIN();
