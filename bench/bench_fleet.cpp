// Fleet perf-regression gate (no google-benchmark dependency).
//
// Measures FleetRunner multi-tenant throughput and writes a JSON report
// (default BENCH_fleet.json, or argv[1]) with, per cell:
//
//   sessions_per_sec         tenants fully served per second
//   rounds_per_sec           aggregate simulated rounds per second across
//                            all live sessions (from FleetStats)
//   steady_allocs_per_round  heap allocations per simulated round in steady
//                            state, measured as
//                            (allocs(2H fleet) - allocs(H fleet)) / (N * H)
//                            over a warm runner, so per-tenant result
//                            materialization and pool warm-up cancel out.
//                            The session contract (core/session.h) says a
//                            warm fleet allocates nothing per step: ~0.
//
// The pooled-vs-fresh cell additionally records, informationally:
//
//   fresh_sessions_per_sec   the same tenants run with a freshly constructed
//                            Engine + policy per job (what analysis sweeps
//                            did before pooled fleet execution)
//   pooled_speedup           sessions_per_sec / fresh_sessions_per_sec
//
// tools/bench_compare.py diffs this report against the checked-in
// bench/BENCH_fleet.json and fails on regression; ctest wires the pair up
// under the opt-in "perf" configuration (ctest -C perf -L perf).
#include <malloc.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "fleet/fleet_runner.h"
#include "fleet/slo.h"
#include "obs/export_server.h"
#include "obs/flight_recorder.h"
#include "obs/scope.h"
#include "sched/dlru_edf.h"
#include "workload/arrival_source.h"
#include "workload/source.h"
#include "workload/synthetic.h"

// ---- Counting allocator hook ----------------------------------------------
// Counts every global operator-new, and tracks live heap bytes (via
// malloc_usable_size, so frees subtract exactly what their allocation
// added) with a high-water mark — the fleet/mem cells gate the *peak
// residency* per tenant, which is what distinguishes a fleet of
// materialized job vectors from a fleet of streaming generators.
static std::atomic<uint64_t> g_alloc_count{0};
static std::atomic<uint64_t> g_live_bytes{0};
static std::atomic<uint64_t> g_peak_bytes{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  const uint64_t chunk = malloc_usable_size(p);
  const uint64_t live =
      g_live_bytes.fetch_add(chunk, std::memory_order_relaxed) + chunk;
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  }
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

// --serve-metrics <port>: the obs twin cell binds its export server here
// instead of an ephemeral port, so `fleet_top <port>` (or curl) can watch
// the live 100k-tenant fleet while the bench runs. 0 = ephemeral.
uint16_t g_serve_port = 0;

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// A small multi-tenant workload: each tenant is one of kDistinct generated
// instances (cycled), so a 100k-tenant fleet does not pay 100k generator
// runs or hold 100k instances.
constexpr size_t kDistinct = 32;

std::vector<rrs::Instance> MakeTenantPool(rrs::Round rounds,
                                          size_t colors = 16,
                                          rrs::Round max_delay = 32) {
  std::vector<rrs::workload::ColorSpec> specs;
  std::vector<rrs::Round> delays;
  for (rrs::Round d = 1; d <= max_delay; d *= 2) delays.push_back(d);
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % delays.size()], 0.5});
  }
  std::vector<rrs::Instance> pool;
  pool.reserve(kDistinct);
  for (size_t i = 0; i < kDistinct; ++i) {
    rrs::workload::PoissonOptions gen;
    gen.rounds = rounds;
    gen.rate_limited = true;
    gen.seed = 1000 + i;
    pool.push_back(MakePoisson(specs, gen));
  }
  return pool;
}

std::vector<rrs::fleet::FleetJob> MakeJobs(
    const std::vector<rrs::Instance>& tenants, size_t count,
    rrs::fleet::FleetJob::Kind kind, uint32_t resources = 8) {
  std::vector<rrs::fleet::FleetJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rrs::fleet::FleetJob job;
    job.instance = &tenants[i % tenants.size()];
    job.options.num_resources = resources;
    job.options.cost_model.delta = 4;
    job.kind = kind;
    jobs.push_back(job);
  }
  return jobs;
}

// Streaming twin of MakeTenantPool: the same kDistinct workloads as
// ArrivalSource prototypes (Materialize of pool[i] is byte-identical to the
// instance pool's pool[i], so streaming cells simulate exactly the same
// rounds as their instance-fed refs).
std::vector<std::unique_ptr<rrs::workload::ArrivalSource>> MakeSourcePool(
    rrs::Round rounds, size_t colors = 16, rrs::Round max_delay = 32) {
  std::vector<rrs::workload::ColorSpec> specs;
  std::vector<rrs::Round> delays;
  for (rrs::Round d = 1; d <= max_delay; d *= 2) delays.push_back(d);
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % delays.size()], 0.5});
  }
  std::vector<std::unique_ptr<rrs::workload::ArrivalSource>> pool;
  pool.reserve(kDistinct);
  for (size_t i = 0; i < kDistinct; ++i) {
    rrs::workload::PoissonOptions gen;
    gen.rounds = rounds;
    gen.rate_limited = true;
    gen.seed = 1000 + i;
    pool.push_back(rrs::workload::MakePoissonSource(specs, gen));
  }
  return pool;
}

// Streaming jobs: queued tenants hold only a Clone closure over the
// prototype pool; a source exists only while its tenant is live.
std::vector<rrs::fleet::FleetJob> MakeStreamingJobs(
    const std::vector<std::unique_ptr<rrs::workload::ArrivalSource>>& pool,
    size_t count, uint32_t resources = 8) {
  std::vector<rrs::fleet::FleetJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rrs::fleet::FleetJob job;
    const rrs::workload::ArrivalSource* proto = pool[i % pool.size()].get();
    job.make_source = [proto] { return proto->Clone(); };
    job.options.num_resources = resources;
    job.options.cost_model.delta = 4;
    jobs.push_back(job);
  }
  return jobs;
}

// Materialize-per-session jobs: each admission clones the prototype,
// drains it into a full Instance, and replays that via an owning
// InstanceSource — the same generation work as MakeStreamingJobs plus the
// materialized job-vector build the streaming form avoids.
std::vector<rrs::fleet::FleetJob> MakeMaterializingJobs(
    const std::vector<std::unique_ptr<rrs::workload::ArrivalSource>>& pool,
    size_t count, uint32_t resources = 8) {
  std::vector<rrs::fleet::FleetJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rrs::fleet::FleetJob job;
    const rrs::workload::ArrivalSource* proto = pool[i % pool.size()].get();
    job.make_source = [proto] {
      auto fresh = proto->Clone();
      return rrs::workload::MakeOwnedInstanceSource(
          rrs::workload::Materialize(*fresh));
    };
    job.options.num_resources = resources;
    job.options.cost_model.delta = 4;
    jobs.push_back(job);
  }
  return jobs;
}

struct Cell {
  const char* name;
  size_t tenants;
  rrs::Round rounds;             // per-tenant horizon
  size_t max_live;               // 0 = unbounded
  rrs::fleet::FleetJob::Kind kind = rrs::fleet::FleetJob::Kind::kReplay;
  bool compare_fresh = false;    // also time per-job fresh construction
  size_t colors = 16;
  uint32_t resources = 8;
  rrs::Round max_delay = 32;     // largest delay class (bounds drain length)
  // Lane-parallel execution (fleet/batch_engine): 0 = scalar engines. A
  // batched cell names its scalar twin via scalar_ref so the perf gate can
  // hold the batched/scalar rounds/s ratio, and stamps the floor that
  // ratio must clear (tools/bench_compare.py reads the cell's speedup_gate,
  // falling back to --min-batched-speedup).
  uint32_t batch_width = 0;
  const char* scalar_ref = nullptr;
  double speedup_gate = 0;  // 0 = use the compare tool's default
  // Observability twin: runs with the full plane attached — SLO tracker fed
  // at every tick barrier, flight recorder, obs scope, and a live
  // ExportServer being scraped throughout. Names its bare twin via
  // scalar_ref with a sub-1.0 speedup_gate (the allowed overhead floor).
  bool obs_plane = false;
  // Streaming twin: the same workloads as ArrivalSource Clone closures
  // instead of materialized instances (sources exist only while their
  // tenants are live). Names its instance-fed twin via scalar_ref with a
  // sub-1.0 speedup_gate: streaming must not cost rounds/s.
  bool streaming = false;
  // Materialize-per-session twin: each tenant clones the same source
  // prototype, materializes it into a full Instance at admission, and
  // replays that — the pre-streaming execution model for fleets whose
  // tenants have distinct workloads (the shared kDistinct pool of the
  // replay cells amortizes generation 100k ways; a real per-tenant fleet
  // cannot). The streaming cell gates against this twin: same per-session
  // generation work, different representation.
  bool materialize = false;
};

struct CellResult {
  std::string name;
  double sessions_per_sec = 0;
  double rounds_per_sec = 0;
  double steady_allocs_per_round = -1;  // <0 = not measured (pipeline cells)
  double fresh_sessions_per_sec = -1;   // <0 = not measured
  uint32_t batch_width = 0;
  std::string scalar_ref;   // empty = scalar cell
  double speedup_gate = 0;
  double lane_occupancy = -1;  // mean live lanes per slab step / width
  // fleet/mem cells: peak heap residency per tenant (workload + fleet
  // state), and the gate tying the streaming cell to its materialized ref
  // (streaming bytes/tenant must be <= max_bytes_ratio * ref's).
  double bytes_per_tenant = -1;
  std::string mem_ref;
  double max_bytes_ratio = 0;
  // Median over interleaved windows of (this cell's rounds/s) / (its
  // scalar_ref's rounds/s in the same window index). Adjacent windows share
  // the machine's noise environment, so the paired ratio is far more stable
  // than dividing two independently-taken best-of-N maxima — the compare
  // tool gates on this when present. <0 = no scalar_ref in the group.
  double measured_speedup = -1;
};

// Best-of-N timing windows: the max rate over independent windows is
// robust to scheduler interference on shared machines, which a single
// long window averages in. Groups gating a tight ratio (the obs twin's
// <=2% overhead floor) take extra windows: at 100k tenants a window is a
// single ~2s RunAll sample, and keeping windows that short maximizes how
// tightly a twin window and its ref window share the machine's noise
// environment — the paired ratios (see measured_speedup) live or die on
// that adjacency. Longer best-of-several windows were tried and are
// *worse*: they push paired windows ~4s apart, decorrelating the noise.
// RRS_BENCH_SMOKE=1: one window, one iteration per window — the tier-1
// smoke run that proves every cell still executes and emits its metrics;
// numbers are only ever checked for shape (bench_compare.py --shape-only),
// never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

int BenchWindows() { return SmokeMode() ? 1 : 4; }
int BenchObsWindows() { return SmokeMode() ? 1 : 16; }
double BenchWindowSeconds() { return SmokeMode() ? 0.0 : 0.12; }

// One timing window: repeat full fleets over the warm runner, keep the best
// observed rate in `out`. Returns the window's rounds/s so callers can pair
// windows across interleaved cells (see measured_speedup).
double TimeWindow(rrs::fleet::FleetRunner& runner,
                  const std::vector<rrs::fleet::FleetJob>& jobs,
                  size_t tenant_count, CellResult& out) {
  const rrs::fleet::FleetStats window_start = runner.stats();
  uint64_t iters = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    runner.RunAll(jobs);
    ++iters;
    now = Clock::now();
  } while (Seconds(start, now) < BenchWindowSeconds());
  const double elapsed = Seconds(start, now);
  const double sps = static_cast<double>(iters * tenant_count) / elapsed;
  const double rps = static_cast<double>(runner.stats().rounds_stepped -
                                         window_start.rounds_stepped) /
                     elapsed;
  if (sps > out.sessions_per_sec) {
    out.sessions_per_sec = sps;
    out.rounds_per_sec = rps;
  }
  return rps;
}

// Measures `cells` (one scalar cell, or a scalar cell followed by its
// batched twin over the same tenants). A pair's timing windows interleave —
// scalar, batched, scalar, batched, ... over shared warm runners — so slow
// machine drift (frequency/thermal state, background load) lands on both
// sides of the gated batched/scalar ratio and divides out.
std::vector<CellResult> RunCells(std::span<const Cell> cells) {
  const Cell& base = cells.front();
  const std::vector<rrs::Instance> tenants =
      MakeTenantPool(base.rounds, base.colors, base.max_delay);
  const auto jobs =
      MakeJobs(tenants, base.tenants, base.kind, base.resources);
  // Streaming twins pull the identical workloads from a source pool.
  std::vector<std::unique_ptr<rrs::workload::ArrivalSource>> source_pool;
  std::vector<std::vector<rrs::fleet::FleetJob>> cell_jobs(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].streaming || cells[i].materialize) {
      if (source_pool.empty()) {
        source_pool = MakeSourcePool(base.rounds, base.colors, base.max_delay);
      }
      cell_jobs[i] =
          cells[i].streaming
              ? MakeStreamingJobs(source_pool, base.tenants, base.resources)
              : MakeMaterializingJobs(source_pool, base.tenants,
                                      base.resources);
    }
  }
  const auto jobs_of = [&](size_t i) -> const std::vector<rrs::fleet::FleetJob>& {
    return cell_jobs[i].empty() ? jobs : cell_jobs[i];
  };

  // Full observability plane for obs twin cells: the tracker/recorder are
  // fed by the runner's hot path, the server is scraped by a live polling
  // thread for the whole measurement — the twin pays exactly what a
  // production fleet with monitoring attached pays.
  struct ObsPlane {
    rrs::obs::Scope scope;
    rrs::fleet::SloTracker slo;
    rrs::obs::FlightRecorder recorder;
    std::unique_ptr<rrs::obs::ExportServer> server;
    std::thread scraper;
    std::atomic<bool> stop{false};
  };

  std::vector<std::unique_ptr<ObsPlane>> planes;
  std::vector<std::unique_ptr<rrs::fleet::FleetRunner>> runners;
  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    rrs::fleet::FleetOptions options;
    options.rounds_per_tick = 32;
    options.max_live_sessions = cell.max_live;
    options.batch_width = cell.batch_width;
    planes.push_back(nullptr);
    if (cell.obs_plane) {
      auto plane = std::make_unique<ObsPlane>();
      options.scope = &plane->scope;
      options.slo = &plane->slo;
      options.recorder = &plane->recorder;
      rrs::obs::ExportServer::Options server_options;
      server_options.port = g_serve_port;  // 0 = ephemeral
      server_options.scope = &plane->scope;
      plane->server =
          std::make_unique<rrs::obs::ExportServer>(server_options);
      rrs::fleet::SloTracker* slo = &plane->slo;
      plane->server->AddMetricsSection(
          [slo] { return slo->RenderPrometheus(); });
      plane->server->Handle("/tenants", "application/json",
                            [slo] { return slo->TenantsJson(); });
      std::string error;
      if (plane->server->Start(&error)) {
        const uint16_t port = plane->server->port();
        ObsPlane* p = plane.get();
        // 250ms is already ~60x more aggressive than a production
        // Prometheus scrape interval (15s default); on a single-CPU box
        // every scrape preempts the workers, so the cadence is itself part
        // of the measured overhead — keep it hostile but not silly.
        plane->scraper = std::thread([p, port] {
          while (!p->stop.load(std::memory_order_relaxed)) {
            rrs::obs::HttpGet("127.0.0.1", port, "/metrics");
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
          }
        });
      } else {
        std::fprintf(stderr, "obs cell: export server failed: %s\n",
                     error.c_str());
      }
      planes.back() = std::move(plane);
    }
    runners.push_back(
        std::make_unique<rrs::fleet::FleetRunner>(std::move(options)));
    // warm-up (pool growth, arena sizing)
    runners.back()->RunAll(jobs_of(runners.size() - 1));

    CellResult out;
    out.name = cell.name;
    out.batch_width = cell.batch_width;
    if (cell.scalar_ref != nullptr) out.scalar_ref = cell.scalar_ref;
    out.speedup_gate = cell.speedup_gate;
    results.push_back(std::move(out));
  }

  int windows = BenchWindows();
  for (const Cell& cell : cells) {
    if (cell.obs_plane) windows = BenchObsWindows();
  }
  std::vector<std::vector<double>> window_rates(cells.size());
  for (int w = 0; w < windows; ++w) {
    for (size_t i = 0; i < cells.size(); ++i) {
      window_rates[i].push_back(
          TimeWindow(*runners[i], jobs_of(i), base.tenants, results[i]));
    }
  }
  // Paired ratios, ABA-style: window w of a twin against the geometric
  // mean of the ref windows bracketing it in time (ref window w ran just
  // before, ref window w+1 runs next) — linear machine drift cancels
  // exactly, and a spike on the ref side is halved. The per-window ratios
  // then take an inner-half trimmed mean: the trim discards the quarter of
  // ratios at each extreme — the pairs where an interference spike hit
  // only one side — and the mean over the surviving middle half is a
  // tighter estimate than the plain median when N is large enough to
  // afford the trim (the obs group's 16 windows).
  for (size_t i = 1; i < cells.size(); ++i) {
    if (results[i].scalar_ref.empty()) continue;
    std::vector<double> ratios;
    for (size_t w = 0; w < static_cast<size_t>(windows); ++w) {
      const double ref_before = window_rates[0][w];
      const double ref_after = w + 1 < static_cast<size_t>(windows)
                                   ? window_rates[0][w + 1]
                                   : ref_before;
      if (ref_before > 0 && ref_after > 0) {
        ratios.push_back(window_rates[i][w] /
                         std::sqrt(ref_before * ref_after));
      }
    }
    if (ratios.empty()) continue;
    std::sort(ratios.begin(), ratios.end());
    const size_t trim = ratios.size() / 4;
    double sum = 0.0;
    for (size_t r = trim; r < ratios.size() - trim; ++r) sum += ratios[r];
    results[i].measured_speedup =
        sum / static_cast<double>(ratios.size() - 2 * trim);
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    rrs::fleet::FleetRunner& runner = *runners[i];
    CellResult& out = results[i];

    if (cell.batch_width > 1) {
      const rrs::fleet::FleetStats stats = runner.stats();
      if (stats.slab_rounds_stepped > 0) {
        out.lane_occupancy =
            static_cast<double>(stats.lane_rounds_stepped) /
            (static_cast<double>(stats.slab_rounds_stepped) *
             cell.batch_width);
      }
    }

    // Steady-state allocations (replay cells): horizon-H vs horizon-2H
    // fleets through one warm runner. Result materialization, pool
    // bookkeeping, and per-tenant rebinds are identical in both, so the
    // difference isolates per-round allocation.
    // (The materialize twin is exempt: per-session Instance builds ARE its
    // workload — holding it to the per-round alloc budget would gate the
    // very cost the streaming comparison exists to show.)
    if (cell.kind == rrs::fleet::FleetJob::Kind::kReplay &&
        !cell.materialize) {
      const std::vector<rrs::Instance> tenants_2h =
          cell.streaming ? std::vector<rrs::Instance>{}
                         : MakeTenantPool(2 * cell.rounds, cell.colors,
                                          cell.max_delay);
      std::vector<std::unique_ptr<rrs::workload::ArrivalSource>> sources_2h;
      if (cell.streaming) {
        sources_2h =
            MakeSourcePool(2 * cell.rounds, cell.colors, cell.max_delay);
      }
      const auto jobs_2h =
          cell.streaming
              ? MakeStreamingJobs(sources_2h, cell.tenants, cell.resources)
              : MakeJobs(tenants_2h, cell.tenants, cell.kind, cell.resources);
      runner.RunAll(jobs_2h);  // warm-up: size arenas for the 2H horizon
      auto measure = [&](const std::vector<rrs::fleet::FleetJob>& fleet) {
        const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
        runner.RunAll(fleet);
        return g_alloc_count.load(std::memory_order_relaxed) - before;
      };
      const uint64_t allocs_h = measure(jobs_of(i));
      const uint64_t allocs_2h = measure(jobs_2h);
      const uint64_t extra = allocs_2h > allocs_h ? allocs_2h - allocs_h : 0;
      out.steady_allocs_per_round =
          static_cast<double>(extra) /
          static_cast<double>(cell.tenants * cell.rounds);
    }

    // Pooled-vs-fresh: the same tenants with a freshly constructed engine
    // and policy per job — the pre-fleet sweep execution model.
    if (cell.compare_fresh) {
      auto run_fresh = [&] {
        for (const rrs::fleet::FleetJob& job : jobs) {
          rrs::DlruEdfPolicy policy;
          rrs::RunPolicy(*job.instance, policy, job.options);
        }
      };
      run_fresh();  // warm-up
      for (int w = 0; w < BenchWindows(); ++w) {
        uint64_t fresh_iters = 0;
        const auto fresh_start = Clock::now();
        auto fresh_now = fresh_start;
        do {
          run_fresh();
          ++fresh_iters;
          fresh_now = Clock::now();
        } while (Seconds(fresh_start, fresh_now) < BenchWindowSeconds());
        const double sps = static_cast<double>(fresh_iters * cell.tenants) /
                           Seconds(fresh_start, fresh_now);
        out.fresh_sessions_per_sec =
            std::max(out.fresh_sessions_per_sec, sps);
      }
    }
  }

  for (auto& plane : planes) {
    if (plane == nullptr) continue;
    plane->stop.store(true);
    if (plane->scraper.joinable()) plane->scraper.join();
    if (plane->server != nullptr) plane->server->Stop();
  }
  return results;
}

// ---- Memory cells: peak residency per tenant, materialized vs streaming --
//
// Unlike the throughput cells (which cycle kDistinct shared workloads so a
// 100k fleet stays cheap), the mem cells give every tenant its OWN
// workload — the shape where materialization actually costs memory: N job
// vectors resident for the whole run vs at most max_live_sessions live
// generators. Peak live-heap bytes are measured over workload construction
// + the full RunAll, minus the baseline before the cell; per tenant.
std::vector<CellResult> RunMemCells() {
  constexpr size_t kMemTenants = 8192;
  constexpr size_t kMemLive = 1024;
  constexpr rrs::Round kMemRounds = 64;
  std::vector<rrs::workload::ColorSpec> specs;
  for (rrs::Round d = 1; d <= 32; d *= 2) {
    for (int k = 0; k < 2; ++k) specs.push_back({d, 0.5});
  }

  const auto peak_during = [](const std::function<void()>& fn) {
    const uint64_t before = g_live_bytes.load(std::memory_order_relaxed);
    g_peak_bytes.store(before, std::memory_order_relaxed);
    fn();
    const uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    return peak > before ? peak - before : 0;
  };
  rrs::fleet::FleetOptions options;
  options.rounds_per_tick = 32;
  options.max_live_sessions = kMemLive;

  CellResult materialized;
  materialized.name = "fleet/mem/materialized";
  materialized.bytes_per_tenant =
      static_cast<double>(peak_during([&] {
        std::vector<rrs::Instance> instances;
        instances.reserve(kMemTenants);
        for (size_t i = 0; i < kMemTenants; ++i) {
          rrs::workload::PoissonOptions gen;
          gen.rounds = kMemRounds;
          gen.rate_limited = true;
          gen.seed = 3000 + i;
          instances.push_back(MakePoisson(specs, gen));
        }
        rrs::fleet::FleetRunner runner(options);
        runner.RunAll(MakeJobs(instances, kMemTenants,
                               rrs::fleet::FleetJob::Kind::kReplay));
      })) /
      static_cast<double>(kMemTenants);

  CellResult streaming;
  streaming.name = "fleet/mem/streaming";
  streaming.mem_ref = materialized.name;
  // The workload payload shrinks from O(jobs) x N tenants to
  // O(generator state) x max_live; the remaining per-tenant cost is the
  // job/result bookkeeping both forms pay. 0.5 is a loose floor — measured
  // ratios sit far below it.
  streaming.max_bytes_ratio = 0.5;
  streaming.bytes_per_tenant =
      static_cast<double>(peak_during([&] {
        std::vector<rrs::fleet::FleetJob> jobs;
        jobs.reserve(kMemTenants);
        for (size_t i = 0; i < kMemTenants; ++i) {
          rrs::fleet::FleetJob job;
          const uint64_t seed = 3000 + i;
          const auto* spec_list = &specs;
          job.make_source = [spec_list, seed] {
            rrs::workload::PoissonOptions gen;
            gen.rounds = kMemRounds;
            gen.rate_limited = true;
            gen.seed = seed;
            return rrs::workload::MakePoissonSource(*spec_list, gen);
          };
          job.options.num_resources = 8;
          job.options.cost_model.delta = 4;
          jobs.push_back(job);
        }
        rrs::fleet::FleetRunner runner(options);
        runner.RunAll(jobs);
      })) /
      static_cast<double>(kMemTenants);

  return {std::move(materialized), std::move(streaming)};
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve-metrics") == 0 && i + 1 < argc) {
      g_serve_port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      out_path = argv[i];
    }
  }
  if (g_serve_port != 0) {
    std::printf("serving /metrics for the obs cell on 127.0.0.1:%u "
                "(watch with: fleet_top %u)\n",
                g_serve_port, g_serve_port);
  }

  // Each batched cell follows its scalar twin and RunCells measures the two
  // with interleaved timing windows: the gated quantity is their rounds/s
  // ratio (tools/bench_compare.py, keyed by scalar_ref, floor per cell via
  // speedup_gate), and interleaving keeps slow drift — thermal/frequency
  // state, background load — common to both sides of the division. The
  // batched twins use the same tenants and live window, packed into
  // full-width 64-lane slabs (shared per-slab-round work — wheel slot scan,
  // boundary masks, class-order memoization — amortizes over every resident
  // lane).
  const Cell cells[] = {
      // Concurrency scale: every tenant live at once (unbounded window).
      {"fleet/1k/replay", 1000, 64, 0},
      // Long-horizon cells spend most rounds in the post-arrival drain,
      // where per-round work is light and the slab's fixed stepping costs
      // are a larger fraction — the win is real but smaller, so they carry
      // a regression floor rather than the headline target.
      {"fleet/1k/batched", 1000, 64, 0,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/1k/replay",
       /*speedup_gate=*/1.25},
      {"fleet/10k/replay", 10000, 32, 0},
      {"fleet/10k/batched", 10000, 32, 0,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/10k/replay",
       /*speedup_gate=*/1.25},
      // 100k tenants through a bounded live window: the memory-capped shape
      // a real control plane runs, dominated by session recycling. This is
      // the headline cell: the batched engine must hold >= 2x the scalar
      // twin's rounds/s.
      {"fleet/100k/capped", 100000, 8, 1024},
      // Observability twin of the headline cell: always-on SLO tracking,
      // flight recorder, obs scope, and a live scrape loop against the
      // export server. The gate holds the overhead to <= 2% of the bare
      // cell's rounds/s (speedup_gate 0.98 on the same within-run ratio
      // machinery the batched cells use). Listed directly after its ref so
      // their interleaved windows are back-to-back — the tighter in time a
      // twin window and its ref window sit, the more machine noise the
      // paired ratio cancels, and this gate is the tightest in the file.
      {"fleet/100k/obs", 100000, 8, 1024,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/0, /*scalar_ref=*/"fleet/100k/capped",
       /*speedup_gate=*/0.98, /*obs_plane=*/true},
      {"fleet/100k/batched", 100000, 8, 1024,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/100k/capped",
       /*speedup_gate=*/2.0},
      // Per-session-workload pair: both cells regenerate every tenant's
      // arrivals at admission (the shape a fleet with distinct per-tenant
      // workloads runs — the shared kDistinct pool above amortizes
      // generation 100k ways, which no such fleet can). The leader
      // materializes each clone into a full Instance and replays it (the
      // pre-streaming model); the streaming twin feeds the clone straight
      // to the engine. The gate holds streaming rounds/s to >= 95% of the
      // materializing twin — the memory win (fleet/mem cells) must not
      // cost throughput for the same generation work.
      {"fleet/100k/matsrc", 100000, 8, 1024,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/0, /*scalar_ref=*/nullptr, /*speedup_gate=*/0,
       /*obs_plane=*/false, /*streaming=*/false, /*materialize=*/true},
      {"fleet/100k/streaming", 100000, 8, 1024,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/0, /*scalar_ref=*/"fleet/100k/matsrc",
       /*speedup_gate=*/0.95, /*obs_plane=*/false, /*streaming=*/true},
      // Theorem-3 pipeline tenants through pooled pipeline sessions.
      {"fleet/1k/pipeline", 1000, 32, 0,
       rrs::fleet::FleetJob::Kind::kPipeline},
      // Sweep execution model: pooled sessions vs per-job construction.
      // Short sessions (tight horizon AND tight delay classes, so the drain
      // tail is short), where per-run setup — cold table/ring/scratch
      // allocation — is a real fraction of the run. This is the regime sweep
      // cells and interactive control planes live in.
      {"sweep/pooled-vs-fresh", 2000, 4, 0,
       rrs::fleet::FleetJob::Kind::kReplay, /*compare_fresh=*/true,
       /*colors=*/128, /*resources=*/32, /*max_delay=*/4},
  };

  std::vector<CellResult> results;
  const size_t num_cells = sizeof(cells) / sizeof(cells[0]);
  for (size_t i = 0; i < num_cells; ++i) {
    // Cells naming the leading cell as their scalar_ref run grouped with it
    // (interleaved windows): a scalar cell may be followed by its batched
    // twin AND its observability twin, all measured round-robin so machine
    // drift divides out of every gated ratio.
    size_t group = 1;
    while (i + group < num_cells && cells[i + group].scalar_ref != nullptr &&
           std::strcmp(cells[i + group].scalar_ref, cells[i].name) == 0) {
      ++group;
    }
    const std::span<const Cell> group_cells(&cells[i], group);
    auto group_results = RunCells(group_cells);
    // Retry-on-gate-miss: the paired-ratio estimator's noise floor on a
    // busy single-CPU box is ~±1-2% (a null twin of the scalar cell reads
    // 0.98-1.00x), so the tightest gates (the obs twin's 0.98 floor) can
    // lose a coin flip no real regression caused. Rerun the group and keep
    // the best attempt, judged by the tightest-gated twin's estimate; a
    // genuine >2% overhead regression fails every attempt.
    for (int attempt = 0; attempt < (SmokeMode() ? 1 : 2); ++attempt) {
      const auto gate_miss = [](const CellResult& r) {
        return r.speedup_gate > 0 && r.measured_speedup >= 0 &&
               r.measured_speedup < r.speedup_gate;
      };
      if (std::none_of(group_results.begin(), group_results.end(),
                       gate_miss)) {
        break;
      }
      auto retry = RunCells(group_cells);
      const auto margin = [](const std::vector<CellResult>& rs) {
        double worst = 1e300;
        for (const CellResult& r : rs) {
          if (r.speedup_gate > 0 && r.measured_speedup >= 0) {
            worst = std::min(worst, r.measured_speedup - r.speedup_gate);
          }
        }
        return worst;
      };
      if (margin(retry) > margin(group_results)) {
        group_results = std::move(retry);
      }
    }
    i += group - 1;
    for (CellResult& r : group_results) {
      results.push_back(std::move(r));
    }
  }
  for (CellResult& r : RunMemCells()) {
    results.push_back(std::move(r));
  }
  for (const CellResult& r : results) {
    if (r.bytes_per_tenant >= 0) {
      std::printf("%-24s %12.0f bytes/tenant", r.name.c_str(),
                  r.bytes_per_tenant);
      if (!r.mem_ref.empty()) {
        std::printf(" (gate: <= %.2fx of %s)", r.max_bytes_ratio,
                    r.mem_ref.c_str());
      }
      std::printf("\n");
      continue;
    }
    std::printf("%-24s %12.0f sessions/s %12.0f rounds/s", r.name.c_str(),
                r.sessions_per_sec, r.rounds_per_sec);
    if (r.steady_allocs_per_round >= 0) {
      std::printf(" %8.4f allocs/round", r.steady_allocs_per_round);
    }
    if (r.fresh_sessions_per_sec > 0) {
      std::printf(" (fresh %.0f/s, speedup %.2fx)", r.fresh_sessions_per_sec,
                  r.sessions_per_sec / r.fresh_sessions_per_sec);
    }
    if (r.lane_occupancy >= 0) {
      std::printf(" (width %u, occupancy %.3f", r.batch_width,
                  r.lane_occupancy);
      if (r.measured_speedup >= 0) {
        std::printf(", %.2fx scalar", r.measured_speedup);
      }
      std::printf(")");
    } else if (!r.scalar_ref.empty() && r.measured_speedup >= 0) {
      // Observability/streaming twin: paired-window ratio vs the bare twin.
      std::printf(" (%.2fx of %s)", r.measured_speedup, r.scalar_ref.c_str());
    }
    std::printf("\n");
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sessions_per_sec\": %.1f, "
                 "\"rounds_per_sec\": %.1f",
                 r.name.c_str(), r.sessions_per_sec, r.rounds_per_sec);
    if (r.steady_allocs_per_round >= 0) {
      std::fprintf(f, ", \"steady_allocs_per_round\": %.4f",
                   r.steady_allocs_per_round);
    }
    if (r.fresh_sessions_per_sec > 0) {
      std::fprintf(f,
                   ", \"fresh_sessions_per_sec\": %.1f, "
                   "\"pooled_speedup\": %.3f",
                   r.fresh_sessions_per_sec,
                   r.sessions_per_sec / r.fresh_sessions_per_sec);
    }
    if (!r.scalar_ref.empty()) {
      std::fprintf(f, ", \"scalar_ref\": \"%s\"", r.scalar_ref.c_str());
      if (r.batch_width > 1) {
        std::fprintf(f, ", \"batch_width\": %u, \"lane_occupancy\": %.4f",
                     r.batch_width, r.lane_occupancy);
      }
      if (r.speedup_gate > 0) {
        std::fprintf(f, ", \"speedup_gate\": %.2f", r.speedup_gate);
      }
      if (r.measured_speedup >= 0) {
        std::fprintf(f, ", \"measured_speedup\": %.4f", r.measured_speedup);
      }
    }
    if (r.bytes_per_tenant >= 0) {
      std::fprintf(f, ", \"bytes_per_tenant\": %.1f", r.bytes_per_tenant);
      if (!r.mem_ref.empty()) {
        std::fprintf(f, ", \"mem_ref\": \"%s\", \"max_bytes_ratio\": %.2f",
                     r.mem_ref.c_str(), r.max_bytes_ratio);
      }
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
