// Fleet perf-regression gate (no google-benchmark dependency).
//
// Measures FleetRunner multi-tenant throughput and writes a JSON report
// (default BENCH_fleet.json, or argv[1]) with, per cell:
//
//   sessions_per_sec         tenants fully served per second
//   rounds_per_sec           aggregate simulated rounds per second across
//                            all live sessions (from FleetStats)
//   steady_allocs_per_round  heap allocations per simulated round in steady
//                            state, measured as
//                            (allocs(2H fleet) - allocs(H fleet)) / (N * H)
//                            over a warm runner, so per-tenant result
//                            materialization and pool warm-up cancel out.
//                            The session contract (core/session.h) says a
//                            warm fleet allocates nothing per step: ~0.
//
// The pooled-vs-fresh cell additionally records, informationally:
//
//   fresh_sessions_per_sec   the same tenants run with a freshly constructed
//                            Engine + policy per job (what analysis sweeps
//                            did before pooled fleet execution)
//   pooled_speedup           sessions_per_sec / fresh_sessions_per_sec
//
// tools/bench_compare.py diffs this report against the checked-in
// bench/BENCH_fleet.json and fails on regression; ctest wires the pair up
// under the opt-in "perf" configuration (ctest -C perf -L perf).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "fleet/fleet_runner.h"
#include "sched/dlru_edf.h"
#include "workload/synthetic.h"

// ---- Counting allocator hook ----------------------------------------------
// Counts every global operator-new; frees are uninteresting for the gate.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// A small multi-tenant workload: each tenant is one of kDistinct generated
// instances (cycled), so a 100k-tenant fleet does not pay 100k generator
// runs or hold 100k instances.
constexpr size_t kDistinct = 32;

std::vector<rrs::Instance> MakeTenantPool(rrs::Round rounds,
                                          size_t colors = 16,
                                          rrs::Round max_delay = 32) {
  std::vector<rrs::workload::ColorSpec> specs;
  std::vector<rrs::Round> delays;
  for (rrs::Round d = 1; d <= max_delay; d *= 2) delays.push_back(d);
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % delays.size()], 0.5});
  }
  std::vector<rrs::Instance> pool;
  pool.reserve(kDistinct);
  for (size_t i = 0; i < kDistinct; ++i) {
    rrs::workload::PoissonOptions gen;
    gen.rounds = rounds;
    gen.rate_limited = true;
    gen.seed = 1000 + i;
    pool.push_back(MakePoisson(specs, gen));
  }
  return pool;
}

std::vector<rrs::fleet::FleetJob> MakeJobs(
    const std::vector<rrs::Instance>& tenants, size_t count,
    rrs::fleet::FleetJob::Kind kind, uint32_t resources = 8) {
  std::vector<rrs::fleet::FleetJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rrs::fleet::FleetJob job;
    job.instance = &tenants[i % tenants.size()];
    job.options.num_resources = resources;
    job.options.cost_model.delta = 4;
    job.kind = kind;
    jobs.push_back(job);
  }
  return jobs;
}

struct Cell {
  const char* name;
  size_t tenants;
  rrs::Round rounds;             // per-tenant horizon
  size_t max_live;               // 0 = unbounded
  rrs::fleet::FleetJob::Kind kind = rrs::fleet::FleetJob::Kind::kReplay;
  bool compare_fresh = false;    // also time per-job fresh construction
  size_t colors = 16;
  uint32_t resources = 8;
  rrs::Round max_delay = 32;     // largest delay class (bounds drain length)
  // Lane-parallel execution (fleet/batch_engine): 0 = scalar engines. A
  // batched cell names its scalar twin via scalar_ref so the perf gate can
  // hold the batched/scalar rounds/s ratio, and stamps the floor that
  // ratio must clear (tools/bench_compare.py reads the cell's speedup_gate,
  // falling back to --min-batched-speedup).
  uint32_t batch_width = 0;
  const char* scalar_ref = nullptr;
  double speedup_gate = 0;  // 0 = use the compare tool's default
};

struct CellResult {
  std::string name;
  double sessions_per_sec = 0;
  double rounds_per_sec = 0;
  double steady_allocs_per_round = -1;  // <0 = not measured (pipeline cells)
  double fresh_sessions_per_sec = -1;   // <0 = not measured
  uint32_t batch_width = 0;
  std::string scalar_ref;   // empty = scalar cell
  double speedup_gate = 0;
  double lane_occupancy = -1;  // mean live lanes per slab step / width
};

// Best-of-N timing windows: the max rate over independent windows is
// robust to scheduler interference on shared machines, which a single
// long window averages in.
constexpr int kWindows = 4;
constexpr double kWindowSeconds = 0.12;

// One timing window: repeat full fleets over the warm runner, keep the best
// observed rate in `out`.
void TimeWindow(rrs::fleet::FleetRunner& runner,
                const std::vector<rrs::fleet::FleetJob>& jobs,
                size_t tenant_count, CellResult& out) {
  const rrs::fleet::FleetStats window_start = runner.stats();
  uint64_t iters = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    runner.RunAll(jobs);
    ++iters;
    now = Clock::now();
  } while (Seconds(start, now) < kWindowSeconds);
  const double elapsed = Seconds(start, now);
  const double sps = static_cast<double>(iters * tenant_count) / elapsed;
  if (sps > out.sessions_per_sec) {
    out.sessions_per_sec = sps;
    out.rounds_per_sec =
        static_cast<double>(runner.stats().rounds_stepped -
                            window_start.rounds_stepped) /
        elapsed;
  }
}

// Measures `cells` (one scalar cell, or a scalar cell followed by its
// batched twin over the same tenants). A pair's timing windows interleave —
// scalar, batched, scalar, batched, ... over shared warm runners — so slow
// machine drift (frequency/thermal state, background load) lands on both
// sides of the gated batched/scalar ratio and divides out.
std::vector<CellResult> RunCells(std::span<const Cell> cells) {
  const Cell& base = cells.front();
  const std::vector<rrs::Instance> tenants =
      MakeTenantPool(base.rounds, base.colors, base.max_delay);
  const auto jobs =
      MakeJobs(tenants, base.tenants, base.kind, base.resources);

  std::vector<std::unique_ptr<rrs::fleet::FleetRunner>> runners;
  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    rrs::fleet::FleetOptions options;
    options.rounds_per_tick = 32;
    options.max_live_sessions = cell.max_live;
    options.batch_width = cell.batch_width;
    runners.push_back(
        std::make_unique<rrs::fleet::FleetRunner>(std::move(options)));
    runners.back()->RunAll(jobs);  // warm-up (pool growth, arena sizing)

    CellResult out;
    out.name = cell.name;
    out.batch_width = cell.batch_width;
    if (cell.scalar_ref != nullptr) out.scalar_ref = cell.scalar_ref;
    out.speedup_gate = cell.speedup_gate;
    results.push_back(std::move(out));
  }

  for (int w = 0; w < kWindows; ++w) {
    for (size_t i = 0; i < cells.size(); ++i) {
      TimeWindow(*runners[i], jobs, base.tenants, results[i]);
    }
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    rrs::fleet::FleetRunner& runner = *runners[i];
    CellResult& out = results[i];

    if (cell.batch_width > 1) {
      const rrs::fleet::FleetStats stats = runner.stats();
      if (stats.slab_rounds_stepped > 0) {
        out.lane_occupancy =
            static_cast<double>(stats.lane_rounds_stepped) /
            (static_cast<double>(stats.slab_rounds_stepped) *
             cell.batch_width);
      }
    }

    // Steady-state allocations (replay cells): horizon-H vs horizon-2H
    // fleets through one warm runner. Result materialization, pool
    // bookkeeping, and per-tenant rebinds are identical in both, so the
    // difference isolates per-round allocation.
    if (cell.kind == rrs::fleet::FleetJob::Kind::kReplay) {
      const std::vector<rrs::Instance> tenants_2h =
          MakeTenantPool(2 * cell.rounds, cell.colors, cell.max_delay);
      const auto jobs_2h = MakeJobs(tenants_2h, cell.tenants, cell.kind,
                                    cell.resources);
      runner.RunAll(jobs_2h);  // warm-up: size arenas for the 2H horizon
      auto measure = [&](const std::vector<rrs::fleet::FleetJob>& fleet) {
        const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
        runner.RunAll(fleet);
        return g_alloc_count.load(std::memory_order_relaxed) - before;
      };
      const uint64_t allocs_h = measure(jobs);
      const uint64_t allocs_2h = measure(jobs_2h);
      const uint64_t extra = allocs_2h > allocs_h ? allocs_2h - allocs_h : 0;
      out.steady_allocs_per_round =
          static_cast<double>(extra) /
          static_cast<double>(cell.tenants * cell.rounds);
    }

    // Pooled-vs-fresh: the same tenants with a freshly constructed engine
    // and policy per job — the pre-fleet sweep execution model.
    if (cell.compare_fresh) {
      auto run_fresh = [&] {
        for (const rrs::fleet::FleetJob& job : jobs) {
          rrs::DlruEdfPolicy policy;
          rrs::RunPolicy(*job.instance, policy, job.options);
        }
      };
      run_fresh();  // warm-up
      for (int w = 0; w < kWindows; ++w) {
        uint64_t fresh_iters = 0;
        const auto fresh_start = Clock::now();
        auto fresh_now = fresh_start;
        do {
          run_fresh();
          ++fresh_iters;
          fresh_now = Clock::now();
        } while (Seconds(fresh_start, fresh_now) < kWindowSeconds);
        const double sps = static_cast<double>(fresh_iters * cell.tenants) /
                           Seconds(fresh_start, fresh_now);
        out.fresh_sessions_per_sec =
            std::max(out.fresh_sessions_per_sec, sps);
      }
    }
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";

  // Each batched cell follows its scalar twin and RunCells measures the two
  // with interleaved timing windows: the gated quantity is their rounds/s
  // ratio (tools/bench_compare.py, keyed by scalar_ref, floor per cell via
  // speedup_gate), and interleaving keeps slow drift — thermal/frequency
  // state, background load — common to both sides of the division. The
  // batched twins use the same tenants and live window, packed into
  // full-width 64-lane slabs (shared per-slab-round work — wheel slot scan,
  // boundary masks, class-order memoization — amortizes over every resident
  // lane).
  const Cell cells[] = {
      // Concurrency scale: every tenant live at once (unbounded window).
      {"fleet/1k/replay", 1000, 64, 0},
      // Long-horizon cells spend most rounds in the post-arrival drain,
      // where per-round work is light and the slab's fixed stepping costs
      // are a larger fraction — the win is real but smaller, so they carry
      // a regression floor rather than the headline target.
      {"fleet/1k/batched", 1000, 64, 0,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/1k/replay",
       /*speedup_gate=*/1.25},
      {"fleet/10k/replay", 10000, 32, 0},
      {"fleet/10k/batched", 10000, 32, 0,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/10k/replay",
       /*speedup_gate=*/1.25},
      // 100k tenants through a bounded live window: the memory-capped shape
      // a real control plane runs, dominated by session recycling. This is
      // the headline cell: the batched engine must hold >= 2x the scalar
      // twin's rounds/s.
      {"fleet/100k/capped", 100000, 8, 1024},
      {"fleet/100k/batched", 100000, 8, 1024,
       rrs::fleet::FleetJob::Kind::kReplay, false, 16, 8, 32,
       /*batch_width=*/64, /*scalar_ref=*/"fleet/100k/capped",
       /*speedup_gate=*/2.0},
      // Theorem-3 pipeline tenants through pooled pipeline sessions.
      {"fleet/1k/pipeline", 1000, 32, 0,
       rrs::fleet::FleetJob::Kind::kPipeline},
      // Sweep execution model: pooled sessions vs per-job construction.
      // Short sessions (tight horizon AND tight delay classes, so the drain
      // tail is short), where per-run setup — cold table/ring/scratch
      // allocation — is a real fraction of the run. This is the regime sweep
      // cells and interactive control planes live in.
      {"sweep/pooled-vs-fresh", 2000, 4, 0,
       rrs::fleet::FleetJob::Kind::kReplay, /*compare_fresh=*/true,
       /*colors=*/128, /*resources=*/32, /*max_delay=*/4},
  };

  std::vector<CellResult> results;
  const size_t num_cells = sizeof(cells) / sizeof(cells[0]);
  for (size_t i = 0; i < num_cells; ++i) {
    // A batched cell naming the preceding scalar cell runs paired with it
    // (interleaved windows).
    const size_t group =
        (i + 1 < num_cells && cells[i + 1].scalar_ref != nullptr &&
         std::strcmp(cells[i + 1].scalar_ref, cells[i].name) == 0)
            ? 2
            : 1;
    auto group_results = RunCells(std::span<const Cell>(&cells[i], group));
    i += group - 1;
    for (CellResult& r : group_results) {
      results.push_back(std::move(r));
    }
  }
  for (const CellResult& r : results) {
    std::printf("%-24s %12.0f sessions/s %12.0f rounds/s", r.name.c_str(),
                r.sessions_per_sec, r.rounds_per_sec);
    if (r.steady_allocs_per_round >= 0) {
      std::printf(" %8.4f allocs/round", r.steady_allocs_per_round);
    }
    if (r.fresh_sessions_per_sec > 0) {
      std::printf(" (fresh %.0f/s, speedup %.2fx)", r.fresh_sessions_per_sec,
                  r.sessions_per_sec / r.fresh_sessions_per_sec);
    }
    if (r.lane_occupancy >= 0) {
      std::printf(" (width %u, occupancy %.3f", r.batch_width,
                  r.lane_occupancy);
      for (const CellResult& ref : results) {
        if (ref.name == r.scalar_ref && ref.rounds_per_sec > 0) {
          std::printf(", %.2fx scalar", r.rounds_per_sec / ref.rounds_per_sec);
          break;
        }
      }
      std::printf(")");
    }
    std::printf("\n");
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sessions_per_sec\": %.1f, "
                 "\"rounds_per_sec\": %.1f",
                 r.name.c_str(), r.sessions_per_sec, r.rounds_per_sec);
    if (r.steady_allocs_per_round >= 0) {
      std::fprintf(f, ", \"steady_allocs_per_round\": %.4f",
                   r.steady_allocs_per_round);
    }
    if (r.fresh_sessions_per_sec > 0) {
      std::fprintf(f,
                   ", \"fresh_sessions_per_sec\": %.1f, "
                   "\"pooled_speedup\": %.3f",
                   r.fresh_sessions_per_sec,
                   r.sessions_per_sec / r.fresh_sessions_per_sec);
    }
    if (!r.scalar_ref.empty()) {
      std::fprintf(f,
                   ", \"scalar_ref\": \"%s\", \"batch_width\": %u, "
                   "\"lane_occupancy\": %.4f",
                   r.scalar_ref.c_str(), r.batch_width, r.lane_occupancy);
      if (r.speedup_gate > 0) {
        std::fprintf(f, ", \"speedup_gate\": %.2f", r.speedup_gate);
      }
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
