// E2 — Appendix B: EDF is not resource competitive.
// Regenerates the thrashing construction across k and reports the certified
// ratio against the hand-built (validated, zero-drop) OFF schedule, next to
// the paper's prediction 2^{k-j-1}/(n/2+1).
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E2Params params;
  rrs::Table table = rrs::analysis::RunE2EdfAdversary(params);
  rrs::bench::PrintExperiment(
      "E2: Appendix B adversary vs edf (n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) +
          ", j=" + std::to_string(params.j) + ")",
      "edf's competitive ratio grows as 2^{k-j-1}/(n/2+1) — roughly 2x per k "
      "step — driven by reconfiguration thrashing; OFF executes everything "
      "with n/2+1 reconfigurations.",
      table);
  return 0;
}
