// Snapshot perf-regression gate (no google-benchmark dependency).
//
// Measures the cost of checkpointing a long-horizon session and writes a
// JSON report (default BENCH_snapshot.json, or argv[1]) with, per cell:
//
//   snapshots_per_sec     full snapshot+restore cycles per second for a
//                         mid-run session (snapshot the open run, then
//                         restore it into a second warm engine)
//   simulate_ms           wall time of one uninterrupted full-horizon run
//   snapshot_restore_ms   wall time of one snapshot+restore cycle
//   snapshot_overhead_pct snapshot_restore_ms / simulate_ms * 100
//   snapshot_words        serialized size of the checkpoint (u64 words)
//
// The binary self-enforces the checkpoint contract that makes chaos-mode
// fleet scheduling viable: one snapshot+restore cycle of a 10k-round
// session must cost < 5% of simulating the session outright (exit 1
// otherwise). tools/bench_compare.py additionally diffs the report against
// the checked-in bench/BENCH_snapshot.json and fails on a
// snapshots_per_sec regression; ctest wires the pair up under the opt-in
// "perf" configuration (ctest -C perf -L perf).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sched/dlru_edf.h"
#include "snapshot/codec.h"
#include "workload/synthetic.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// RRS_BENCH_SMOKE=1: one iteration per timing window and no contract
// enforcement — the tier-1 smoke run that proves every cell still executes
// and emits its metrics; numbers are only ever checked for shape
// (bench_compare.py --shape-only), never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

struct Cell {
  const char* name;
  rrs::Round rounds;       // session horizon
  rrs::Round checkpoint;   // round at which the session is checkpointed
  size_t colors;
};

struct CellResult {
  std::string name;
  double snapshots_per_sec = 0;
  double simulate_ms = 0;
  double snapshot_restore_ms = 0;
  double snapshot_overhead_pct = 0;
  uint64_t snapshot_words = 0;
};

rrs::Instance MakeTenant(rrs::Round rounds, size_t colors) {
  std::vector<rrs::workload::ColorSpec> specs;
  std::vector<rrs::Round> delays = {1, 2, 4, 8, 16, 32};
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % delays.size()], 0.5});
  }
  rrs::workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.rate_limited = true;
  gen.seed = 0x5eed;
  return MakePoisson(specs, gen);
}

CellResult RunCell(const Cell& cell) {
  // Best-of-N timing windows, like the other perf-gate binaries: the max
  // rate over independent windows is robust to scheduler interference.
  const int kWindows = SmokeMode() ? 1 : 3;
  const double kWindowSeconds = SmokeMode() ? 0.0 : 0.12;

  const rrs::Instance instance = MakeTenant(cell.rounds, cell.colors);
  rrs::EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 4;

  CellResult out;
  out.name = cell.name;

  // Uninterrupted simulate time over a warm engine: the denominator of the
  // overhead contract.
  rrs::Engine engine(instance, options);
  rrs::DlruEdfPolicy policy;
  auto full_run = [&] {
    rrs::RunResult result;
    engine.BeginRun(policy);
    while (engine.StepRounds(cell.rounds)) {
    }
    engine.FinishRun(result);
  };
  full_run();  // warm-up (table/ring/scratch sizing)
  double best_runs_per_sec = 0;
  for (int w = 0; w < kWindows; ++w) {
    uint64_t iters = 0;
    const auto start = Clock::now();
    auto now = start;
    do {
      full_run();
      ++iters;
      now = Clock::now();
    } while (Seconds(start, now) < kWindowSeconds);
    best_runs_per_sec = std::max(
        best_runs_per_sec, static_cast<double>(iters) / Seconds(start, now));
  }
  out.simulate_ms = 1000.0 / best_runs_per_sec;

  // Snapshot+restore cycles of a mid-run session: checkpoint the donor's
  // open run, restore it into a second warm engine, tear the restored run
  // back down. Buffers are reused so the steady-state cycle is what a warm
  // chaos fleet pays per fault.
  engine.BeginRun(policy);
  engine.StepRounds(cell.checkpoint);
  rrs::Engine target(instance, options);
  rrs::DlruEdfPolicy target_policy;
  rrs::snapshot::Writer writer;
  auto cycle = [&] {
    writer.Clear();
    engine.SnapshotRun(writer);
    rrs::snapshot::Reader reader(writer.words());
    target.Reset(instance, options);
    target.RestoreRun(target_policy, reader);
    target.AbortRun();
  };
  cycle();  // warm-up
  out.snapshot_words = writer.words().size();
  double best_cycles_per_sec = 0;
  for (int w = 0; w < kWindows; ++w) {
    uint64_t iters = 0;
    const auto start = Clock::now();
    auto now = start;
    do {
      cycle();
      ++iters;
      now = Clock::now();
    } while (Seconds(start, now) < kWindowSeconds);
    best_cycles_per_sec = std::max(
        best_cycles_per_sec, static_cast<double>(iters) / Seconds(start, now));
  }
  engine.AbortRun();

  out.snapshots_per_sec = best_cycles_per_sec;
  out.snapshot_restore_ms = 1000.0 / best_cycles_per_sec;
  out.snapshot_overhead_pct = 100.0 * out.snapshot_restore_ms / out.simulate_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_snapshot.json";

  // The headline cell is the acceptance contract: a 10k-round session
  // checkpointed mid-run. The small cell tracks the fixed per-cycle cost
  // that dominates short chaos-fleet tenants.
  const Cell cells[] = {
      {"snapshot/10k-rounds/16c", 10000, 5000, 16},
      {"snapshot/256-rounds/16c", 256, 128, 16},
  };
  constexpr double kMaxOverheadPct = 5.0;  // contract: gate on the 10k cell

  std::vector<CellResult> results;
  bool over_budget = false;
  for (const Cell& cell : cells) {
    results.push_back(RunCell(cell));
    const CellResult& r = results.back();
    std::printf(
        "%-26s %10.0f snapshots/s  sim %8.2f ms  cycle %6.3f ms "
        "(%.2f%% of sim)  %llu words\n",
        r.name.c_str(), r.snapshots_per_sec, r.simulate_ms,
        r.snapshot_restore_ms, r.snapshot_overhead_pct,
        static_cast<unsigned long long>(r.snapshot_words));
    if (!SmokeMode() && cell.rounds >= 10000 &&
        r.snapshot_overhead_pct >= kMaxOverheadPct) {
      over_budget = true;
      std::fprintf(stderr,
                   "%s: snapshot+restore is %.2f%% of simulate time, "
                   "contract requires < %.1f%%\n",
                   r.name.c_str(), r.snapshot_overhead_pct, kMaxOverheadPct);
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"snapshots_per_sec\": %.1f, "
                 "\"simulate_ms\": %.3f, \"snapshot_restore_ms\": %.4f, "
                 "\"snapshot_overhead_pct\": %.3f, \"snapshot_words\": %llu}%s\n",
                 r.name.c_str(), r.snapshots_per_sec, r.simulate_ms,
                 r.snapshot_restore_ms, r.snapshot_overhead_pct,
                 static_cast<unsigned long long>(r.snapshot_words),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return over_budget ? 1 : 0;
}
