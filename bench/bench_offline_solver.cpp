// Perf-regression gate for the offline optimal solver (no google-benchmark
// dependency; same plain-JSON pattern as bench_baseline).
//
// Runs a fixed instance matrix through the packed branch-and-bound solver
// and the retained layered-DP reference and writes a JSON report (default
// BENCH_offline.json, or argv[1]) with, per cell:
//
//   states_per_sec   expanded states per second of solve wall time
//   solve_ms         mean wall time of one full solve
//   states_expanded  expansions per solve (informational, pins search size)
//   exact            1 when the solve finished inside the state budget
//
// Cell design notes:
//   * dp_ref/... and packed_noprune/... run the SAME instance with pruning
//     disabled, so both walk the identical reachable state space — the
//     states_per_sec ratio between them isolates the packed-representation
//     speedup (arena spans + open addressing vs vector keys in an
//     unordered_map) from the pruning win.
//   * packed/... re-enables bound + dominance pruning; its solve_ms against
//     packed_noprune isolates the pruning win.
//   * packed_t8/... drives the widest layers through an 8-thread pool. On a
//     single-core host this measures overhead, not speedup; the cell exists
//     so the deterministic-merge path is exercised and timed either way.
//   * packed/m4/6c/h128 is the raised-envelope acceptance instance.
//
// tools/bench_compare.py diffs this report against the checked-in
// bench/BENCH_offline.json and fails on regression; ctest wires the pair up
// under the opt-in "perf" configuration (ctest -C perf -L perf).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/instance.h"
#include "offline/dp_reference.h"
#include "offline/optimal.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// RRS_BENCH_SMOKE=1: one solve per cell — the tier-1 smoke run that proves
// every cell still executes and emits its metrics; numbers are only ever
// checked for shape (bench_compare.py --shape-only), never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

// Medium instance both solvers can exhaust unpruned: m=2, 4 colors,
// horizon 48. Sized so the unpruned state space is large enough to time
// (~10^5 states) but finishes in well under a second per solve.
rrs::Instance MakeMediumInstance() {
  rrs::InstanceBuilder b;
  rrs::ColorId colors[4];
  static const rrs::Round kDelays[4] = {2, 4, 8, 16};
  for (int c = 0; c < 4; ++c) colors[c] = b.AddColor(kDelays[c], "", 1);
  rrs::Rng rng(41);
  for (rrs::Round t = 0; t + 3 <= 48; t += 3) {
    b.AddJob(colors[rng.NextBounded(4)], t);
    b.AddJob(colors[rng.NextBounded(4)], t + rng.NextBounded(3));
  }
  return b.Build();
}

// Denser m=2 instance whose unpruned layers go wide — the parallel-merge
// stress cell. Kept unpruned so layer widths (and thus the sharded merge)
// dominate the wall time.
rrs::Instance MakeWideInstance() {
  rrs::InstanceBuilder b;
  rrs::ColorId colors[4];
  static const rrs::Round kDelays[4] = {4, 8, 8, 16};
  for (int c = 0; c < 4; ++c) colors[c] = b.AddColor(kDelays[c], "", 1);
  rrs::Rng rng(59);
  for (rrs::Round t = 0; t + 2 <= 40; t += 2) {
    b.AddJob(colors[rng.NextBounded(4)], t);
    b.AddJob(colors[rng.NextBounded(4)], t);
    b.AddJob(colors[rng.NextBounded(4)], t + 1);
  }
  return b.Build();
}

// The raised-envelope acceptance instance: m=4, 6 colors, horizon 128
// (same construction as the differential test's RaisedEnvelope case).
rrs::Instance MakeEnvelopeInstance() {
  rrs::InstanceBuilder b;
  rrs::ColorId colors[6];
  static const rrs::Round kDelays[6] = {2, 4, 4, 8, 16, 32};
  for (int c = 0; c < 6; ++c) colors[c] = b.AddColor(kDelays[c], "", 1 + c % 2);
  rrs::Rng rng(97);
  for (rrs::Round t = 0; t + 4 <= 128; t += 4) {
    b.AddJob(colors[rng.NextBounded(6)], t);
    b.AddJob(colors[rng.NextBounded(6)], t + rng.NextBounded(4));
    if (t % 8 == 0) b.AddJob(colors[rng.NextBounded(6)], t + rng.NextBounded(4));
  }
  return b.Build();
}

struct CellResult {
  std::string name;
  double states_per_sec = 0;
  double solve_ms = 0;
  double states_expanded = 0;
  int exact = 1;
};

// Repeats solve() until kMinSeconds of samples accumulate; states/s uses
// the summed expansions over the summed wall time.
template <typename SolveFn>
CellResult TimeCell(const std::string& name, SolveFn solve) {
  const double kMinSeconds = SmokeMode() ? 0.0 : 0.3;
  CellResult out;
  out.name = name;
  solve(&out);  // warm-up (page-in, arena growth)
  uint64_t iters = 0;
  uint64_t expanded = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    out.states_expanded = 0;
    solve(&out);
    expanded += static_cast<uint64_t>(out.states_expanded);
    ++iters;
    now = Clock::now();
  } while (Seconds(start, now) < kMinSeconds);
  const double elapsed = Seconds(start, now);
  out.states_per_sec = static_cast<double>(expanded) / elapsed;
  out.solve_ms = elapsed * 1e3 / static_cast<double>(iters);
  return out;
}

CellResult RunPacked(const std::string& name, const rrs::Instance& inst,
                     uint32_t m, uint64_t delta, bool prune,
                     rrs::ThreadPool* pool) {
  return TimeCell(name, [&](CellResult* out) {
    rrs::offline::OptimalOptions options;
    options.num_resources = m;
    options.cost_model.delta = delta;
    options.prune_bound = prune;
    options.prune_dominance = prune;
    options.pool = pool;
    auto r = rrs::offline::SolveOptimal(inst, options);
    out->states_expanded = static_cast<double>(r.states_expanded);
    out->exact = r.exact ? 1 : 0;
  });
}

CellResult RunDpReference(const std::string& name, const rrs::Instance& inst,
                          uint32_t m, uint64_t delta) {
  return TimeCell(name, [&](CellResult* out) {
    rrs::offline::DpReferenceOptions options;
    options.num_resources = m;
    options.cost_model.delta = delta;
    auto r = rrs::offline::SolveLayeredDpReference(inst, options);
    out->states_expanded = r ? static_cast<double>(r->states_expanded) : 0;
    out->exact = r.has_value() ? 1 : 0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_offline.json";

  const rrs::Instance medium = MakeMediumInstance();
  const rrs::Instance wide = MakeWideInstance();
  const rrs::Instance envelope = MakeEnvelopeInstance();
  rrs::ThreadPool pool8(8);

  std::vector<CellResult> results;
  results.push_back(RunDpReference("dp_ref/m2/4c/h48", medium, 2, 3));
  results.push_back(
      RunPacked("packed_noprune/m2/4c/h48", medium, 2, 3, false, nullptr));
  results.push_back(RunPacked("packed/m2/4c/h48", medium, 2, 3, true, nullptr));
  results.push_back(
      RunPacked("packed_t8/m2/4c/h40_wide", wide, 2, 3, false, &pool8));
  results.push_back(
      RunPacked("packed/m4/6c/h128", envelope, 4, 2, true, nullptr));

  for (const CellResult& r : results) {
    std::printf("%-28s %12.0f states/s %10.2f ms %10.0f expanded exact=%d\n",
                r.name.c_str(), r.states_per_sec, r.solve_ms,
                r.states_expanded, r.exact);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"states_per_sec\": %.1f, "
                 "\"solve_ms\": %.3f, \"states_expanded\": %.0f, "
                 "\"exact\": %d}%s\n",
                 r.name.c_str(), r.states_per_sec, r.solve_ms,
                 r.states_expanded, r.exact, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
