// Perf-regression gate for the robust (interval-uncertainty) offline solver
// (no google-benchmark dependency; same plain-JSON pattern as
// bench_offline_solver).
//
// Runs a fixed windowed-instance matrix through offline::SolveRobust and
// writes a JSON report (default BENCH_offline_robust.json, or argv[1])
// with, per cell:
//
//   states_per_sec   expanded interval states per second of solve wall time
//   solve_ms         mean wall time of one full robust solve
//   states_expanded  expansions per solve (informational, pins search size)
//   bracket_width    upper_bound - lower_bound (informational, pins the
//                    certified bracket the dominance rule achieves)
//   exact            1 when the solve finished inside the state budget
//
// Cell design notes:
//   * robust/w0/... runs the zero-width lift of the concrete gate's medium
//     instance — the interval machinery degenerates to the concrete solve,
//     so this cell prices the (rel, lo, hi) representation overhead against
//     bench_offline_solver's packed/m2/4c/h48 cell.
//   * robust/w2 and robust/w4 widen every window symmetrically; wider
//     windows inflate the pessimistic envelope and stress the containment
//     dominance merge (interval states stop being degenerate).
//   * robust/m4/6c is the m=4-resource envelope cell backing EXPERIMENTS.md
//     E20's bracket-width table.
//
// tools/bench_compare.py diffs this report against the checked-in
// bench/BENCH_offline_robust.json and fails on regression; ctest wires the
// pair up under the opt-in "perf" configuration (ctest -C perf -L perf).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/instance.h"
#include "offline/robust_optimal.h"
#include "util/rng.h"
#include "workload/uncertain.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// RRS_BENCH_SMOKE=1: one solve per cell — the tier-1 smoke run that proves
// every cell still executes and emits its metrics; numbers are only ever
// checked for shape (bench_compare.py --shape-only), never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

// The concrete offline gate's medium instance (bench_offline_solver's
// MakeMediumInstance), reused verbatim so the zero-width cell is directly
// comparable against packed/m2/4c/h48 there.
rrs::Instance MakeMediumInstance() {
  rrs::InstanceBuilder b;
  rrs::ColorId colors[4];
  static const rrs::Round kDelays[4] = {2, 4, 8, 16};
  for (int c = 0; c < 4; ++c) colors[c] = b.AddColor(kDelays[c], "", 1);
  rrs::Rng rng(41);
  for (rrs::Round t = 0; t + 3 <= 48; t += 3) {
    b.AddJob(colors[rng.NextBounded(4)], t);
    b.AddJob(colors[rng.NextBounded(4)], t + rng.NextBounded(3));
  }
  return b.Build();
}

// m=4, 6 colors: the E20 windowed acceptance set. Smaller than the concrete
// gate's h128 envelope instance — every non-degenerate window multiplies
// the pessimistic envelope, so the horizon is held to 32 to keep the cell
// inside the state budget.
rrs::workload::UncertainInstance MakeWindowedEnvelopeSet() {
  rrs::workload::UncertainInstance set;
  rrs::ColorId colors[6];
  static const rrs::Round kDelays[6] = {2, 4, 4, 8, 16, 32};
  for (int c = 0; c < 6; ++c) {
    colors[c] = set.AddColor(kDelays[c], "", 1 + c % 2);
  }
  rrs::Rng rng(97);
  for (rrs::Round t = 0; t + 4 <= 32; t += 4) {
    set.AddJob(colors[rng.NextBounded(6)], t, t + 1);
    const rrs::Round lo = t + rng.NextBounded(4);
    set.AddJob(colors[rng.NextBounded(6)], lo, lo + 2);
  }
  return set;
}

struct CellResult {
  std::string name;
  double states_per_sec = 0;
  double solve_ms = 0;
  double states_expanded = 0;
  double bracket_width = 0;
  int exact = 1;
};

CellResult RunRobust(const std::string& name,
                     const rrs::workload::UncertainInstance& set, uint32_t m,
                     uint64_t delta) {
  const double kMinSeconds = SmokeMode() ? 0.0 : 0.3;
  CellResult out;
  out.name = name;
  rrs::offline::RobustOptions options;
  options.num_resources = m;
  options.cost_model.delta = delta;
  auto solve = [&] {
    auto r = rrs::offline::SolveRobust(set, options);
    out.states_expanded = static_cast<double>(r.states_expanded);
    out.bracket_width = static_cast<double>(r.upper_bound - r.lower_bound);
    out.exact = r.exact ? 1 : 0;
  };
  solve();  // warm-up (page-in, arena growth)
  uint64_t iters = 0;
  uint64_t expanded = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    solve();
    expanded += static_cast<uint64_t>(out.states_expanded);
    ++iters;
    now = Clock::now();
  } while (Seconds(start, now) < kMinSeconds);
  const double elapsed = Seconds(start, now);
  out.states_per_sec = static_cast<double>(expanded) / elapsed;
  out.solve_ms = elapsed * 1e3 / static_cast<double>(iters);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_offline_robust.json";

  const rrs::Instance medium = MakeMediumInstance();
  using rrs::workload::UncertainInstance;
  const UncertainInstance zero = UncertainInstance::FromInstance(medium, 0, 0);
  const UncertainInstance w2 = UncertainInstance::FromInstance(medium, 1, 1);
  const UncertainInstance w4 = UncertainInstance::FromInstance(medium, 2, 2);
  const UncertainInstance envelope = MakeWindowedEnvelopeSet();

  std::vector<CellResult> results;
  results.push_back(RunRobust("robust/w0/m2/4c/h48", zero, 2, 3));
  results.push_back(RunRobust("robust/w2/m2/4c/h48", w2, 2, 3));
  results.push_back(RunRobust("robust/w4/m2/4c/h48", w4, 2, 3));
  results.push_back(RunRobust("robust/m4/6c/h32", envelope, 4, 2));

  for (const CellResult& r : results) {
    std::printf(
        "%-24s %12.0f states/s %10.2f ms %10.0f expanded width=%.0f "
        "exact=%d\n",
        r.name.c_str(), r.states_per_sec, r.solve_ms, r.states_expanded,
        r.bracket_width, r.exact);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"states_per_sec\": %.1f, "
                 "\"solve_ms\": %.3f, \"states_expanded\": %.0f, "
                 "\"bracket_width\": %.0f, \"exact\": %d}%s\n",
                 r.name.c_str(), r.states_per_sec, r.solve_ms,
                 r.states_expanded, r.bracket_width, r.exact,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
