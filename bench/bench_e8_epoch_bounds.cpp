// E8 — Lemmas 3.3 and 3.4, measured: ΔLRU-EDF's reconfiguration cost is at
// most 4·numEpochs·Δ and its ineligible drop cost at most numEpochs·Δ; the
// table reports the measured slack across Δ (bounds are also hard-asserted
// inside the experiment).
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E8Params params;
  rrs::Table table = rrs::analysis::RunE8EpochBounds(params);
  rrs::bench::PrintExperiment(
      "E8: epoch bounds (Lemmas 3.3/3.4) on bursty rate-limited input, "
      "sweeping delta",
      "ReconfigCost <= 4*numEpochs*delta and IneligibleDrop <= "
      "numEpochs*delta at every delta; slack columns show how loose the "
      "amortized analysis is in practice.",
      table);
  return 0;
}
