// E1 — Appendix A: ΔLRU is not resource competitive.
// Regenerates the lower-bound construction across j and reports the certified
// ratio against the hand-built (validated) OFF schedule, next to the paper's
// asymptotic prediction 2^{j+1}/(nΔ).
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E1Params params;
  rrs::Table table = rrs::analysis::RunE1DlruAdversary(params);
  rrs::bench::PrintExperiment(
      "E1: Appendix A adversary vs dlru (n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) +
          ", k=j+" + std::to_string(params.k_offset) + ")",
      "dlru's competitive ratio grows as Omega(2^{j+1}/(n*delta)) — roughly "
      "2x per j step — so dlru is not constant competitive at any constant "
      "resource advantage.",
      table);
  return 0;
}
