// E11 — substrate microbenchmarks (google-benchmark): the priority-queue
// implementations underlying the schedulers (repro hint: "pure algorithm +
// priority queues"), LruTracker, the thread-pool sweep scaling, and the SPSC
// queue.
#include <queue>
#include <thread>

#include <benchmark/benchmark.h>

#include "container/indexed_heap.h"
#include "container/lru_tracker.h"
#include "container/pairing_heap.h"
#include "parallel/parallel_for.h"
#include "parallel/spsc_queue.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace {

void BM_IndexedHeapPushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  rrs::Rng rng(1);
  std::vector<uint64_t> priorities(n);
  for (auto& p : priorities) p = rng.Next();
  for (auto _ : state) {
    rrs::IndexedHeap<uint64_t> heap(n);
    for (uint32_t k = 0; k < n; ++k) heap.Push(k, priorities[k]);
    uint64_t sink = 0;
    while (!heap.empty()) sink += heap.Pop();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n * 2));
}

void BM_IndexedHeapDecreaseKey(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  rrs::Rng rng(2);
  rrs::IndexedHeap<uint64_t> heap(n);
  for (uint32_t k = 0; k < n; ++k) heap.Push(k, (uint64_t{1} << 40) + k);
  uint64_t next = uint64_t{1} << 40;
  for (auto _ : state) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(n));
    heap.Update(key, --next);
    benchmark::DoNotOptimize(heap.Top());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PairingHeapPushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  rrs::Rng rng(3);
  std::vector<uint64_t> priorities(n);
  for (auto& p : priorities) p = rng.Next();
  for (auto _ : state) {
    rrs::PairingHeap<uint32_t, uint64_t> heap;
    for (uint32_t k = 0; k < n; ++k) heap.Push(k, priorities[k]);
    uint64_t sink = 0;
    while (!heap.empty()) sink += heap.Pop().second;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n * 2));
}

void BM_StdPriorityQueuePushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  rrs::Rng rng(4);
  std::vector<uint64_t> priorities(n);
  for (auto& p : priorities) p = rng.Next();
  for (auto _ : state) {
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>>
        heap;
    for (uint64_t p : priorities) heap.push(p);
    uint64_t sink = 0;
    while (!heap.empty()) {
      sink += heap.top();
      heap.pop();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n * 2));
}

void BM_LruTrackerTouchTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  rrs::Rng rng(5);
  rrs::LruTracker lru(n);
  for (uint32_t k = 0; k < n; ++k) lru.Insert(k, static_cast<int64_t>(k));
  int64_t ts = static_cast<int64_t>(n);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    lru.Touch(static_cast<uint32_t>(rng.NextBounded(n)), ++ts);
    lru.TopK(n / 4, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  rrs::ThreadPool pool(threads);
  const int64_t work_items = 1 << 14;
  for (auto _ : state) {
    std::atomic<uint64_t> total{0};
    rrs::ParallelFor(pool, 0, work_items, [&](int64_t i) {
      // Simulate a small deterministic computation per item.
      uint64_t h = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 29;
      total.fetch_add(h & 0xff, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * work_items);
}

void BM_SpscQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    rrs::SpscQueue<uint64_t> queue(4096);
    constexpr uint64_t kCount = 1 << 16;
    std::thread producer([&] {
      for (uint64_t i = 0; i < kCount; ++i) {
        while (!queue.TryPush(i)) std::this_thread::yield();
      }
    });
    uint64_t received = 0, sink = 0, v = 0;
    while (received < kCount) {
      if (queue.TryPop(v)) {
        sink += v;
        ++received;
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}

}  // namespace

BENCHMARK(BM_IndexedHeapPushPop)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_IndexedHeapDecreaseKey)->Arg(1024)->Arg(16384);
BENCHMARK(BM_PairingHeapPushPop)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_StdPriorityQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_LruTrackerTouchTopK)->Arg(64)->Arg(1024);
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_SpscQueueThroughput);

BENCHMARK_MAIN();
