// E10 — design ablations of ΔLRU-EDF through the full pipeline: the paper's
// n/4 + n/4 replicated split with demote-on-LRU-exit, vs alternative LRU/EDF
// splits, evict-first demotion, and no replication.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E10Params params;
  rrs::Table table = rrs::analysis::RunE10Ablations(params);
  rrs::bench::PrintExperiment(
      "E10: dlru-edf ablations (n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) + ")",
      "the paper's n/4+n/4 replicated split should sit on the Pareto "
      "frontier of reconfigurations vs drops across workloads.",
      table);
  return 0;
}
