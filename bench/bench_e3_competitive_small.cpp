// E3 — Theorem 1: ΔLRU-EDF is resource competitive on rate-limited batched
// inputs. Measures the exact competitive ratio (against the exact offline
// optimum) over random instances at growing scales; the max ratio must stay
// bounded by a constant. Budget-exhausted seeds are no longer discarded:
// the solver's certified OPT bracket is reported in the trailing
// bracket_ratio_{lo,hi}_mean columns (zero when every seed solves exactly).
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E3Params params;
  rrs::Table table = rrs::analysis::RunE3CompetitiveSmall(params);
  rrs::bench::PrintExperiment(
      "E3: dlru-edf (n=" + std::to_string(params.n) +
          ") vs EXACT offline optimum (m=" + std::to_string(params.m) +
          "), random rate-limited batched instances",
      "Theorem 1: with a constant resource advantage the ratio is O(1); "
      "mean/max ratios must stay flat as the instance scale grows.",
      table);
  return 0;
}
