// E7 — the Lemma 3.2 proof chain, measured:
//   EligibleDrop_{ΔLRU-EDF(n)}(σ) <= Drop_{DS-Seq-EDF(m)}(α)   [Lemma 3.10]
// with α the eligible-job subsequence and m = n/4; Par-EDF(α) drops reported
// as context for Corollary 3.1 / Lemma 3.7.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E7Params params;
  rrs::Table table = rrs::analysis::RunE7DropChain(params);
  rrs::bench::PrintExperiment(
      "E7: Lemma 3.2 drop chain (n=" + std::to_string(params.n) +
          ", m=n/4, " + std::to_string(params.num_seeds) + " seeds)",
      "chain_violations must be 0: dlru-edf's eligible drop cost never "
      "exceeds double-speed Seq-EDF's drops on the eligible subsequence.",
      table);
  return 0;
}
