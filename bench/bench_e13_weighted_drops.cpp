// E13 — the variable-drop-cost extension ([Δ | c_ℓ | D_ℓ | ·], the cost
// model of the authors' earlier reconfigurable-scheduling paper): a premium
// service with expensive drops shares the pool with best-effort traffic.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E13Params params;
  rrs::Table table = rrs::analysis::RunE13WeightedDrops(params);
  rrs::bench::PrintExperiment(
      "E13: variable drop costs (premium weight " +
          std::to_string(params.premium_weight) + ", n=" +
          std::to_string(params.n) + ", delta=" +
          std::to_string(params.delta) + ")",
      "weight-aware scheduling keeps the premium service's drops near zero "
      "where weight-blind greedy pays the premium penalty; the certified "
      "weighted lower bound anchors the totals.",
      table);
  return 0;
}
