// E12 — streaming-mode performance (google-benchmark): per-round latency and
// throughput of StreamEngine and the incremental OnlineSolver vs the offline
// replay pipeline on the same workload. The streaming path is what a
// deployment would run; its per-round cost must be flat (no hidden
// whole-trace work).
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/stream_engine.h"
#include "reduce/online.h"
#include "reduce/pipeline.h"
#include "sched/dlru_edf.h"
#include "sched/registry.h"
#include "workload/synthetic.h"

namespace {

rrs::Instance StreamWorkload(rrs::Round rounds, uint64_t seed) {
  std::vector<rrs::workload::ColorSpec> specs = {
      {1, 0.5}, {2, 0.6}, {4, 0.6}, {8, 0.4}, {16, 0.4}, {32, 0.2}};
  rrs::workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

// Pre-extracted per-round arrival lists so feeding cost is not measured.
std::vector<std::vector<std::pair<rrs::ColorId, uint64_t>>> ExtractRounds(
    const rrs::Instance& instance) {
  std::vector<std::vector<std::pair<rrs::ColorId, uint64_t>>> rounds(
      static_cast<size_t>(instance.num_request_rounds()));
  for (rrs::Round k = 0; k < instance.num_request_rounds(); ++k) {
    auto jobs = instance.jobs_in_round(k);
    size_t i = 0;
    while (i < jobs.size()) {
      rrs::ColorId c = jobs[i].color;
      uint64_t count = 0;
      while (i < jobs.size() && jobs[i].color == c) {
        ++count;
        ++i;
      }
      rounds[static_cast<size_t>(k)].emplace_back(c, count);
    }
  }
  return rounds;
}

void BM_StreamEngineDlruEdf(benchmark::State& state) {
  const rrs::Round rounds = state.range(0);
  rrs::Instance instance = StreamWorkload(rounds, 3);
  auto per_round = ExtractRounds(instance);
  std::vector<rrs::Round> delays;
  for (rrs::ColorId c = 0; c < instance.num_colors(); ++c) {
    delays.push_back(instance.delay_bound(c));
  }
  rrs::EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 4;

  for (auto _ : state) {
    rrs::DlruEdfPolicy policy;
    rrs::StreamEngine engine(delays, policy, options);
    for (const auto& arrivals : per_round) engine.Step(arrivals);
    engine.Finish();
    benchmark::DoNotOptimize(engine.cost().drops);
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rounds),
      benchmark::Counter::kIsRate);
}

void BM_OnlineSolver(benchmark::State& state) {
  const rrs::Round rounds = state.range(0);
  rrs::Instance instance = StreamWorkload(rounds, 3);
  auto per_round = ExtractRounds(instance);
  std::vector<rrs::reduce::OnlineSolver::ColorSpec> colors;
  for (rrs::ColorId c = 0; c < instance.num_colors(); ++c) {
    colors.push_back({instance.delay_bound(c), /*max_subcolors=*/8});
  }
  rrs::EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 4;

  for (auto _ : state) {
    rrs::reduce::OnlineSolver solver(colors, options);
    for (const auto& arrivals : per_round) solver.Step(arrivals);
    solver.Finish();
    benchmark::DoNotOptimize(solver.cost().drops);
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rounds),
      benchmark::Counter::kIsRate);
}

void BM_OfflinePipeline(benchmark::State& state) {
  const rrs::Round rounds = state.range(0);
  rrs::Instance instance = StreamWorkload(rounds, 3);
  rrs::EngineOptions options;
  options.num_resources = 8;
  options.cost_model.delta = 4;
  for (auto _ : state) {
    auto result = rrs::reduce::SolveOnline(instance, options);
    benchmark::DoNotOptimize(result.validation.executed);
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(rounds),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_StreamEngineDlruEdf)->Arg(1024)->Arg(8192);
BENCHMARK(BM_OnlineSolver)->Arg(1024)->Arg(8192);
BENCHMARK(BM_OfflinePipeline)->Arg(1024)->Arg(8192);

BENCHMARK_MAIN();
