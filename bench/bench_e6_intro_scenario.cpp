// E6 — the introduction's motivating scenario: background jobs with distant
// deadlines vs intermittent short-term bursts. Pure greedy policies thrash
// (reconfiguration-dominated cost) or underutilize (drop-dominated cost);
// ΔLRU-EDF balances both.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E6Params params;
  rrs::Table table = rrs::analysis::RunE6IntroScenario(params);
  rrs::bench::PrintExperiment(
      "E6: intro scenario (background + intermittent short-term bursts), "
      "sweeping the burst gap",
      "greedy-edf's cost is reconfiguration-dominated (thrashing), "
      "high-threshold lazy-greedy's is drop-dominated (underutilization); "
      "dlru-edf pays neither disproportionately.",
      table);
  return 0;
}
