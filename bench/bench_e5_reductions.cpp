// E5 — Theorems 2-3: the VarBatch ∘ Distribute reductions cost only a
// constant factor over running ΔLRU-EDF directly, across workload families,
// while turning the no-guarantee direct run into the guaranteed pipeline.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E5Params params;
  rrs::Table table = rrs::analysis::RunE5Reductions(params);
  rrs::bench::PrintExperiment(
      "E5: reduction overhead (n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) + ")",
      "pipeline/direct stays a small constant across workload families "
      "(Theorems 2-3: the reductions preserve resource competitiveness).",
      table);
  return 0;
}
