// Distributed fleet perf gate (no google-benchmark dependency).
//
// Measures DistController multi-process throughput and writes a JSON report
// (default BENCH_fleet_distributed.json, or the first non-flag arg) with,
// per cell:
//
//   rounds_per_sec     aggregate simulated rounds per second across all
//                      workers (DistStats.rounds_stepped / Run wall time)
//   sessions_per_sec   tenants fully served per second
//   workers            worker process count
//   usable_cpus        std::thread::hardware_concurrency() at run time
//
// The headline claim is linear scaling: the 2-worker cell names the
// 1-worker cell via "scaling_ref" and stamps "scaling_gate": 1.7 — its
// aggregate rounds/s must reach >= 1.7x the 1-worker cell's. The ratio is
// recorded as "measured_scaling": the median over *interleaved* runs
// (1w, 2w, 1w, 2w, ...), so machine drift lands on both sides and divides
// out. tools/bench_compare.py enforces the gate only when the current
// report's usable_cpus can actually host the workers (>= workers); on a
// 1-CPU box the processes timeshare one core, scaling is structurally ~1x,
// and the tool skips the gate loudly instead of failing on physics.
// The 4-worker cell is informational (no gate) for the same reason.
//
// The migration cell runs a 2-worker fleet with one live migration
// scheduled at every tick barrier and records migrations_per_sec plus the
// rounds/s the fleet sustains *while* moving tenants — the cost of the
// quiesce → snapshot → ship → restore cycle under load.
//
// The 1M-tenant demonstration (EXPERIMENTS.md E18) is the same binary:
//   bench_fleet_distributed --tenants 1000000 --workers 4
//                           --max-live 4096 --rounds 8 out.json
// runs a single "dist/custom" cell with a bounded live window per worker
// and result collection thinned to completion signals.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "fleet/dist/controller.h"
#include "fleet/fleet_runner.h"
#include "workload/synthetic.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// RRS_BENCH_SMOKE=1: one interleaved run per cell instead of three — the
// tier-1 smoke run that proves every cell still executes and emits its
// metrics; numbers are only ever checked for shape (bench_compare.py
// --shape-only), never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

// Tenants cycle over a small pool of distinct instances so a 1M-tenant
// fleet does not pay 1M generator runs (same scheme as bench_fleet.cpp).
constexpr size_t kDistinct = 32;

std::vector<rrs::Instance> MakeTenantPool(rrs::Round rounds) {
  std::vector<rrs::workload::ColorSpec> specs;
  const rrs::Round delays[] = {1, 2, 4, 8, 16, 32};
  for (size_t c = 0; c < 16; ++c) {
    specs.push_back({delays[c % 6], 0.5});
  }
  std::vector<rrs::Instance> pool;
  pool.reserve(kDistinct);
  for (size_t i = 0; i < kDistinct; ++i) {
    rrs::workload::PoissonOptions gen;
    gen.rounds = rounds;
    gen.rate_limited = true;
    gen.seed = 2000 + i;
    pool.push_back(MakePoisson(specs, gen));
  }
  return pool;
}

struct DistCell {
  std::string name;
  size_t workers = 1;
  size_t tenants = 4096;
  rrs::Round rounds = 32;          // per-tenant horizon
  uint32_t rounds_per_tick = 32;
  uint64_t max_live = 0;           // per-worker live window, 0 = unbounded
  bool collect_results = true;
  bool migrate_every_tick = false;
  const char* scaling_ref = nullptr;
  double scaling_gate = 0;         // 0 = informational
};

struct DistCellResult {
  std::string name;
  size_t workers = 0;
  double rounds_per_sec = 0;
  double sessions_per_sec = 0;
  double measured_scaling = -1;
  double scaling_gate = 0;
  std::string scaling_ref;
  double migrations_per_sec = -1;
  double wall_s = 0;
};

// One full fleet lifecycle: fork workers, place tenants, tick to
// completion, reap. Returns aggregate rounds/s; Start/AddJobs/Shutdown are
// excluded from the timed region (Run is the steady state being gated).
double RunOnce(const DistCell& cell, const std::vector<rrs::Instance>& pool,
               DistCellResult& out) {
  rrs::fleet::dist::DistOptions options;
  options.num_workers = cell.workers;
  options.worker.rounds_per_tick = cell.rounds_per_tick;
  options.worker.max_live_sessions = cell.max_live;
  options.worker.collect_results = cell.collect_results;
  options.worker.report_slo = false;
  options.track_slo = false;
  rrs::fleet::dist::DistController controller(std::move(options));
  std::string error;
  if (!controller.Start(&error)) {
    std::fprintf(stderr, "%s: Start failed: %s\n", cell.name.c_str(),
                 error.c_str());
    std::exit(1);
  }
  std::vector<rrs::fleet::FleetJob> jobs;
  jobs.reserve(cell.tenants);
  for (size_t i = 0; i < cell.tenants; ++i) {
    rrs::fleet::FleetJob job;
    job.instance = &pool[i % pool.size()];
    job.options.num_resources = 8;
    job.options.cost_model.delta = 4;
    jobs.push_back(job);
  }
  controller.AddJobs(jobs);
  if (cell.migrate_every_tick) {
    // A migration at every barrier, round-robin over tenants and targets:
    // the fleet is permanently mid-rebalance.
    for (uint64_t tick = 1; tick <= 512; ++tick) {
      controller.ScheduleMigration(tick, (tick * 7) % cell.tenants,
                                   (tick + 1) % cell.workers);
    }
  }
  const auto start = Clock::now();
  controller.Run();
  const auto stop = Clock::now();
  const rrs::fleet::dist::DistStats& stats = controller.stats();
  const double elapsed = Seconds(start, stop);
  const double rps = static_cast<double>(stats.rounds_stepped) / elapsed;
  const double sps = static_cast<double>(stats.completed) / elapsed;
  if (rps > out.rounds_per_sec) {
    out.rounds_per_sec = rps;
    out.sessions_per_sec = sps;
    out.wall_s = elapsed;
    if (cell.migrate_every_tick) {
      out.migrations_per_sec =
          static_cast<double>(stats.migrations) / elapsed;
    }
  }
  controller.Shutdown();
  return rps;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_fleet_distributed.json";
  size_t custom_tenants = 0;
  size_t custom_workers = 2;
  uint64_t custom_max_live = 4096;
  rrs::Round custom_rounds = 8;
  bool custom_collect = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      custom_tenants = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      custom_workers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-live") == 0 && i + 1 < argc) {
      custom_max_live = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      custom_rounds = static_cast<rrs::Round>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--collect-results") == 0) {
      custom_collect = true;
    } else if (std::strcmp(argv[i], "--no-collect-results") == 0) {
      custom_collect = false;
    } else {
      out_path = argv[i];
    }
  }
  const unsigned usable_cpus = std::thread::hardware_concurrency();

  std::vector<DistCellResult> results;
  if (custom_tenants > 0) {
    // Demonstration mode: one custom cell, sized from the command line.
    DistCell cell;
    cell.name = "dist/custom";
    cell.workers = custom_workers;
    cell.tenants = custom_tenants;
    cell.rounds = custom_rounds;
    cell.rounds_per_tick = 32;
    cell.max_live = custom_max_live;
    cell.collect_results = custom_collect;
    const std::vector<rrs::Instance> pool = MakeTenantPool(cell.rounds);
    DistCellResult out;
    out.name = cell.name;
    out.workers = cell.workers;
    RunOnce(cell, pool, out);
    results.push_back(std::move(out));
  } else {
    // Gate cells: identical tenants at 1/2/4 workers. Runs interleave
    // (1w, 2w, 4w, 1w, 2w, 4w, ...) so every scaling ratio pairs runs that
    // shared the machine's noise environment.
    const int kIters = SmokeMode() ? 1 : 3;
    DistCell one{"dist/1worker", 1};
    DistCell two{"dist/2workers", 2};
    two.scaling_ref = "dist/1worker";
    two.scaling_gate = 1.7;
    DistCell four{"dist/4workers", 4};
    four.scaling_ref = "dist/1worker";  // informational: no gate
    const DistCell* cells[] = {&one, &two, &four};
    const std::vector<rrs::Instance> pool = MakeTenantPool(one.rounds);
    results.resize(3);
    std::vector<std::vector<double>> rates(3);
    for (size_t i = 0; i < 3; ++i) {
      results[i].name = cells[i]->name;
      results[i].workers = cells[i]->workers;
      results[i].scaling_gate = cells[i]->scaling_gate;
      if (cells[i]->scaling_ref != nullptr) {
        results[i].scaling_ref = cells[i]->scaling_ref;
      }
    }
    for (int w = 0; w < kIters; ++w) {
      for (size_t i = 0; i < 3; ++i) {
        rates[i].push_back(RunOnce(*cells[i], pool, results[i]));
      }
    }
    for (size_t i = 1; i < 3; ++i) {
      std::vector<double> ratios;
      for (int w = 0; w < kIters; ++w) {
        if (rates[0][w] > 0) ratios.push_back(rates[i][w] / rates[0][w]);
      }
      if (!ratios.empty()) {
        std::sort(ratios.begin(), ratios.end());
        results[i].measured_scaling = ratios[ratios.size() / 2];
      }
    }

    // Migration-cost cell: the fleet rebalances at every barrier.
    DistCell migration{"dist/migration", 2, 512, 32, 8};
    migration.migrate_every_tick = true;
    DistCellResult out;
    out.name = migration.name;
    out.workers = migration.workers;
    for (int w = 0; w < kIters; ++w) RunOnce(migration, pool, out);
    results.push_back(std::move(out));
  }

  for (const DistCellResult& r : results) {
    std::printf("%-20s %zu workers %14.0f rounds/s %12.0f sessions/s",
                r.name.c_str(), r.workers, r.rounds_per_sec,
                r.sessions_per_sec);
    if (r.measured_scaling >= 0) {
      std::printf("  %.2fx of %s", r.measured_scaling, r.scaling_ref.c_str());
    }
    if (r.migrations_per_sec >= 0) {
      std::printf("  %.0f migrations/s", r.migrations_per_sec);
    }
    std::printf("  (%.2fs)\n", r.wall_s);
  }
  std::printf("usable cpus: %u\n", usable_cpus);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const DistCellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"workers\": %zu, "
                 "\"usable_cpus\": %u, \"rounds_per_sec\": %.1f, "
                 "\"sessions_per_sec\": %.1f",
                 r.name.c_str(), r.workers, usable_cpus, r.rounds_per_sec,
                 r.sessions_per_sec);
    if (!r.scaling_ref.empty()) {
      std::fprintf(f, ", \"scaling_ref\": \"%s\"", r.scaling_ref.c_str());
      if (r.scaling_gate > 0) {
        std::fprintf(f, ", \"scaling_gate\": %.2f", r.scaling_gate);
      }
      if (r.measured_scaling >= 0) {
        std::fprintf(f, ", \"measured_scaling\": %.4f", r.measured_scaling);
      }
    }
    if (r.migrations_per_sec >= 0) {
      std::fprintf(f, ", \"migrations_per_sec\": %.1f", r.migrations_per_sec);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
