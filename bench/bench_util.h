// Shared header/footer formatting for the experiment bench binaries so every
// table in bench_output.txt carries its paper claim next to the measurement.
#pragma once

#include <cstdio>
#include <string>

#include "util/table.h"

namespace rrs {
namespace bench {

inline void PrintExperiment(const std::string& id, const std::string& claim,
                            const Table& table) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf("%s\n", table.ToAscii().c_str());
}

}  // namespace bench
}  // namespace rrs
