// Perf-regression gate benchmark (no google-benchmark dependency).
//
// Runs a fixed workload matrix through the engine and writes a JSON report
// (default BENCH_engine.json, or argv[1]) with, per cell:
//
//   rounds_per_sec           simulation throughput
//   jobs_per_sec             arrival throughput
//   steady_allocs_per_round  heap allocations per round in steady state,
//                            measured as (allocs(2H) - allocs(H)) / H so
//                            per-run setup (instance-sized tables, policy
//                            Reset, ring warm-up) cancels out. The engine's
//                            contract is ~0: pending rings, the expiry wheel,
//                            and all policy scratch reuse capacity from round
//                            to round.
//
// tools/bench_compare.py diffs this report against the checked-in
// bench/BENCH_baseline.json and fails on regression; ctest wires the pair up
// under the opt-in "perf" configuration (ctest -C perf -L perf).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/scope.h"
#include "reduce/pipeline.h"
#include "sched/registry.h"
#include "workload/synthetic.h"

// ---- Counting allocator hook ----------------------------------------------
// Counts every global operator-new; frees are uninteresting for the gate.
static std::atomic<uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// RRS_BENCH_SMOKE=1: one iteration per timing window — the tier-1 smoke run
// that proves every cell still executes and emits its metrics. The numbers
// are meaningless and only ever checked for shape (bench_compare.py
// --shape-only), never gated.
bool SmokeMode() {
  static const bool smoke = std::getenv("RRS_BENCH_SMOKE") != nullptr;
  return smoke;
}

rrs::Instance MakeBenchInstance(size_t colors, rrs::Round rounds,
                                uint64_t seed) {
  // Same shape as bench_e9_throughput's workload: delay bounds cycling
  // {1..32}, rate-limited Poisson arrivals at rate 0.5 per color.
  std::vector<rrs::workload::ColorSpec> specs;
  const rrs::Round delays[] = {1, 2, 4, 8, 16, 32};
  for (size_t c = 0; c < colors; ++c) {
    specs.push_back({delays[c % 6], 0.5});
  }
  rrs::workload::PoissonOptions gen;
  gen.rounds = rounds;
  gen.rate_limited = true;
  gen.seed = seed;
  return MakePoisson(specs, gen);
}

struct Cell {
  const char* policy;  // registry name, or "pipeline" for reduce::SolveOnline
  size_t colors;
  uint32_t resources;
};

struct CellResult {
  std::string name;
  double rounds_per_sec = 0;
  double jobs_per_sec = 0;
  double steady_allocs_per_round = 0;
  // Sampled phase wall-time medians (0 when the obs layer is compiled out).
  double phase_p50_ns[rrs::obs::kNumPhases] = {};
};

CellResult RunCell(const Cell& cell) {
  constexpr rrs::Round kRounds = 4096;
  const double kMinSeconds = SmokeMode() ? 0.0 : 0.3;

  // Every cell runs with a metrics-only scope attached, so the gate measures
  // the default-on observability overhead rather than the bare engine.
  rrs::obs::Scope scope;

  rrs::EngineOptions options;
  options.num_resources = cell.resources;
  options.cost_model.delta = 4;
  options.obs_scope = &scope;

  const bool pipeline = std::string(cell.policy) == "pipeline";
  const rrs::Instance inst = MakeBenchInstance(cell.colors, kRounds, 7);
  auto policy = pipeline ? nullptr : rrs::MakePolicy(cell.policy);
  auto run_once = [&](const rrs::Instance& instance) {
    if (pipeline) {
      auto result = rrs::reduce::SolveOnline(instance, options);
      return result.validation.executed + result.cost().drops;
    }
    rrs::RunResult r = rrs::RunPolicy(instance, *policy, options);
    return r.arrived;
  };

  CellResult out;
  out.name = std::string(cell.policy) + "/" + std::to_string(cell.colors) +
             "c/" + std::to_string(cell.resources) + "r";

  // Throughput: repeat full runs until the cell has kMinSeconds of samples.
  run_once(inst);  // warm-up (page-in, ring growth)
  uint64_t iters = 0;
  uint64_t jobs = 0;
  const auto start = Clock::now();
  auto now = start;
  do {
    jobs += run_once(inst);
    ++iters;
    now = Clock::now();
  } while (Seconds(start, now) < kMinSeconds);
  const double elapsed = Seconds(start, now);
  out.rounds_per_sec = static_cast<double>(iters * kRounds) / elapsed;
  out.jobs_per_sec = static_cast<double>(jobs) / elapsed;

  for (int p = 0; p < rrs::obs::kNumPhases; ++p) {
    const std::string hist_name =
        std::string("engine.phase.") + rrs::obs::PhaseName(p) + ".ns";
    const rrs::obs::LogHistogram* hist =
        scope.registry().FindHistogram(hist_name);
    if (hist != nullptr && hist->count() > 0) {
      out.phase_p50_ns[p] = hist->Quantile(0.5);
    }
  }

  // Steady-state allocations: horizon-H vs horizon-2H runs; the difference
  // isolates per-round allocation from per-run setup.
  constexpr rrs::Round kH = 2048;
  const rrs::Instance inst_h = MakeBenchInstance(cell.colors, kH, 11);
  const rrs::Instance inst_2h = MakeBenchInstance(cell.colors, 2 * kH, 11);
  auto measure = [&](const rrs::Instance& instance) {
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    run_once(instance);
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  measure(inst_h);  // warm-up
  const uint64_t allocs_h = measure(inst_h);
  const uint64_t allocs_2h = measure(inst_2h);
  const uint64_t extra = allocs_2h > allocs_h ? allocs_2h - allocs_h : 0;
  out.steady_allocs_per_round =
      static_cast<double>(extra) / static_cast<double>(kH);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  const Cell cells[] = {
      {"static", 128, 8},
      {"dlru", 128, 8},
      {"dlru-edf", 128, 8},
      {"dlru-edf", 32, 4},
      {"pipeline", 32, 8},
  };

  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    results.push_back(RunCell(cell));
    const CellResult& r = results.back();
    std::printf("%-20s %12.0f rounds/s %12.0f jobs/s %8.4f allocs/round\n",
                r.name.c_str(), r.rounds_per_sec, r.jobs_per_sec,
                r.steady_allocs_per_round);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rounds_per_sec\": %.1f, "
                 "\"jobs_per_sec\": %.1f, \"steady_allocs_per_round\": %.4f",
                 r.name.c_str(), r.rounds_per_sec, r.jobs_per_sec,
                 r.steady_allocs_per_round);
    // Informational phase-time breakdown (not gated; bench_compare.py only
    // diffs metrics present in the checked-in baseline).
    for (int p = 0; p < rrs::obs::kNumPhases; ++p) {
      std::fprintf(f, ", \"phase_%s_p50_ns\": %.1f", rrs::obs::PhaseName(p),
                   r.phase_p50_ns[p]);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
