// E14 — the value of lookahead: sweep the visible-future window W of a
// semi-online greedy and compare with the fully-online Theorem-3 pipeline,
// all against the certified OPT lower bound.
#include "analysis/experiments.h"
#include "bench_util.h"

int main() {
  rrs::analysis::E14Params params;
  rrs::Table table = rrs::analysis::RunE14Lookahead(params);
  rrs::bench::PrintExperiment(
      "E14: lookahead sweep (bursty workload, n=" + std::to_string(params.n) +
          ", delta=" + std::to_string(params.delta) + ")",
      "cost falls with the lookahead window with diminishing returns; the "
      "fully-online dlru-edf pipeline sits within the W-sweep's spread "
      "without seeing any future.",
      table);
  return 0;
}
